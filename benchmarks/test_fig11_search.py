"""Figure 11: end-to-end configuration-search runtime and fidelity.

The paper's search (CMA-ES, all optimizations) finishes in under an hour per
resource spec and finds configurations at -- or within a few percent of --
the optimum found by exhaustive grid search.  Here the search runs over the
Table 5 space with Maya as the evaluator, and the quality of the selected
configuration is judged against the best recipe the search itself saw, all
re-measured on the testbed.
"""

from __future__ import annotations

from bench_utils import fmt, print_table

from repro.analysis.metrics import normalized_cost
from repro.testbed import Testbed
from repro.workloads.job import TransformerTrainingJob


def run_experiment(outcomes):
    summary = {}
    for cluster_name, data in outcomes.items():
        result = data["result"]
        cluster = data["cluster"]
        testbed = Testbed(cluster)

        # Re-measure the top predicted configurations on the testbed and use
        # the best of them as the "grid optimal" stand-in.
        measured = {}
        for trial in result.top(8):
            job = TransformerTrainingJob(data["model"], trial.recipe, cluster,
                                         global_batch_size=data["global_batch"])
            actual = testbed.measure(job)
            if actual.succeeded:
                measured[trial.recipe.short_name()] = actual.iteration_time
        best_actual = min(measured.values()) if measured else float("inf")
        chosen_actual = measured.get(result.best.recipe.short_name(),
                                     float("inf"))
        summary[cluster_name] = {
            "search_wall_s": result.total_wall_time,
            "concurrent_makespan_s": result.concurrent_makespan,
            "samples": result.samples_used,
            "unique_valid": result.unique_valid_configs,
            "best_recipe": result.best.recipe.short_name(),
            "normalized_cost": normalized_cost(chosen_actual, best_actual),
            "cache_hit_pct": result.cache_stats.get("hit_rate", 0.0) * 100,
        }
    return summary


def test_fig11_search_runtime_and_fidelity(benchmark, run_once,
                                           search_outcomes):
    summary = run_once(benchmark, run_experiment, search_outcomes)

    rows = [[name,
             fmt(data["search_wall_s"], 1),
             fmt(data["concurrent_makespan_s"], 1),
             data["samples"], data["unique_valid"], data["best_recipe"],
             fmt(data["normalized_cost"], 3),
             fmt(data["cache_hit_pct"], 1)]
            for name, data in summary.items()]
    print_table("Figure 11: search runtime and normalized cost of the pick",
                ["resource spec", "wall time (s)", "8-way makespan (s)",
                 "samples", "unique valid", "selected recipe",
                 "norm. cost", "cache hit %"], rows)

    for name, data in summary.items():
        # The search terminates well within the paper's one-hour budget even
        # on this CPU-only reproduction.
        assert data["search_wall_s"] < 3600.0, name
        # The selected configuration is within a few percent of the best
        # configuration the search observed (paper: at or near optimal).
        assert data["normalized_cost"] < 1.10, name
        assert data["unique_valid"] > 10, name
