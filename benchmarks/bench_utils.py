"""Utilities shared by the benchmark files (printing, setup definitions)."""

from __future__ import annotations

from typing import List


#: The four deployment setups of Figures 7-9: (name, model, cluster, batch).
PREDICTION_SETUPS = (
    ("GPT3 2.7B - 8xV100", "gpt3-2.7b", "v100-8", 256),
    ("GPT3 2.7B - 16xV100", "gpt3-2.7b", "v100-16", 256),
    ("GPT3 18.4B - 32xH100", "gpt3-18.4b", "h100-32", 512),
    ("GPT3 18.4B - 64xH100", "gpt3-18.4b", "h100-64", 512),
)


def print_table(title: str, header: List[str], rows: List[List[object]]) -> None:
    """Print a paper-style table to stdout (captured into the bench log)."""
    widths = [max(len(str(header[col])),
                  max((len(str(row[col])) for row in rows), default=0))
              for col in range(len(header))]
    print(f"\n=== {title} ===")
    print("  ".join(str(cell).ljust(width)
                    for cell, width in zip(header, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(width)
                        for cell, width in zip(row, widths)))


def fmt(value: float, digits: int = 3) -> str:
    """Format a float compactly for table cells."""
    if value != value or value in (float("inf"), float("-inf")):
        return "n/a"
    return f"{value:.{digits}f}"
