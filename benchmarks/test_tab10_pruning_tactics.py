"""Table 10: fidelity-preserving pruning tactics for the Megatron-LM space.

Each tactic exploits a known monotonicity of one knob.  The benchmark
replays a synthetic evaluation history through the pruner and verifies that
(a) each tactic fires on its intended sibling configuration and (b) pruning
is fidelity preserving: a pruned configuration is never assigned a better
runtime than the testbed would report.
"""

from __future__ import annotations

import math

from bench_utils import print_table

from repro.analysis.experiments import scaled_transformer
from repro.core.pipeline import MayaPipeline
from repro.framework.recipe import TrainingRecipe
from repro.hardware.cluster import get_cluster
from repro.search.pruning import FidelityPreservingPruner
from repro.testbed import Testbed
from repro.workloads.job import TransformerTrainingJob


def run_experiment():
    cluster = get_cluster("v100-8")
    model = scaled_transformer("gpt3-2.7b", min_layers=8)
    pipeline = MayaPipeline(cluster, estimator_mode="analytical")
    testbed = Testbed(cluster)
    pruner = FidelityPreservingPruner()

    def evaluate(recipe):
        job = TransformerTrainingJob(model, recipe, cluster,
                                     global_batch_size=256)
        if job.validate():
            return None
        result = pipeline.predict(job)
        pruner.record(recipe, result.oom, result.iteration_time)
        return result

    base = TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                          microbatch_multiplier=2, dtype="float16")
    # Evaluate the "stronger" sibling of every tactic first.
    history = {
        "activation_recomputation": evaluate(
            base.replace(activation_recomputation=True)),
        "sequence_parallelism": evaluate(
            base.replace(activation_recomputation=True,
                         sequence_parallelism=True)),
        "distributed_optimizer": evaluate(
            base.replace(activation_recomputation=True)),
        "microbatches": evaluate(
            TrainingRecipe(tensor_parallel=8, pipeline_parallel=1,
                           microbatch_multiplier=2,
                           activation_recomputation=True, dtype="float16")),
    }

    probes = {
        "activation_recomputation": base,
        "sequence_parallelism": base.replace(activation_recomputation=True,
                                             sequence_parallelism=False),
        "distributed_optimizer": base.replace(activation_recomputation=True,
                                              distributed_optimizer=True),
        "microbatches": TrainingRecipe(tensor_parallel=8, pipeline_parallel=1,
                                       microbatch_multiplier=4,
                                       activation_recomputation=True,
                                       dtype="float16"),
    }

    rows = []
    for tactic, probe in probes.items():
        decision = pruner.consult(probe)
        actual = testbed.measure(TransformerTrainingJob(
            model, probe, cluster, global_batch_size=256))
        rows.append({
            "tactic": tactic,
            "skipped": decision.skip,
            "verdict": ("oom" if decision.oom else
                        f"{decision.inherited_runtime:.2f}s"
                        if decision.skip else "evaluated"),
            "actual": actual.iteration_time,
            "actual_oom": actual.oom,
            "fidelity_preserved": (
                not decision.skip
                or (decision.oom and (actual.oom or math.isinf(actual.iteration_time)))
                or (decision.inherited_runtime is not None
                    and (actual.oom
                         or decision.inherited_runtime <= actual.iteration_time * 1.1))
            ),
        })
    return rows, history


def test_tab10_pruning_tactics(benchmark, run_once):
    rows, history = run_once(benchmark, run_experiment)

    print_table("Table 10: pruning tactics on sibling configurations",
                ["tactic", "skipped", "pruner verdict", "actual (s)",
                 "actual OOM", "fidelity preserved"],
                [[row["tactic"], row["skipped"], row["verdict"],
                  ("inf" if math.isinf(row["actual"]) else f"{row['actual']:.2f}"),
                  row["actual_oom"], row["fidelity_preserved"]]
                 for row in rows])

    fired = [row for row in rows if row["skipped"]]
    # At least the runtime-inheriting tactics fire on this history (the OOM
    # tactics only fire when the stronger sibling actually ran out of memory).
    assert any(row["tactic"] == "distributed_optimizer" for row in fired)
    assert any(row["tactic"] == "microbatches" for row in fired)
    # Fidelity preservation: no pruned configuration was assigned a runtime
    # better than what the testbed reports.
    assert all(row["fidelity_preserved"] for row in rows)
