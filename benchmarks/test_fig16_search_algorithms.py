"""Figure 16 (Appendix C): comparison of search algorithms.

Each algorithm gets the same sample budget over the Table 5 space; progress
is measured by the best MFU found after a given number of unique valid
configurations.  The paper finds that the general-purpose algorithms reach
near-optimal MFU after 200-300 unique configurations, a 60-75% improvement
over grid search.
"""

from __future__ import annotations

from bench_utils import fmt, print_table

from repro.analysis.experiments import scaled_transformer
from repro.hardware.cluster import get_cluster
from repro.search import MayaSearch, MayaTrialEvaluator
from repro.search.space import default_search_space

ALGORITHMS = ("cma", "oneplusone", "pso", "twopointsde", "random", "grid")
BUDGET = 100


def run_experiment():
    cluster = get_cluster("v100-8")
    # Depth 16 regardless of REPRO_BENCH_SCALE: the algorithm comparison is
    # sensitive to the optimization landscape, so keep it fixed.
    model = scaled_transformer("gpt3-2.7b", min_layers=16)
    space = default_search_space(dtype="float16")
    evaluator = MayaTrialEvaluator(model, cluster, global_batch_size=128,
                                   estimator_mode="analytical")
    results = {}
    for algorithm in ALGORITHMS:
        search = MayaSearch(
            evaluator, space=space, algorithm=algorithm,
            world_size=cluster.world_size, global_batch_size=128,
            num_layers=model.num_layers, num_heads=model.num_heads,
            gpus_per_node=cluster.gpus_per_node, enable_pruning=True,
            seed=21, early_stop_patience=10_000,
            # Serial ask -> tell so the *algorithms* are compared under the
            # classic interleaving; the shared service still caches trials
            # across algorithms (they explore overlapping configs).
            concurrency=1,
        )
        outcome = search.run(budget=BUDGET)
        best_mfu = max((trial.mfu for trial in outcome.history
                        if trial.feasible), default=0.0)
        results[algorithm] = {
            "best_mfu": best_mfu,
            "unique_valid": outcome.unique_valid_configs,
            "executed": outcome.status_counts["executed"],
        }
    return results


def test_fig16_search_algorithm_comparison(benchmark, run_once):
    results = run_once(benchmark, run_experiment)

    rows = [[name, fmt(data["best_mfu"], 4), data["unique_valid"],
             data["executed"]] for name, data in results.items()]
    print_table(f"Figure 16: best MFU after a {BUDGET}-sample budget",
                ["algorithm", "best MFU", "unique valid configs",
                 "executed trials"], rows)

    best_overall = max(data["best_mfu"] for data in results.values())
    assert best_overall > 0.0
    # Every guided algorithm lands within 15% of the best MFU found under the
    # same budget (the paper's algorithms converge to near-identical MFU).
    for name in ("cma", "oneplusone", "pso", "twopointsde", "random"):
        assert results[name]["best_mfu"] >= 0.85 * best_overall, name
    # Grid search, which enumerates the space in a fixed order, does no
    # better than the guided algorithms under the same truncated budget.
    assert max(results[name]["best_mfu"]
               for name in ("cma", "oneplusone", "pso", "twopointsde")) \
        >= 0.95 * results["grid"]["best_mfu"]
