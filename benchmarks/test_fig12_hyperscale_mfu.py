"""Figure 12: predicted MFU and iteration time when scaling data parallelism
to thousand-GPU clusters.

The paper fixes TP8 / PP8 and grows the data-parallel degree, integrating an
external network simulator (ASTRA-sim) for collectives; the reproduction
uses the hierarchical analytical network model as that pluggable backend.
The expected trend is sublinear scaling: iteration time drops with more
GPUs, but MFU decreases as communication starts to dominate.
"""

from __future__ import annotations

from bench_utils import fmt, print_table

from repro.analysis.experiments import scaled_transformer
from repro.analysis.metrics import mfu
from repro.core.estimators.collective import HierarchicalNetworkModel
from repro.core.estimators.suite import EstimatorSuite, build_estimator_suite
from repro.core.pipeline import MayaPipeline
from repro.framework.recipe import TrainingRecipe
from repro.hardware.cluster import get_cluster
from repro.workloads.job import TransformerTrainingJob

#: Cluster sizes swept (the paper goes to 12K GPUs; scaled down for CPU time).
GPU_COUNTS = (128, 256, 512)
RECIPE = TrainingRecipe(tensor_parallel=8, pipeline_parallel=8,
                        microbatch_multiplier=4,
                        activation_recomputation=True,
                        sequence_parallelism=True, dtype="bfloat16")
GLOBAL_BATCH = 2048


def run_experiment():
    base_cluster = get_cluster("h100-64")
    model = scaled_transformer("gpt3-18.4b")
    rows = []
    for gpu_count in GPU_COUNTS:
        cluster = base_cluster.with_world_size(gpu_count)
        analytical = build_estimator_suite(cluster, mode="analytical",
                                           use_cache=False)
        # Plug the hierarchical network model in as the ASTRA-sim stand-in.
        suite = EstimatorSuite(
            name="analytical+astra-sim-standin",
            kernel_estimators=analytical.kernel_estimators,
            fallback_kernel_estimator=analytical.fallback_kernel_estimator,
            collective_estimator=HierarchicalNetworkModel(cluster.interconnect),
        )
        pipeline = MayaPipeline(cluster, estimator_suite=suite)
        job = TransformerTrainingJob(model, RECIPE, cluster,
                                     global_batch_size=GLOBAL_BATCH)
        if job.validate():
            continue
        prediction = pipeline.predict(job)
        if not prediction.succeeded:
            continue
        rows.append({
            "gpus": gpu_count,
            "iteration_time": prediction.iteration_time,
            "mfu": mfu(prediction.iteration_time, job.flops_per_iteration(),
                       cluster, dtype=RECIPE.dtype),
        })
    return rows


def test_fig12_hyperscale_mfu(benchmark, run_once):
    rows = run_once(benchmark, run_experiment)
    assert len(rows) >= 3, "hyperscale sweep produced too few points"

    print_table("Figure 12: scaling data parallelism at fixed TP8/PP8",
                ["GPUs", "iteration time (s)", "MFU"],
                [[row["gpus"], fmt(row["iteration_time"], 2),
                  fmt(row["mfu"], 3)] for row in rows])

    times = [row["iteration_time"] for row in rows]
    mfus = [row["mfu"] for row in rows]
    # Iteration time keeps dropping as GPUs are added...
    assert all(times[i + 1] < times[i] for i in range(len(times) - 1))
    # ...but sublinearly: MFU at the largest scale is below the smallest.
    assert mfus[-1] < mfus[0]
    speedup = times[0] / times[-1]
    ideal = rows[-1]["gpus"] / rows[0]["gpus"]
    assert speedup < ideal
