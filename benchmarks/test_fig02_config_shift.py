"""Figure 2: optimal configurations shift with cluster size, and deploying a
configuration tuned for one cluster size on another wastes money.

We sweep the (scaled) GPT-3 18.4B candidate configurations on two H100
cluster sizes, find the per-size optimum on the testbed, and build the
cross-deployment cost matrix of Figure 2b.
"""

from __future__ import annotations

import math

from bench_utils import fmt, print_table

from repro.analysis.experiments import (
    bench_config_budget,
    candidate_recipes,
    evaluate_setup,
    scaled_transformer,
)
from repro.analysis.metrics import normalized_cost
from repro.hardware.cluster import get_cluster
from repro.testbed import Testbed
from repro.workloads.job import TransformerTrainingJob

CLUSTER_SIZES = ("h100-16", "h100-32")
GLOBAL_BATCH = 512


def run_experiment():
    model = scaled_transformer("gpt3-18.4b")
    budget = bench_config_budget()
    setups = {}
    for name in CLUSTER_SIZES:
        cluster = get_cluster(name)
        recipes = candidate_recipes(model, cluster, GLOBAL_BATCH, limit=budget,
                                    seed=11)
        setups[name] = evaluate_setup(name, model, cluster, GLOBAL_BATCH,
                                      recipes, estimator_mode="analytical",
                                      include_baselines=False)

    # Cross-deployment matrix: take the optimal recipe of the reference size
    # and measure it on the deployment size.
    matrix = {}
    for reference in CLUSTER_SIZES:
        optimal_ref = setups[reference].optimal()
        for deployment in CLUSTER_SIZES:
            cluster = get_cluster(deployment)
            optimal_here = setups[deployment].optimal()
            if optimal_ref is None or optimal_here is None:
                matrix[(reference, deployment)] = math.inf
                continue
            job = TransformerTrainingJob(model, optimal_ref.recipe, cluster,
                                         global_batch_size=GLOBAL_BATCH)
            if job.validate():
                matrix[(reference, deployment)] = math.inf
                continue
            measured = Testbed(cluster).measure(job)
            matrix[(reference, deployment)] = normalized_cost(
                measured.iteration_time, optimal_here.actual_time)
    return setups, matrix


def test_fig02_config_shift(benchmark, run_once):
    setups, matrix = run_once(benchmark, run_experiment)

    rows = []
    for name, setup in setups.items():
        optimal = setup.optimal()
        assert optimal is not None, f"no feasible configuration for {name}"
        rows.append([
            name,
            optimal.recipe.short_name(),
            fmt(optimal.actual_time),
            fmt(optimal.actual.peak_memory_gb, 1),
        ])
    print_table("Figure 2a: optimal configuration per cluster size",
                ["cluster", "optimal recipe", "iteration time (s)",
                 "peak mem (GB)"], rows)

    matrix_rows = []
    for reference in CLUSTER_SIZES:
        matrix_rows.append([reference] + [fmt(matrix[(reference, deployment)])
                                          for deployment in CLUSTER_SIZES])
    print_table("Figure 2b: cross-deployment cost ratio (rows = reference)",
                ["reference \\ deployment"] + list(CLUSTER_SIZES), matrix_rows)

    # Diagonal entries are optimal by construction; off-diagonal entries can
    # only be worse (the paper reports up to 1.74x).
    for reference in CLUSTER_SIZES:
        assert matrix[(reference, reference)] <= 1.0 + 1e-6
        for deployment in CLUSTER_SIZES:
            assert matrix[(reference, deployment)] >= 1.0 - 1e-6
    cross = [matrix[(a, b)] for a in CLUSTER_SIZES for b in CLUSTER_SIZES
             if a != b and math.isfinite(matrix[(a, b)])]
    assert cross, "cross-deployment entries should be measurable"
