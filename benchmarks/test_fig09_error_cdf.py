"""Figure 9: cumulative distribution of prediction errors.

The paper reports that Maya achieves <1% error for ~65% of configurations on
the 8xV100 cluster and <10% error for ~90% of configurations at 64xH100,
while baselines exhibit 10-1000% errors.
"""

from __future__ import annotations

from bench_utils import fmt, print_table

from repro.analysis.metrics import error_cdf, fraction_below

BASELINES = ("Proteus", "Calculon", "AMPeD")


def collect(setups):
    data = {}
    for name, setup in setups.items():
        data[name] = {
            "Maya": setup.maya_errors(),
            **{baseline: setup.baseline_errors(baseline)
               for baseline in BASELINES},
        }
    return data


def test_fig09_error_cdf(benchmark, run_once, prediction_setups):
    errors = run_once(benchmark, collect, prediction_setups)

    for name, per_system in errors.items():
        rows = []
        for system, values in per_system.items():
            if not values:
                rows.append([system, "n/a", "n/a", "n/a", 0])
                continue
            cdf = error_cdf(values)
            median = cdf[len(cdf) // 2][0]
            rows.append([
                system,
                fmt(fraction_below(values, 1.0), 2),
                fmt(fraction_below(values, 10.0), 2),
                fmt(median, 2),
                len(values),
            ])
        print_table(f"Figure 9: error CDF summary, {name}",
                    ["system", "P(err<1%)", "P(err<10%)", "median err %", "n"],
                    rows)

    # Maya's distribution is concentrated at low error on every setup, and it
    # dominates any baseline with a meaningful number of supported configs.
    for name, per_system in errors.items():
        maya = per_system["Maya"]
        assert maya, name
        assert fraction_below(maya, 15.0) >= 0.6, name
        maya_median = sorted(maya)[len(maya) // 2]
        for baseline in BASELINES:
            values = per_system[baseline]
            if len(values) >= 3:
                baseline_median = sorted(values)[len(values) // 2]
                assert baseline_median >= maya_median - 1e-9, (name, baseline)
