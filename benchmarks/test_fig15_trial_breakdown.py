"""Figure 15: trial status breakdown during configuration search.

The fidelity-preserving pruner skips 20-30% of proposed configurations and
the cache absorbs re-proposals, substantially reducing the number of trials
that need full emulation.
"""

from __future__ import annotations

from bench_utils import print_table


def collect(outcomes):
    return {name: dict(data["result"].status_counts,
                       pruning=dict(data["result"].pruning_tactic_counts))
            for name, data in outcomes.items()}


def test_fig15_trial_status_breakdown(benchmark, run_once, search_outcomes):
    counts = run_once(benchmark, collect, search_outcomes)

    rows = []
    for name, data in counts.items():
        rows.append([name, data["executed"], data["cached"], data["skipped"],
                     data["invalid"], data["pruning"]])
    print_table("Figure 15: trial status breakdown per resource spec",
                ["resource spec", "executed", "cached", "skipped", "invalid",
                 "pruning tactics"], rows)

    for name, data in counts.items():
        assert data["executed"] > 0, name
    # Caching and pruning together resolve a substantial share of the
    # proposals without running them (the paper reports 20-30% skipped
    # alone, aggregated over its searches).
    executed = sum(data["executed"] for data in counts.values())
    resolved_cheaply = sum(data["cached"] + data["skipped"]
                           for data in counts.values())
    assert resolved_cheaply > 0.2 * executed
