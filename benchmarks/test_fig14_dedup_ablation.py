"""Figure 14: impact of dynamic worker deduplication on Maya's runtime.

Fixing the parallelism configuration and growing the data-parallel degree
adds only redundant workers; with deduplication (and selective launch) the
end-to-end Maya runtime stays roughly flat, without it the cost grows with
the cluster (the paper reports 74-94% savings).
"""

from __future__ import annotations

from bench_utils import fmt, print_table

from repro.analysis.experiments import scaled_transformer
from repro.core.pipeline import MayaPipeline
from repro.framework.recipe import TrainingRecipe
from repro.hardware.cluster import get_cluster
from repro.workloads.job import TransformerTrainingJob

RECIPE = TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                        microbatch_multiplier=2,
                        activation_recomputation=True, dtype="float16")
GPU_COUNTS = (8, 16, 32)


def run_point(gpu_count: int, dedup: bool) -> float:
    cluster = get_cluster("v100-8").with_world_size(gpu_count)
    model = scaled_transformer("gpt3-2.7b", min_layers=8)
    pipeline = MayaPipeline(
        cluster, estimator_mode="analytical",
        deduplicate_workers=dedup, selective_launch=dedup,
        reduce_replicas=dedup,
    )
    job = TransformerTrainingJob(model, RECIPE, cluster,
                                 global_batch_size=8 * gpu_count)
    prediction = pipeline.predict(job)
    assert prediction.succeeded
    return sum(prediction.stage_times.values())


def run_experiment():
    rows = []
    for gpu_count in GPU_COUNTS:
        with_dedup = run_point(gpu_count, dedup=True)
        without_dedup = run_point(gpu_count, dedup=False)
        rows.append({
            "gpus": gpu_count,
            "with": with_dedup,
            "without": without_dedup,
            "savings": 1.0 - with_dedup / without_dedup,
        })
    return rows


def test_fig14_worker_dedup_ablation(benchmark, run_once):
    rows = run_once(benchmark, run_experiment)

    print_table("Figure 14: Maya runtime with and without worker dedup (s)",
                ["GPUs", "with dedup", "without dedup", "savings"],
                [[row["gpus"], fmt(row["with"], 2), fmt(row["without"], 2),
                  f"{row['savings'] * 100:.0f}%"] for row in rows])

    # Deduplication always helps, and the savings grow with the DP degree
    # (74% -> 94% in the paper).
    for row in rows:
        assert row["with"] <= row["without"]
    assert rows[-1]["savings"] > rows[0]["savings"]
    assert rows[-1]["savings"] > 0.5
