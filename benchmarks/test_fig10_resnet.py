"""Figure 10: prediction accuracy for ResNet152 on an 8xA40 node.

The vision workload exercises cuDNN convolutions, heterogeneous (pairwise
NVLink) links and torch.compile-style fused kernels.  The paper reports
<5% error for over half the configurations.
"""

from __future__ import annotations

import statistics

from bench_utils import fmt, print_table

from repro.analysis.metrics import absolute_percentage_error, fraction_below
from repro.core.pipeline import MayaPipeline
from repro.hardware.cluster import get_cluster
from repro.testbed import Testbed
from repro.workloads.job import VisionTrainingJob
from repro.workloads.models import get_convnet

#: Per-GPU batch sizes x compile flag: the Figure 10 configuration axis.
CONFIGS = tuple((batch, compiled)
                for batch in (32, 64, 128)
                for compiled in (False, True))


def run_experiment():
    cluster = get_cluster("a40-8")
    spec = get_convnet("resnet152")
    pipeline = MayaPipeline(cluster, estimator_mode="learned")
    testbed = Testbed(cluster)
    rows = []
    for per_gpu_batch, compiled in CONFIGS:
        job = VisionTrainingJob(spec, cluster,
                                global_batch_size=per_gpu_batch * 8,
                                compiled=compiled, dtype="float16")
        artifacts = pipeline.emulate(job)
        if artifacts.oom:
            continue
        actual = testbed.measure(job, artifacts)
        predicted = pipeline.predict(job, artifacts)
        rows.append({
            "config": f"bs{per_gpu_batch}" + ("-compiled" if compiled else ""),
            "actual": actual.iteration_time,
            "maya": predicted.iteration_time,
            "error": absolute_percentage_error(actual.iteration_time,
                                               predicted.iteration_time),
        })
    return rows


def test_fig10_resnet152(benchmark, run_once):
    rows = run_once(benchmark, run_experiment)
    assert rows, "all ResNet configurations ran out of memory"

    print_table("Figure 10: ResNet152 on 8xA40 (iteration time, seconds)",
                ["config", "actual", "maya", "error %"],
                [[row["config"], fmt(row["actual"]), fmt(row["maya"]),
                  fmt(row["error"], 2)] for row in rows])

    errors = [row["error"] for row in rows]
    print(f"median error: {statistics.median(errors):.2f}%  "
          f"fraction <5%: {fraction_below(errors, 5.0):.2f}")
    # The paper reports <5% error for over half of the configurations; allow
    # a little slack for the synthetic testbed.
    assert fraction_below(errors, 10.0) >= 0.5
    assert statistics.median(errors) < 12.0
