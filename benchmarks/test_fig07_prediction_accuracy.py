"""Figure 7: runtime-prediction accuracy across configurations and setups.

For each deployment setup (GPT-3 2.7B on 8/16xV100, GPT-3 18.4B on
32/64xH100) the paper plots predicted vs actual iteration time for the top
valid configurations.  Here we print one row per configuration with the
actual (testbed) time and each system's prediction, and check the headline
property: Maya's error is far smaller than every baseline's.
"""

from __future__ import annotations

import math
import statistics

from bench_utils import fmt, print_table

from repro.analysis.metrics import fraction_below


def collect(setups):
    return setups


def test_fig07_prediction_accuracy(benchmark, run_once, prediction_setups):
    setups = run_once(benchmark, collect, prediction_setups)

    overall_maya = []
    overall_baseline = {"Calculon": [], "AMPeD": [], "Proteus": []}
    for name, setup in setups.items():
        rows = []
        for idx, evaluation in enumerate(sorted(setup.feasible(),
                                                key=lambda ev: ev.actual_time)):
            rows.append([
                idx,
                evaluation.recipe.short_name(),
                fmt(evaluation.actual_time),
                fmt(evaluation.maya.iteration_time),
                fmt(evaluation.baselines.get("Proteus", math.nan)),
                fmt(evaluation.baselines.get("Calculon", math.nan)),
                fmt(evaluation.baselines.get("AMPeD", math.nan)),
            ])
            overall_maya.append(evaluation.maya_error)
            for baseline in overall_baseline:
                error = evaluation.baseline_error(baseline)
                if math.isfinite(error):
                    overall_baseline[baseline].append(error)
        print_table(f"Figure 7: {name} (iteration time, seconds)",
                    ["cfg", "recipe", "actual", "maya", "proteus", "calculon",
                     "amped"], rows)

    median_maya = statistics.median(overall_maya)
    print(f"\nMaya median |error|: {median_maya:.2f}%  "
          f"(fraction <10%: {fraction_below(overall_maya, 10.0):.2f})")
    for baseline, errors in overall_baseline.items():
        if errors:
            print(f"{baseline} median |error|: {statistics.median(errors):.2f}%")

    # Headline properties from the paper: Maya stays within a few percent
    # while the baselines are off by tens of percent or worse.
    assert overall_maya, "no feasible configurations were evaluated"
    assert median_maya < 10.0
    assert fraction_below(overall_maya, 10.0) >= 0.8
    for baseline, errors in overall_baseline.items():
        if errors:
            assert statistics.median(errors) > 2.0 * median_maya, baseline
