"""Tables 7-9: per-kernel-class prediction error (MAPE) of the learned
runtime estimators for the H100, V100 and A40 devices.

The paper's tables list mean absolute percentage error on a held-out 20%
split of the profiled kernel data, noting that the heavy-hitter kernels
(GEMMs for language models, convolutions for vision models) stay well under
10% while some short-duration kernels have large relative errors without
affecting end-to-end accuracy.
"""

from __future__ import annotations

from bench_utils import fmt, print_table

from repro.core.estimators.suite import build_estimator_suite
from repro.hardware.cluster import get_cluster

SETUPS = (
    ("Table 7 (H100)", "h100-64",
     ("gemm", "batched_gemm", "softmax", "layernorm", "dropout")),
    ("Table 8 (V100)", "v100-8",
     ("gemm", "batched_gemm", "softmax", "layernorm", "dropout")),
    ("Table 9 (A40)", "a40-8",
     ("conv_forward", "conv_backward_data", "conv_backward_filter",
      "fused_triton", "gemm")),
)


def run_experiment():
    results = {}
    for title, cluster_name, _ in SETUPS:
        suite = build_estimator_suite(get_cluster(cluster_name), mode="learned")
        results[title] = dict(suite.validation_mape)
    return results


def test_tables_7_to_9_kernel_mape(benchmark, run_once):
    results = run_once(benchmark, run_experiment)

    for title, cluster_name, important in SETUPS:
        mape = results[title]
        rows = [[kernel_class, fmt(value, 2)]
                for kernel_class, value in sorted(mape.items())]
        print_table(f"{title}: held-out MAPE per kernel class (%)",
                    ["kernel class", "MAPE %"], rows)

        # The kernel classes that dominate end-to-end time are predicted
        # accurately (paper: <5% for cublas GEMMs, <10% for convolutions).
        for kernel_class in important:
            assert mape[kernel_class] < 15.0, (title, kernel_class)
        # The overall median across all classes is in the single digits.
        values = sorted(mape.values())
        assert values[len(values) // 2] < 10.0, title
