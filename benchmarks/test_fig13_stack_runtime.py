"""Figure 13: Maya stack runtime (emulator / collator / predictor / simulator)
when scaling to large clusters.

With selective launch only unique pipeline ranks are emulated, so emulation
cost stays flat while simulation cost grows with the simulated model-parallel
replica -- the same qualitative breakdown the paper shows up to 16K GPUs.
"""

from __future__ import annotations

from bench_utils import fmt, print_table

from repro.analysis.experiments import scaled_transformer
from repro.core.pipeline import MayaPipeline
from repro.framework.recipe import TrainingRecipe
from repro.hardware.cluster import get_cluster
from repro.workloads.job import TransformerTrainingJob

GPU_COUNTS = (128, 256, 512)
RECIPE = TrainingRecipe(tensor_parallel=8, pipeline_parallel=8,
                        microbatch_multiplier=4,
                        activation_recomputation=True,
                        sequence_parallelism=True, dtype="bfloat16")


def run_experiment():
    base_cluster = get_cluster("h100-64")
    model = scaled_transformer("gpt3-18.4b")
    rows = []
    for gpu_count in GPU_COUNTS:
        cluster = base_cluster.with_world_size(gpu_count)
        # Global batch grows with the cluster (fixed per-GPU batch), like the
        # paper's weak-scaling sweep of Figure 13.
        global_batch = 4 * gpu_count
        pipeline = MayaPipeline(cluster, estimator_mode="analytical")
        job = TransformerTrainingJob(model, RECIPE, cluster,
                                     global_batch_size=global_batch)
        if job.validate():
            continue
        prediction = pipeline.predict(job)
        stages = prediction.stage_times
        rows.append({
            "gpus": gpu_count,
            "emulation": stages.get("emulation", 0.0),
            "collation": stages.get("collation", 0.0),
            "prediction": stages.get("prediction", 0.0),
            "simulation": stages.get("simulation", 0.0),
            "emulated_workers": prediction.metadata.get("unique_workers"),
            "simulated_ranks": prediction.metadata.get("simulated_ranks"),
        })
    return rows


def test_fig13_stack_runtime(benchmark, run_once):
    rows = run_once(benchmark, run_experiment)
    assert len(rows) >= 3

    print_table("Figure 13: Maya stack runtime breakdown (seconds)",
                ["GPUs", "emulator", "collator", "predictor", "simulator",
                 "emulated workers", "simulated ranks"],
                [[row["gpus"], fmt(row["emulation"], 2),
                  fmt(row["collation"], 2), fmt(row["prediction"], 2),
                  fmt(row["simulation"], 2), row["emulated_workers"],
                  row["simulated_ranks"]] for row in rows])

    # Selective launch keeps the number of emulated workers constant (one per
    # pipeline stage) regardless of cluster size.
    assert len({row["emulated_workers"] for row in rows}) == 1
    # Total stack runtime stays bounded (minutes, not hours) even at the
    # largest swept cluster -- the property that makes hyperscale studies
    # feasible (Section 7.4).
    largest = rows[-1]
    total = (largest["emulation"] + largest["collation"]
             + largest["prediction"] + largest["simulation"])
    assert total < 1800.0
