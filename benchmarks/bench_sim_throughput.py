"""Simulator / prediction-service throughput micro-benchmark.

Measures the two rates that bound search cost:

* **engine events/sec** -- the discrete-event engine replaying a collated
  tp2/pp2 transformer trace, per configuration: the per-event provider-call
  path ("serial"), the pre-annotated duration-array fast path, the
  structure-of-arrays columnar loop (gated at >= 2x over serial in
  ``--check``), and steady-state iteration folding on a periodic
  multi-iteration trace --
  both on a jitter-free host model (bitwise-exact folding) and on the
  *default jittered* host model, where the structured host-delay split
  records deterministic base costs in the trace and folding extrapolates
  at the analytic mean jitter factor (the ``jittered_fold`` leg, gated
  report-only in ``--check``: folding must engage on the default testbed
  trace);
* **wire bytes per artifact** -- the two ways the socket backend can ship
  a worker-trace artifact: pickled ``TraceEvent`` graph vs the negotiated
  columnar frame (raw little-endian column buffers plus a template pool);
* **predict_many trials/sec** -- cold evaluation of a batch of distinct
  configurations through each evaluation backend (serial / thread /
  process / persistent / socket -- the multi-host backend measured over
  localhost worker-host subprocesses, bootstrap included), plus a
  report-only ``served`` leg running the same batch through a long-lived
  ``repro serve``-style prediction server over loopback, so the delta
  over serial is the wire round-trip cost one served batch pays;
* **small-batch amortisation** -- many consecutive small cold batches (the
  shape of the paper's config-search sweeps) through the fork-per-batch
  ``process`` backend vs the long-lived ``persistent`` pool, where the
  per-batch fork+pickle overhead is exactly what the persistent pool's
  incremental cache shipping amortises away;
* **chaos recovery** (``--chaos``, report-only) -- the persistent-pool
  batch makespan with one fault-injected straggler slept past its job
  lease, vs the clean run: the measured cost of speculative re-dispatch
  (waiting the straggler out would cost the full injected delay);
* **cold vs warm store** (``--store``, report-only) -- the serial
  predict_many batch run twice against one ``--store-dir``: first with
  an empty disk store (cold, populates it), then in a *fresh* service
  whose memory tier starts empty but whose cold tier is the populated
  store, so the warm wall time is what a second process pays when it
  hydrates artifacts from disk instead of re-simulating them;
* **placement policies** (``--schedulers``, report-only) -- a cold batch
  plus its structural-sibling reuse batch through the persistent pool
  under every registered ``--scheduler`` policy (round_robin /
  least_loaded / locality), each against a fresh shared store: per-policy
  makespans and the placement counters (``placements`` /
  ``locality_hits`` / ``ship_bytes_avoided``), with byte-identity across
  policies asserted and the locality policy required to record at least
  one zero-ship placement.

``--check`` prints an explicit gate summary naming every gate that ran
and every gate that was skipped (with the reason) -- the core-count
ordering gates used to skip silently on < 4-core hosts.

Results land in ``BENCH_sim_throughput.json`` at the repository root (the
perf trajectory file CI uploads as an artifact).  ``--check`` compares a
fresh measurement against a recorded baseline and fails when the serial
engine regresses more than 30% below it; on hosts with >= 4 cores it also
reports (without gating) whether the process backend beat the thread
backend on the one-shot trial batch and whether the persistent pool beat
fork-per-batch on the small-batch leg.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py \
        --check benchmarks/sim_throughput_baseline.json

Not collected by pytest (no ``test_`` prefix): throughput numbers are
hardware-dependent and belong in CI's artifact trail, not the tier-1 gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_sim_throughput.json"

#: The serial engine may regress at most this far below the baseline.
REGRESSION_TOLERANCE = 0.30

#: Minimum columnar-over-serial events/s ratio (measured within one run,
#: so host speed cancels out); the structure-of-arrays replay loop must
#: hold this on every machine.
COLUMNAR_SPEEDUP_FLOOR = 2.0

CLUSTER = "v100-8"
MODEL = "gpt-tiny"
GLOBAL_BATCH = 16
#: Repeats per engine configuration (best-of to shed scheduler noise).
ENGINE_REPEATS = 3
#: Iterations of the folding workload (emulated with a jitter-free host
#: model so its windows are steady-state periodic).
FOLD_ITERATIONS = 16
#: Distinct configurations per predict_many backend batch.
TRIAL_CONFIGS = 8
#: Localhost worker-host subprocesses for the socket-backend leg.
SOCKET_WORKER_HOSTS = 2
#: Small-batch leg: consecutive cold batches of this width (the shape of a
#: search sweep over a small model, where fork overhead dominates).
SMALL_BATCHES = 4
SMALL_BATCH_CONFIGS = 3
#: Chaos leg (``--chaos``): job lease on the measured batch, and how far
#: past it the injected straggler sleeps.
CHAOS_LEASE_TIMEOUT = 0.5
CHAOS_STRAGGLER_DELAY = 3.0
#: Scheduler leg (``--schedulers``): distinct cold configurations whose
#: structural siblings make up the reuse batch, and the persistent-pool
#: width the policies place onto.
SCHEDULER_CONFIGS = 4
SCHEDULER_WORKERS = 2


def _engine_setup(iterations: int, smooth_host: bool):
    from repro.core.collator import TraceCollator
    from repro.core.emulator import EmulationSession
    from repro.core.pipeline import MayaPipeline
    from repro.framework.recipe import TrainingRecipe
    from repro.hardware.cluster import get_cluster
    from repro.hardware.host_model import HostModel
    from repro.workloads.job import TransformerTrainingJob
    from repro.workloads.models import get_transformer

    cluster = get_cluster(CLUSTER)
    job = TransformerTrainingJob(
        get_transformer(MODEL),
        TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                       microbatch_multiplier=2, dtype="float16"),
        cluster, global_batch_size=GLOBAL_BATCH, iterations=iterations)
    host_model = HostModel(jitter=0.0) if smooth_host else None
    session = EmulationSession(cluster, host_model=host_model)
    emulated = session.run(job.worker_fn, ranks=job.unique_ranks(),
                           world_size=job.world_size)
    collated = TraceCollator().collate(emulated.job_trace,
                                       topology=job.topology())
    pipeline = MayaPipeline(cluster, estimator_mode="analytical")
    return cluster, collated, pipeline.make_provider(), \
        pipeline._simulation_ranks(job), job.iterations


def _measure_engine(cluster, collated, provider, ranks, iterations,
                    **config_kwargs) -> Dict[str, float]:
    from repro.core.simulator.engine import ClusterSimulator, SimulationConfig

    simulator = ClusterSimulator(
        cluster, provider,
        SimulationConfig(simulate_ranks=ranks, **config_kwargs))
    report = simulator.simulate(collated, iterations=iterations)  # warm-up
    best_wall = float("inf")
    for _ in range(ENGINE_REPEATS):
        start = time.perf_counter()
        report = simulator.simulate(collated, iterations=iterations)
        best_wall = min(best_wall, time.perf_counter() - start)
    return {
        "events": int(report.metadata["processed_events"]),
        "wall_s": best_wall,
        "events_per_sec": report.metadata["processed_events"] / best_wall,
        "total_time_s": report.total_time,
        "folded_iterations": (report.metadata.get("iteration_folding") or
                              {}).get("folded_iterations", 0),
        "host_jitter_bound_s": (report.metadata.get("iteration_folding") or
                                {}).get("host_jitter_bound_s", 0.0),
    }


def bench_engine() -> Dict[str, object]:
    """Events/sec of the engine per configuration, on one shared trace."""
    setup = _engine_setup(iterations=2, smooth_host=False)
    serial = _measure_engine(*setup, use_annotations=False,
                             fold_iterations=False)
    annotated = _measure_engine(*setup, fold_iterations=False,
                                use_columnar=False)
    assert annotated["total_time_s"] == serial["total_time_s"], \
        "annotation fast path must be bit-identical"
    columnar = _measure_engine(*setup, fold_iterations=False)
    assert columnar["total_time_s"] == serial["total_time_s"], \
        "columnar fast path must be bit-identical"

    fold_setup = _engine_setup(iterations=FOLD_ITERATIONS, smooth_host=True)
    fold_full = _measure_engine(*fold_setup, use_annotations=False,
                                fold_iterations=False)
    folded = _measure_engine(*fold_setup)
    # Folding replays fewer events for the same simulated workload, so its
    # rate is expressed as *simulated-trace* events per wall second.
    folded_equivalent = fold_full["events"] / folded["wall_s"]

    # Default (jittered) host model: the structured host-delay split keeps
    # the trace periodic, folding extrapolates at the analytic mean jitter
    # factor and the committed total must stay within the documented bound.
    jitter_setup = _engine_setup(iterations=FOLD_ITERATIONS,
                                 smooth_host=False)
    jitter_full = _measure_engine(*jitter_setup, fold_iterations=False)
    jitter_folded = _measure_engine(*jitter_setup)
    jitter_error = abs(jitter_folded["total_time_s"]
                       - jitter_full["total_time_s"])
    if jitter_folded["folded_iterations"] > 0:
        assert jitter_error <= jitter_folded["host_jitter_bound_s"], \
            "folded total exceeded the documented host-jitter bound"
    jittered_fold = {
        "trace_events": jitter_full["events"],
        "full_events_per_sec": jitter_full["events_per_sec"],
        "fold_equivalent_events_per_sec": (jitter_full["events"]
                                           / jitter_folded["wall_s"]),
        "fold_speedup": (jitter_full["events"] / jitter_folded["wall_s"])
        / jitter_full["events_per_sec"],
        "folded_iterations": jitter_folded["folded_iterations"],
        "fold_abs_error_s": jitter_error,
        "host_jitter_bound_s": jitter_folded["host_jitter_bound_s"],
    }
    return {
        "trace_events": serial["events"],
        "serial_events_per_sec": serial["events_per_sec"],
        "annotated_events_per_sec": annotated["events_per_sec"],
        "annotation_speedup": annotated["events_per_sec"]
        / serial["events_per_sec"],
        "columnar_events_per_sec": columnar["events_per_sec"],
        "columnar_speedup": columnar["events_per_sec"]
        / serial["events_per_sec"],
        "fold_trace_events": fold_full["events"],
        "fold_full_events_per_sec": fold_full["events_per_sec"],
        "fold_equivalent_events_per_sec": folded_equivalent,
        "fold_speedup": folded_equivalent / fold_full["events_per_sec"],
        "folded_iterations": folded["folded_iterations"],
        "jittered_fold": jittered_fold,
    }


def bench_wire_shipping() -> Dict[str, object]:
    """Bytes per shipped trace artifact: pickled graph vs columnar frame.

    Serialises the benchmark workload's representative worker traces the
    two ways the socket backend can ship them -- a plain pickle of the
    ``TraceEvent`` graph (pre-columnar peers) and the negotiated columnar
    payload -- and reports bytes per artifact and per event for both.
    """
    from repro.core.columnar import HAVE_NUMPY
    from repro.service import wire

    _, collated, _, _, _ = _engine_setup(iterations=2, smooth_host=False)
    traces = list(collated.traces.values())
    events = sum(len(trace.events) for trace in traces)
    pickled = sum(len(wire.dumps(trace)) for trace in traces)
    result: Dict[str, object] = {
        "artifacts": len(traces),
        "trace_events": events,
        "pickle_bytes": pickled,
        "pickle_bytes_per_event": pickled / events,
    }
    if HAVE_NUMPY:
        columnar = sum(len(wire.dumps_columnar(trace)) for trace in traces)
        result["columnar_bytes"] = columnar
        result["columnar_bytes_per_event"] = columnar / events
        result["columnar_shrink"] = pickled / columnar
    return result


def bench_predict_many() -> Dict[str, Dict[str, float]]:
    """Cold trials/sec of one batch of distinct configs per backend.

    The ``socket`` leg runs the multi-host backend over loopback: two
    localhost ``repro worker-host`` subprocesses are spawned, the warmed
    service is shipped to each over the wire protocol, and the batch is
    scattered exactly as it would be across real machines -- so its wall
    time includes the bootstrap (pickle + TCP) overhead real deployments
    pay once per ``warm()``.

    The ``served`` leg is report-only: a long-lived prediction server on
    a background thread (serial evaluation, as a server would be warm in
    steady state) with the batch submitted through ``PredictionClient``,
    measuring what the wire adds on top of the serial leg.
    """
    from repro.analysis.experiments import candidate_recipes
    from repro.hardware.cluster import get_cluster
    from repro.service import PredictionService
    from repro.service.worker_host import spawn_local_worker_hosts
    from repro.workloads.job import TransformerTrainingJob
    from repro.workloads.models import get_transformer

    cluster = get_cluster(CLUSTER)
    model = get_transformer(MODEL)
    recipes = candidate_recipes(model, cluster, GLOBAL_BATCH,
                                limit=TRIAL_CONFIGS)
    workers = max(min(os.cpu_count() or 1, 8), 2)
    results: Dict[str, Dict[str, float]] = {}
    reference: List[float] = []

    def measure(backend: str, service: PredictionService,
                worker_count: int) -> None:
        with service:
            service.warm()
            jobs = [TransformerTrainingJob(model, recipe, cluster,
                                           global_batch_size=GLOBAL_BATCH)
                    for recipe in recipes]
            start = time.perf_counter()
            predictions = service.predict_many(jobs)
            wall = time.perf_counter() - start
        times = [prediction.iteration_time for prediction in predictions]
        if not reference:
            reference.extend(times)
        assert times == reference, \
            f"backend {backend} diverged from serial predictions"
        results[backend] = {
            "trials": len(jobs),
            "wall_s": wall,
            "trials_per_sec": len(jobs) / wall,
            "workers": worker_count,
        }

    for backend in ("serial", "thread", "process", "persistent"):
        measure(backend, PredictionService(cluster=cluster,
                                           estimator_mode="analytical",
                                           backend=backend,
                                           max_workers=workers), workers)
    socket_workers = min(workers, SOCKET_WORKER_HOSTS)
    with spawn_local_worker_hosts(socket_workers) as addresses:
        measure("socket", PredictionService(cluster=cluster,
                                            estimator_mode="analytical",
                                            backend="socket",
                                            workers=addresses),
                socket_workers)

    # Served leg (report-only): the same cold batch through a long-lived
    # prediction server -- one warm serial service behind TCP, so the
    # delta over the serial leg is the round-trip + pickle cost a
    # `repro serve` client pays per batch.
    from repro.service.server import PredictionClient, start_server_thread

    server = start_server_thread(
        PredictionService(cluster=cluster, estimator_mode="analytical",
                          backend="serial"))
    try:
        measure("served", PredictionClient(server.address), 1)
    finally:
        server.stop_threadsafe()
    return results


def bench_small_batches() -> Dict[str, object]:
    """Fork-per-batch vs persistent pool on consecutive small cold batches.

    Every batch holds ``SMALL_BATCH_CONFIGS`` distinct cold configurations
    of a small model -- cheap enough that the ``process`` backend's
    per-batch fork+pickle overhead dominates.  The persistent pool pays one
    fork at warm-up and then ships only incremental cache deltas, so its
    total wall time should win on multi-core hosts.  Timing includes
    ``warm()`` for both backends (the persistent pool's single fork is part
    of its cost).
    """
    from repro.analysis.experiments import candidate_recipes
    from repro.hardware.cluster import get_cluster
    from repro.service import PredictionService
    from repro.workloads.job import TransformerTrainingJob
    from repro.workloads.models import get_transformer

    cluster = get_cluster(CLUSTER)
    model = get_transformer(MODEL)
    recipes = candidate_recipes(model, cluster, GLOBAL_BATCH,
                                limit=SMALL_BATCHES * SMALL_BATCH_CONFIGS)
    batches = [recipes[index:index + SMALL_BATCH_CONFIGS]
               for index in range(0, len(recipes), SMALL_BATCH_CONFIGS)]
    workers = max(min(os.cpu_count() or 1, 8), 2)
    results: Dict[str, object] = {
        "batches": len(batches),
        "batch_width": SMALL_BATCH_CONFIGS,
        "workers": workers,
    }
    reference: List[float] = []
    for backend in ("process", "persistent"):
        trials = 0
        start = time.perf_counter()
        with PredictionService(cluster=cluster,
                               estimator_mode="analytical",
                               backend=backend,
                               max_workers=workers) as service:
            service.warm()
            times: List[float] = []
            for batch in batches:
                jobs = [TransformerTrainingJob(model, recipe, cluster,
                                               global_batch_size=GLOBAL_BATCH)
                        for recipe in batch]
                trials += len(jobs)
                times.extend(prediction.iteration_time for prediction
                             in service.predict_many(jobs))
        wall = time.perf_counter() - start
        if not reference:
            reference = times
        assert times == reference, \
            f"backend {backend} diverged on the small-batch leg"
        results[backend] = {
            "trials": trials,
            "wall_s": wall,
            "trials_per_sec": trials / wall,
        }
    results["persistent_speedup_vs_process"] = (
        results["process"]["wall_s"] / results["persistent"]["wall_s"])
    return results


def bench_chaos() -> Dict[str, object]:
    """Recovery cost of one straggler re-dispatched past its lease.

    Report-only: runs the persistent-pool batch twice -- clean, then with
    a deterministic :class:`~repro.service.FaultPlan` that puts one worker
    to sleep ``CHAOS_STRAGGLER_DELAY`` seconds on one job, well past the
    ``CHAOS_LEASE_TIMEOUT`` lease.  The lease machinery must re-dispatch
    the job to the other worker and finish the batch without waiting the
    straggler out; the makespan ratio is the measured cost of that
    recovery (waiting would cost roughly the full straggler delay).
    Predictions must stay identical between the two runs.
    """
    from repro.analysis.experiments import candidate_recipes
    from repro.hardware.cluster import get_cluster
    from repro.service import (FaultPlan, FaultRule, PredictionService,
                               install_fault_plan)
    from repro.workloads.job import TransformerTrainingJob
    from repro.workloads.models import get_transformer

    cluster = get_cluster(CLUSTER)
    model = get_transformer(MODEL)
    recipes = candidate_recipes(model, cluster, GLOBAL_BATCH,
                                limit=TRIAL_CONFIGS)

    def run_once(plan):
        install_fault_plan(plan)
        try:
            with PredictionService(cluster=cluster,
                                   estimator_mode="analytical",
                                   backend="persistent", max_workers=2,
                                   lease_timeout=CHAOS_LEASE_TIMEOUT
                                   ) as service:
                service.warm()
                jobs = [TransformerTrainingJob(model, recipe, cluster,
                                               global_batch_size=GLOBAL_BATCH)
                        for recipe in recipes]
                start = time.perf_counter()
                predictions = service.predict_many(jobs)
                wall = time.perf_counter() - start
                stats = dict(service.backend_impl.resilience_stats)
            return ([prediction.iteration_time
                     for prediction in predictions], wall, stats)
        finally:
            install_fault_plan(None)

    clean_times, clean_wall, _ = run_once(None)
    straggler = FaultPlan([FaultRule(action="slow", job=2, when="before",
                                     delay_s=CHAOS_STRAGGLER_DELAY,
                                     worker=0)])
    chaos_times, chaos_wall, stats = run_once(straggler)
    assert chaos_times == clean_times, \
        "chaos leg diverged from the clean persistent run"
    return {
        "trials": len(recipes),
        "lease_timeout_s": CHAOS_LEASE_TIMEOUT,
        "straggler_delay_s": CHAOS_STRAGGLER_DELAY,
        "clean_wall_s": clean_wall,
        "chaos_wall_s": chaos_wall,
        "recovery_overhead": chaos_wall / clean_wall,
        "lease_expirations": stats["lease_expirations"],
        "redispatched_jobs": stats["redispatched_jobs"],
        "stragglers_discarded": stats["stragglers_discarded"],
    }


def bench_store() -> Dict[str, object]:
    """Cold vs warm wall time of one batch against a shared artifact store.

    Report-only: runs the serial predict_many batch twice against the
    same temporary ``--store-dir``.  The cold run starts with an empty
    store and populates it (every artifact simulated, then written
    through).  The warm run is a *fresh* service -- empty memory tier,
    no journal -- attached to the now-populated store, so every
    artifact hydrates from disk instead of being re-simulated.  The
    predictions must be byte-identical; the speedup is what a second
    process (or a restart) gains from the persistent cold tier.
    """
    import shutil
    import tempfile

    from repro.analysis.experiments import candidate_recipes
    from repro.hardware.cluster import get_cluster
    from repro.service import PredictionService
    from repro.workloads.job import TransformerTrainingJob
    from repro.workloads.models import get_transformer

    cluster = get_cluster(CLUSTER)
    model = get_transformer(MODEL)
    recipes = candidate_recipes(model, cluster, GLOBAL_BATCH,
                                limit=TRIAL_CONFIGS)
    store_dir = tempfile.mkdtemp(prefix="repro-bench-store-")

    def run_once():
        with PredictionService(cluster=cluster,
                               estimator_mode="analytical",
                               backend="serial",
                               store_dir=store_dir) as service:
            service.warm()
            jobs = [TransformerTrainingJob(model, recipe, cluster,
                                           global_batch_size=GLOBAL_BATCH)
                    for recipe in recipes]
            start = time.perf_counter()
            predictions = service.predict_many(jobs)
            wall = time.perf_counter() - start
            stats = service.cache_stats()
            store_stats = service.store_stats()
        return ([prediction.iteration_time for prediction in predictions],
                wall, stats, store_stats)

    try:
        cold_times, cold_wall, cold_stats, _ = run_once()
        assert cold_stats["store_hits"] == 0, \
            "cold store leg started with a populated store"
        warm_times, warm_wall, warm_stats, store_stats = run_once()
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    assert warm_times == cold_times, \
        "warm store leg diverged from the cold run"
    assert warm_stats["store_hits"] > 0, \
        "warm store leg did not hydrate from the populated store"
    return {
        "trials": len(recipes),
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "warm_speedup": cold_wall / warm_wall,
        "store_hits": warm_stats["store_hits"],
        "store_entries": store_stats["entries"],
        "store_bytes": store_stats["total_bytes"],
    }


def bench_schedulers() -> Dict[str, object]:
    """Per-policy makespan + placement counters on a store-shared workload.

    Report-only: runs one warm-then-reuse workload (a cold batch of
    distinct configurations, then their structural siblings, whose
    artifacts the cache-delta sync would ship) through the persistent
    pool under every registered placement policy, each against its own
    fresh ``--store-dir`` so the runs are independent.  Predictions must
    be byte-identical across policies -- placement may only move wall
    time and ship bytes -- and the ``locality`` policy must record at
    least one zero-ship placement (an artifact-holding job kept off a
    worker that would need the artifact shipped).
    """
    import shutil
    import tempfile

    from repro.analysis.experiments import candidate_recipes
    from repro.hardware.cluster import get_cluster
    from repro.service import SCHEDULER_NAMES, PredictionService
    from repro.workloads.job import TransformerTrainingJob
    from repro.workloads.models import get_transformer

    cluster = get_cluster(CLUSTER)
    model = get_transformer(MODEL)
    base = candidate_recipes(model, cluster, GLOBAL_BATCH,
                             limit=SCHEDULER_CONFIGS)
    batches = [base, [recipe.replace(compiled=True) for recipe in base]]
    results: Dict[str, object] = {
        "backend": "persistent",
        "workers": SCHEDULER_WORKERS,
        "batches": len(batches),
        "trials": sum(len(batch) for batch in batches),
        "policies": {},
    }
    reference: List[float] = []
    for policy in SCHEDULER_NAMES:
        store_dir = tempfile.mkdtemp(prefix=f"repro-bench-sched-{policy}-")
        try:
            with PredictionService(cluster=cluster,
                                   estimator_mode="analytical",
                                   backend="persistent",
                                   max_workers=SCHEDULER_WORKERS,
                                   store_dir=store_dir,
                                   scheduler=policy) as service:
                service.warm()
                times: List[float] = []
                start = time.perf_counter()
                for batch in batches:
                    jobs = [TransformerTrainingJob(
                        model, recipe, cluster,
                        global_batch_size=GLOBAL_BATCH)
                        for recipe in batch]
                    times.extend(prediction.iteration_time for prediction
                                 in service.predict_many(jobs))
                wall = time.perf_counter() - start
                sync = dict(service.backend_impl.sync_stats)
        finally:
            shutil.rmtree(store_dir, ignore_errors=True)
        if not reference:
            reference.extend(times)
        assert times == reference, \
            f"scheduler {policy} diverged from the reference predictions " \
            f"-- placement must never change results"
        results["policies"][policy] = {
            "makespan_s": wall,
            "placements": sync.get("placements", 0),
            "locality_hits": sync.get("locality_hits", 0),
            "ship_bytes_avoided": sync.get("ship_bytes_avoided", 0),
        }
    locality = results["policies"].get("locality", {})
    assert locality.get("locality_hits", 0) >= 1, \
        "locality policy recorded no zero-ship placements on the " \
        "store-shared sibling workload"
    assert locality.get("ship_bytes_avoided", 0) > 0, \
        "locality policy avoided no estimated ship bytes"
    return results


def run_benchmark(output: Path, chaos: bool = False,
                  store: bool = False,
                  schedulers: bool = False) -> Dict[str, object]:
    from repro.core.columnar import HAVE_NUMPY

    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - image bakes numpy in
        numpy_version = None
    payload = {
        "benchmark": "sim_throughput",
        "cluster": CLUSTER,
        "model": MODEL,
        "cpu_count": os.cpu_count() or 1,
        "numpy_version": numpy_version,
        "columnar_available": HAVE_NUMPY,
        "unix_time": time.time(),
        "engine": bench_engine(),
        "wire_shipping": bench_wire_shipping(),
        "predict_many": bench_predict_many(),
        "small_batches": bench_small_batches(),
    }
    if chaos:
        payload["chaos"] = bench_chaos()
    if store:
        payload["cold_vs_warm_store"] = bench_store()
    if schedulers:
        payload["schedulers"] = bench_schedulers()
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    engine = payload["engine"]
    print(f"engine: serial {engine['serial_events_per_sec']:,.0f} ev/s, "
          f"annotated {engine['annotated_events_per_sec']:,.0f} ev/s "
          f"({engine['annotation_speedup']:.2f}x), "
          f"columnar {engine['columnar_events_per_sec']:,.0f} ev/s "
          f"({engine['columnar_speedup']:.2f}x), "
          f"folding {engine['fold_equivalent_events_per_sec']:,.0f} ev/s "
          f"({engine['fold_speedup']:.2f}x on "
          f"{FOLD_ITERATIONS}-iteration trace)")
    shipping = payload["wire_shipping"]
    if "columnar_bytes" in shipping:
        print(f"wire shipping: pickle "
              f"{shipping['pickle_bytes_per_event']:.1f} B/event vs "
              f"columnar {shipping['columnar_bytes_per_event']:.1f} B/event "
              f"({shipping['columnar_shrink']:.2f}x smaller over "
              f"{shipping['artifacts']} artifacts)")
    jittered = engine["jittered_fold"]
    print(f"jittered fold: {jittered['folded_iterations']} of "
          f"{FOLD_ITERATIONS} iterations folded on the default host model "
          f"({jittered['fold_speedup']:.2f}x, |error| "
          f"{jittered['fold_abs_error_s']:.2e}s <= bound "
          f"{jittered['host_jitter_bound_s']:.2e}s)")
    for backend, stats in payload["predict_many"].items():
        print(f"predict_many[{backend}]: {stats['trials_per_sec']:.2f} "
              f"trials/s ({stats['wall_s']:.2f}s, "
              f"{stats['workers']} workers)")
    small = payload["small_batches"]
    print(f"small batches ({small['batches']}x{small['batch_width']} cold "
          f"trials): process {small['process']['wall_s']:.2f}s vs "
          f"persistent {small['persistent']['wall_s']:.2f}s "
          f"({small['persistent_speedup_vs_process']:.2f}x)")
    if "chaos" in payload:
        # Report-only: the recovery machinery's measured cost, not a gate.
        leg = payload["chaos"]
        print(f"chaos leg: clean {leg['clean_wall_s']:.2f}s vs one "
              f"{leg['straggler_delay_s']:.1f}s straggler "
              f"{leg['chaos_wall_s']:.2f}s "
              f"({leg['recovery_overhead']:.2f}x; "
              f"{leg['lease_expirations']} lease expirations, "
              f"{leg['redispatched_jobs']} re-dispatches)")
    if "cold_vs_warm_store" in payload:
        # Report-only: what a fresh process gains from the disk tier.
        leg = payload["cold_vs_warm_store"]
        print(f"store leg: cold {leg['cold_wall_s']:.2f}s vs warm "
              f"{leg['warm_wall_s']:.2f}s ({leg['warm_speedup']:.2f}x; "
              f"{leg['store_hits']:.0f} store hits over "
              f"{leg['store_entries']} entries)")
    if "schedulers" in payload:
        leg = payload["schedulers"]
        for policy, stats in leg["policies"].items():
            print(f"schedulers[{policy}]: {stats['makespan_s']:.2f}s "
                  f"makespan, {stats['placements']} placements, "
                  f"{stats['locality_hits']} locality hits, "
                  f"{stats['ship_bytes_avoided']:,} est. ship bytes "
                  f"avoided")
    return payload


def check_against_baseline(current: Dict[str, object],
                           baseline_path: Path) -> int:
    # Every gate (blocking or report-only) records whether it RAN or was
    # SKIPPED and why; the summary at the end names both sets.  The
    # core-count gates used to skip *silently* on small hosts, which read
    # as "checked and fine" in CI logs when nothing had been checked.
    gates: List[tuple] = []
    baseline = json.loads(baseline_path.read_text())
    recorded = float(baseline["engine"]["serial_events_per_sec"])
    floor = recorded * (1.0 - REGRESSION_TOLERANCE)
    measured = float(current["engine"]["serial_events_per_sec"])
    print(f"serial engine: measured {measured:,.0f} ev/s, "
          f"baseline {recorded:,.0f} ev/s, floor {floor:,.0f} ev/s")
    gates.append(("serial-regression", None))
    failed = False
    if measured < floor:
        print(f"FAIL: serial engine regressed "
              f"{(1 - measured / recorded) * 100:.1f}% below the recorded "
              f"baseline (tolerance {REGRESSION_TOLERANCE * 100:.0f}%)")
        failed = True
    if current.get("columnar_available"):
        # Gate the columnar engine on its *relative* win over the serial
        # path (both measured in this run, so machine speed cancels out):
        # the structure-of-arrays loop must hold at least 2x.
        speedup = float(current["engine"].get("columnar_speedup", 0.0))
        print(f"columnar engine: {speedup:.2f}x over serial "
              f"(floor {COLUMNAR_SPEEDUP_FLOOR:.1f}x)")
        gates.append(("columnar-speedup", None))
        if speedup < COLUMNAR_SPEEDUP_FLOOR:
            print(f"FAIL: columnar engine speedup {speedup:.2f}x fell "
                  f"below the {COLUMNAR_SPEEDUP_FLOOR:.1f}x floor")
            failed = True
    else:
        gates.append(("columnar-speedup", "numpy unavailable"))
    jittered = current.get("engine", {}).get("jittered_fold", {})
    if jittered:
        # Report-only for now: folding must engage on the default testbed
        # trace (the structured host-delay split is what unlocks it); the
        # outcome is recorded in the uploaded JSON.
        folded_iterations = int(jittered.get("folded_iterations", 0))
        print(f"jittered-fold gate: {folded_iterations} iterations folded "
              f"on the default host model"
              + ("" if folded_iterations > 0
                 else " (WARNING: folding did not engage on the default "
                      "jittered trace)"))
        gates.append(("jittered-fold", None))
    else:
        gates.append(("jittered-fold", "leg missing from measurement"))
    cores = int(current.get("cpu_count", 1))
    batches = current.get("predict_many", {})
    if cores >= 4 and "process" in batches and "thread" in batches:
        # Report-only: this batch is deliberately small/cheap, so on a
        # noisy shared runner the fork overhead can mask the win.  The
        # ordering is recorded in the uploaded JSON; only the serial
        # engine rate gates the build.
        process_rate = batches["process"]["trials_per_sec"]
        thread_rate = batches["thread"]["trials_per_sec"]
        print(f"backends on {cores} cores: process "
              f"{process_rate:.2f} trials/s vs thread "
              f"{thread_rate:.2f} trials/s"
              + ("" if process_rate > thread_rate
                 else " (WARNING: process did not beat thread)"))
        gates.append(("process-vs-thread", None))
    else:
        gates.append(("process-vs-thread",
                      f"needs >= 4 cores, host has {cores}"
                      if cores < 4 else "predict_many legs missing"))
    small = current.get("small_batches", {})
    if cores >= 4 and "persistent" in small and "process" in small:
        # Report-only for the same reason as above: the acceptance target
        # is "persistent beats fork-per-batch on small batches on a >= 4
        # core host"; the ordering is recorded in the uploaded JSON.
        speedup = float(small["persistent_speedup_vs_process"])
        print(f"small-batch leg on {cores} cores: persistent "
              f"{speedup:.2f}x vs fork-per-batch process"
              + ("" if speedup > 1.0
                 else " (WARNING: persistent did not beat process)"))
        gates.append(("persistent-vs-process", None))
    else:
        gates.append(("persistent-vs-process",
                      f"needs >= 4 cores, host has {cores}"
                      if cores < 4 else "small-batch legs missing"))
    store_leg = current.get("cold_vs_warm_store", {})
    if store_leg:
        # Report-only: the warm run hydrates every artifact from disk, so
        # it must beat re-simulating them; the ratio is recorded in the
        # uploaded JSON.
        speedup = float(store_leg["warm_speedup"])
        print(f"store leg: warm-from-store {speedup:.2f}x vs cold"
              + ("" if speedup > 1.0
                 else " (WARNING: warm store run did not beat cold)"))
        gates.append(("warm-store-speedup", None))
    else:
        gates.append(("warm-store-speedup", "leg not measured (--store)"))
    scheduler_leg = current.get("schedulers", {})
    if scheduler_leg:
        # Report-only: byte-identity across policies and the locality
        # counters are asserted at measurement time; here the per-policy
        # makespans are surfaced next to the other orderings.
        policies = scheduler_leg.get("policies", {})
        ordering = ", ".join(
            f"{policy} {stats['makespan_s']:.2f}s"
            for policy, stats in policies.items())
        locality_hits = policies.get("locality", {}).get("locality_hits", 0)
        print(f"scheduler leg: {ordering}; locality recorded "
              f"{locality_hits} zero-ship placements"
              + ("" if locality_hits >= 1
                 else " (WARNING: locality avoided no ships)"))
        gates.append(("scheduler-policies", None))
    else:
        gates.append(("scheduler-policies",
                      "leg not measured (--schedulers)"))
    ran = [name for name, skip in gates if skip is None]
    skipped = [(name, skip) for name, skip in gates if skip is not None]
    print(f"gate summary: {len(ran)} ran ({', '.join(ran)})")
    for name, reason in skipped:
        print(f"gate summary: SKIPPED {name}: {reason}")
    if not failed:
        print("throughput check passed")
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the benchmark JSON")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="baseline JSON to compare the fresh "
                             "measurement against (exit 1 on regression)")
    parser.add_argument("--chaos", action="store_true",
                        help="also measure the report-only chaos leg: "
                             "persistent-pool makespan with one injected "
                             "straggler re-dispatched past its lease")
    parser.add_argument("--store", action="store_true",
                        help="also measure the report-only store leg: the "
                             "serial batch cold against an empty artifact "
                             "store, then warm from the populated store in "
                             "a fresh service")
    parser.add_argument("--schedulers", action="store_true",
                        help="also measure the report-only scheduler leg: "
                             "the store-shared sibling workload through the "
                             "persistent pool under every placement policy, "
                             "recording per-policy makespans and locality "
                             "counters")
    args = parser.parse_args(argv)
    payload = run_benchmark(args.output, chaos=args.chaos, store=args.store,
                            schedulers=args.schedulers)
    if args.check is not None:
        return check_against_baseline(payload, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
