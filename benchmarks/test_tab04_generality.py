"""Table 4: framework/optimization generality of the emulation approach.

The paper verifies that Maya's emulator runs unmodified training scripts
from DeepSpeed and PyTorch across ZeRO stages, activation offload, FSDP, DDP
and torch.compile, over nine model families.  Here every (optimization,
model) cell runs through the emulator and must produce a non-empty trace.
"""

from __future__ import annotations

from bench_utils import print_table

from repro.core.pipeline import MayaPipeline
from repro.framework.recipe import TrainingRecipe
from repro.hardware.cluster import get_cluster
from repro.workloads.job import TransformerTrainingJob, VisionTrainingJob
from repro.workloads.models import get_convnet, get_transformer

#: (optimization label, recipe overrides) -- the DeepSpeed / PyTorch rows.
OPTIMIZATIONS = (
    ("DDP", dict()),
    ("ZeRO-1", dict(zero_stage=1)),
    ("ZeRO-2", dict(zero_stage=2)),
    ("ZeRO-3 / FSDP", dict(zero_stage=3)),
    ("Activation offload", dict(offload=True)),
    ("torch.compile", dict(compiled=True)),
)

TRANSFORMER_MODELS = ("bert-large", "gpt-small", "llama2-7b", "t5-large",
                      "vit-large")
VISION_MODELS = ("resnet50", "densenet201", "mobilenet-v2", "vgg16")


def run_experiment():
    cluster = get_cluster("a40-8")
    pipeline = MayaPipeline(cluster, estimator_mode="analytical")
    results = {}

    for label, overrides in OPTIMIZATIONS:
        for model_name in TRANSFORMER_MODELS:
            model = get_transformer(model_name)
            # Keep the footprint small: shrink depth for the big models.
            if model.num_layers > 8:
                from dataclasses import replace
                model = replace(model, num_layers=4,
                                name=f"{model.name}-shallow")
            recipe = TrainingRecipe(tensor_parallel=2, pipeline_parallel=1,
                                    microbatch_multiplier=1, dtype="float16",
                                    **overrides)
            job = TransformerTrainingJob(model, recipe, cluster,
                                         global_batch_size=8)
            artifacts = pipeline.emulate(job)
            results[(label, model_name)] = artifacts.job_trace.total_events()

        compiled = bool(overrides.get("compiled", False))
        for model_name in VISION_MODELS:
            job = VisionTrainingJob(get_convnet(model_name), cluster,
                                    global_batch_size=16, compiled=compiled)
            artifacts = pipeline.emulate(job)
            results[(label, model_name)] = artifacts.job_trace.total_events()
    return results


def test_tab04_generality(benchmark, run_once):
    results = run_once(benchmark, run_experiment)

    models = list(TRANSFORMER_MODELS) + list(VISION_MODELS)
    rows = []
    for label, _ in OPTIMIZATIONS:
        rows.append([label] + [results[(label, model)] for model in models])
    print_table("Table 4: emulated trace sizes (events) per optimization x model",
                ["optimization"] + models, rows)

    # Every cell of the matrix produced a trace -- the emulation approach
    # "runs and produces traces" across frameworks and optimizations.
    assert all(count > 100 for count in results.values())
    # Offloading introduces extra host-device transfers, so its traces are
    # longer than plain DDP for the same model.
    for model in TRANSFORMER_MODELS:
        assert results[("Activation offload", model)] > results[("DDP", model)]
