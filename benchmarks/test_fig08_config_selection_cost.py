"""Figure 8: cost impact of prediction accuracy on configuration selection.

Each system picks the configuration it predicts to be fastest; the picked
configuration is then costed at its *actual* (testbed) runtime and
normalised to the true optimum.  The paper reports Maya within ~2% of
optimal while baselines lose up to 56%.
"""

from __future__ import annotations

import math

from bench_utils import fmt, print_table

SYSTEMS = ("optimal", "maya", "Proteus", "Calculon", "AMPeD")


def collect(setups):
    table = {}
    for name, setup in setups.items():
        table[name] = {system: setup.selection_cost(system)
                       for system in SYSTEMS}
        table[name]["cache"] = dict(setup.cache_stats)
    return table


def test_fig08_selection_cost(benchmark, run_once, prediction_setups):
    costs = run_once(benchmark, collect, prediction_setups)

    rows = []
    for name, row in costs.items():
        rows.append([name] + [fmt(row[system]) for system in SYSTEMS]
                    + [fmt(row["cache"].get("hit_rate", 0.0) * 100, 1)])
    print_table("Figure 8: normalized cost of each system's selected config",
                ["setup"] + list(SYSTEMS) + ["artifact reuse %"], rows)

    # Every setup was evaluated through the prediction service; the testbed
    # measurement and Maya's prediction share each config's emulation
    # artifacts, so the artifact cache must show reuse.
    for name, row in costs.items():
        assert row["cache"].get("hits", 0) > 0, name

    worst_maya = 0.0
    worst_baseline = 0.0
    for name, row in costs.items():
        assert row["optimal"] == 1.0
        # Maya's pick is within a few percent of optimal in every setup.
        assert row["maya"] < 1.10, name
        worst_maya = max(worst_maya, row["maya"])
        baseline_costs = [row[system] for system in ("Proteus", "Calculon",
                                                     "AMPeD")
                          if math.isfinite(row[system])]
        assert baseline_costs, f"no baseline produced a pick for {name}"
        worst_baseline = max(worst_baseline, max(baseline_costs))
    # Across the setups, the worst baseline pick is at least as costly as the
    # worst Maya pick (the paper reports 5-56% baseline penalties vs <=2%).
    assert worst_baseline >= worst_maya - 1e-9
