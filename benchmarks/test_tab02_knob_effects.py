"""Table 2: effect of configuration knobs on compute, memory and network load.

The paper asserts the directions analytically; here they are *measured* on
the emulated testbed by toggling one knob at a time on a reference recipe
(fixed global batch size), and compared against the paper's table.
"""

from __future__ import annotations

from bench_utils import print_table

from repro.analysis.knob_effects import (
    PAPER_TABLE2_DIRECTIONS,
    measure_knob_effects,
)
from repro.framework.recipe import TrainingRecipe
from repro.hardware.cluster import get_cluster
from repro.workloads.models import get_transformer


def run_experiment():
    cluster = get_cluster("v100-8")
    model = get_transformer("gpt-small")
    base = TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                          microbatch_multiplier=2, dtype="float16")
    return measure_knob_effects(model, cluster, global_batch_size=64,
                                base_recipe=base)


def test_table2_knob_effects(benchmark, run_once):
    effects = run_once(benchmark, run_experiment)
    by_knob = {effect.knob: effect for effect in effects}

    rows = []
    agreements = 0
    comparisons = 0
    for knob, paper in PAPER_TABLE2_DIRECTIONS.items():
        effect = by_knob[knob]
        measured = {"compute": effect.compute_direction,
                    "memory": effect.memory_direction,
                    "network": effect.network_direction}
        for resource in ("memory", "network"):
            comparisons += 1
            if measured[resource] == paper[resource] or \
                    "flat" in (measured[resource], paper[resource]):
                agreements += 1
        rows.append([
            knob,
            f"{measured['compute']} (paper {paper['compute']})",
            f"{measured['memory']} (paper {paper['memory']})",
            f"{measured['network']} (paper {paper['network']})",
            round(effect.iteration_time_ratio, 3),
            round(effect.peak_memory_ratio, 3),
            round(effect.communication_ratio, 3),
        ])
    print_table("Table 2: measured knob effects vs paper directions",
                ["knob", "compute", "memory", "network", "time ratio",
                 "memory ratio", "network ratio"], rows)

    # All knobs measured, and the memory/network directions broadly agree
    # with the paper (allowing "flat" as a near-miss).
    assert set(by_knob) == set(PAPER_TABLE2_DIRECTIONS)
    assert agreements >= comparisons * 0.7
    # Hard invariants: memory-saving knobs must not increase peak memory.
    assert by_knob["activation_recomputation"].peak_memory_ratio < 1.0
    assert by_knob["tensor_parallel"].peak_memory_ratio < 1.05
    assert by_knob["tensor_parallel"].communication_ratio > 1.0
