"""Table 3: breakdown of prediction error into kernel-estimation error and
emulation/simulation detail loss.

The oracle configuration replaces the learned kernel estimators with true
(expected) kernel runtimes; the residual error isolates what the emulation +
simulation stages lose.  The paper reports oracle errors mostly under 2% and
end-to-end errors within 5-6%.
"""

from __future__ import annotations

import statistics

from bench_utils import fmt, print_table

from repro.analysis.experiments import scaled_transformer
from repro.analysis.metrics import absolute_percentage_error
from repro.core.pipeline import MayaPipeline
from repro.framework.recipe import TrainingRecipe
from repro.hardware.cluster import get_cluster
from repro.testbed import Testbed
from repro.workloads.job import TransformerTrainingJob

#: (model, cluster, global batch, recipe knobs) rows echoing Table 3.
ROWS = (
    ("gpt3-1.3b", "v100-8", 128, dict(tensor_parallel=1, pipeline_parallel=2,
                                      microbatch_multiplier=2)),
    ("gpt3-1.3b", "v100-8", 128, dict(tensor_parallel=2, pipeline_parallel=2,
                                      microbatch_multiplier=2)),
    ("gpt3-1.3b", "v100-8", 128, dict(tensor_parallel=4, pipeline_parallel=2,
                                      microbatch_multiplier=2)),
    ("gpt3-2.7b", "v100-8", 128, dict(tensor_parallel=2, pipeline_parallel=2,
                                      microbatch_multiplier=2,
                                      activation_recomputation=True)),
    ("gpt3-2.7b", "v100-8", 128, dict(tensor_parallel=4, pipeline_parallel=2,
                                      microbatch_multiplier=2,
                                      activation_recomputation=True)),
    ("llama2-7b", "v100-32", 128, dict(tensor_parallel=4, pipeline_parallel=4,
                                       microbatch_multiplier=2,
                                       activation_recomputation=True)),
    ("llama2-7b", "v100-32", 128, dict(tensor_parallel=8, pipeline_parallel=2,
                                       microbatch_multiplier=2,
                                       activation_recomputation=True)),
)


def run_experiment():
    results = []
    for model_name, cluster_name, global_batch, knobs in ROWS:
        cluster = get_cluster(cluster_name)
        model = scaled_transformer(model_name)
        recipe = TrainingRecipe(dtype="float16", **knobs)
        job = TransformerTrainingJob(model, recipe, cluster,
                                     global_batch_size=global_batch)
        if job.validate():
            continue
        learned = MayaPipeline(cluster, estimator_mode="learned")
        oracle = MayaPipeline(cluster, estimator_mode="oracle")
        artifacts = learned.emulate(job)
        if artifacts.oom:
            continue
        actual = Testbed(cluster).measure(job, artifacts)
        e2e = learned.predict(job, artifacts)
        orc = oracle.predict(job, artifacts)
        results.append({
            "model": model_name,
            "cluster": cluster_name,
            "recipe": recipe.short_name(),
            "actual": actual.iteration_time,
            "oracle_error": absolute_percentage_error(actual.iteration_time,
                                                      orc.iteration_time),
            "e2e_error": absolute_percentage_error(actual.iteration_time,
                                                   e2e.iteration_time),
        })
    return results


def test_tab03_error_breakdown(benchmark, run_once):
    results = run_once(benchmark, run_experiment)
    assert results, "every Table 3 row was invalid or OOM"

    rows = [[item["model"], item["cluster"], item["recipe"],
             fmt(item["actual"], 2), fmt(item["oracle_error"], 2),
             fmt(item["e2e_error"], 2)] for item in results]
    print_table("Table 3: oracle vs end-to-end prediction error (%)",
                ["model", "cluster", "recipe", "actual (s)", "oracle %",
                 "e2e %"], rows)

    oracle_errors = [item["oracle_error"] for item in results]
    e2e_errors = [item["e2e_error"] for item in results]
    # Oracle error (emulation + simulation detail loss) is small...
    assert statistics.median(oracle_errors) < 3.0
    # ... and end-to-end error stays within the paper's 5-6% envelope
    # (allowing some slack for the synthetic testbed).
    assert statistics.median(e2e_errors) < 8.0
    # The oracle is at least as accurate as the learned estimators on median.
    assert statistics.median(oracle_errors) <= statistics.median(e2e_errors) + 1.0
