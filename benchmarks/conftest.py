"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table or figure from the paper's evaluation
(Section 7).  Absolute numbers come from the synthetic testbed, so only the
*shape* of the results (who wins, by roughly what factor, where crossovers
fall) is expected to match the paper; EXPERIMENTS.md records both.

The heavyweight ingredient -- evaluating a pool of configurations with the
testbed, Maya and the baselines -- is computed once per session in the
``prediction_setups`` fixture and shared by the Figure 7 / 8 / 9 benchmarks.

Two environment variables control benchmark cost (see
``repro.analysis.experiments``): ``REPRO_BENCH_CONFIGS`` (configurations per
setup, default 20) and ``REPRO_BENCH_SCALE`` (depth divisor for the largest
models, default 2).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_utils import PREDICTION_SETUPS  # noqa: E402

from repro.analysis.experiments import (  # noqa: E402
    SetupEvaluation,
    bench_config_budget,
    candidate_recipes,
    evaluate_setup,
    scaled_transformer,
)
from repro.hardware.cluster import get_cluster  # noqa: E402


@pytest.fixture(scope="session")
def prediction_setups() -> Dict[str, SetupEvaluation]:
    """Evaluate the candidate-config pools for the four paper setups."""
    budget = bench_config_budget()
    setups: Dict[str, SetupEvaluation] = {}
    for name, model_name, cluster_name, global_batch in PREDICTION_SETUPS:
        cluster = get_cluster(cluster_name)
        model = scaled_transformer(model_name)
        recipes = candidate_recipes(model, cluster, global_batch,
                                    limit=budget, seed=7)
        setups[name] = evaluate_setup(name, model, cluster, global_batch,
                                      recipes, estimator_mode="learned",
                                      include_baselines=True)
    return setups


@pytest.fixture(scope="session")
def search_outcomes():
    """Run Maya-Search (CMA-ES, all optimizations on) for two resource specs.

    Shared by the Figure 11 / Figure 15 / Table 6 benchmarks.  The search
    space is the Table 5 grid; the workload is a depth-scaled GPT-3 2.7B so
    that each trial's emulation completes in well under a second.
    """
    from repro.search import MayaSearch, MayaTrialEvaluator
    from repro.search.space import default_search_space

    outcomes = {}
    for cluster_name, global_batch in (("v100-8", 256), ("h100-16", 256)):
        cluster = get_cluster(cluster_name)
        model = scaled_transformer("gpt3-2.7b", min_layers=8)
        dtype = "float16" if cluster.gpu.architecture == "volta" else "bfloat16"
        space = default_search_space(dtype=dtype)
        evaluator = MayaTrialEvaluator(model, cluster, global_batch,
                                       estimator_mode="learned")
        search = MayaSearch(
            evaluator, space=space, algorithm="cma",
            world_size=cluster.world_size, global_batch_size=global_batch,
            num_layers=model.num_layers, num_heads=model.num_heads,
            gpus_per_node=cluster.gpus_per_node, enable_pruning=True,
            concurrency=8, seed=13,
        )
        result = search.run(budget=160)
        outcomes[cluster_name] = {
            "cluster": cluster,
            "model": model,
            "global_batch": global_batch,
            "result": result,
        }
    return outcomes


@pytest.fixture(scope="session")
def run_once():
    """Helper to run a callable exactly once under pytest-benchmark."""

    def runner(benchmark, func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
