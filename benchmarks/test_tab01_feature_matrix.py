"""Table 1: feature-coverage matrix of Maya vs existing systems.

The paper's Table 1 lists which parallelism / optimisation knobs each
performance-modeling system can express.  Maya supports everything because
it observes the device API stream; the baselines expose their coverage
through ``supported_features``.
"""

from __future__ import annotations

from bench_utils import print_table

from repro.baselines import all_baselines

FEATURES = (
    "data_parallel", "tensor_parallel", "pipeline_parallel",
    "sequence_parallel", "pipeline_interleaving", "distributed_optimizer",
    "activation_recomputation", "gradient_accumulation",
)

#: Coverage reported by Table 1 of the paper (True = supported).
PAPER_TABLE1 = {
    "Maya": set(FEATURES),
    "Proteus": {"data_parallel", "tensor_parallel", "pipeline_parallel",
                "pipeline_interleaving", "distributed_optimizer",
                "activation_recomputation"},
    "Calculon": set(FEATURES),
    "AMPeD": {"data_parallel", "tensor_parallel", "pipeline_parallel"},
}


def build_matrix():
    matrix = {"Maya": set(FEATURES)}
    for system in all_baselines():
        matrix[system.name] = set(system.supported_features)
    return matrix


def test_table1_feature_matrix(benchmark, run_once):
    matrix = run_once(benchmark, build_matrix)

    rows = []
    for feature in FEATURES:
        rows.append([feature] + ["yes" if feature in matrix[name] else "no"
                                 for name in ("Maya", "Proteus", "Calculon",
                                              "AMPeD")])
    print_table("Table 1: modeling-domain coverage (this reproduction)",
                ["feature", "Maya", "Proteus", "Calculon", "AMPeD"], rows)

    # System properties (upper half of Table 1): only Maya is transparent.
    properties_rows = [
        ["deployment-free prediction", "yes", "yes", "yes", "yes"],
        ["transparent (no code modifications)", "yes", "no", "no", "no"],
        ["workload agnostic", "yes", "yes", "no", "no"],
    ]
    print_table("Table 1: system properties",
                ["property", "Maya", "Proteus", "Calculon", "AMPeD"],
                properties_rows)

    # Maya covers every knob; each baseline matches the paper's coverage row.
    assert matrix["Maya"] == set(FEATURES)
    for name, expected in PAPER_TABLE1.items():
        assert matrix[name] == expected, f"{name} coverage diverged from Table 1"
    # AMPeD and Proteus are strictly less expressive than Maya; Calculon
    # matches the knob coverage but is neither transparent nor
    # workload-agnostic (it only models Megatron-LM-style GPT training).
    assert matrix["AMPeD"] < matrix["Maya"]
    assert matrix["Proteus"] < matrix["Maya"]
