"""Table 6: impact of Maya-Search's optimizations on search runtime.

The paper compares the optimized search (worker deduplication, concurrency,
CMA-ES, pruning) against unoptimized grid search, reporting a >30x
reduction.  This benchmark contrasts the optimized per-trial pipeline
(selective launch + dedup + replica reduction, pruning on) with the
unoptimized one (every rank emulated and simulated, no pruning) on a small
search, and reports per-stage times.
"""

from __future__ import annotations

from bench_utils import fmt, print_table

from repro.analysis.experiments import scaled_transformer
from repro.core.pipeline import MayaPipeline
from repro.hardware.cluster import get_cluster
from repro.search import MayaSearch, MayaTrialEvaluator
from repro.search.space import default_search_space

CLUSTER = "v100-8"
GLOBAL_BATCH = 128
BUDGET = 60


def run_search(optimized: bool):
    cluster = get_cluster(CLUSTER)
    model = scaled_transformer("gpt3-2.7b", min_layers=8)
    space = default_search_space(dtype="float16",
                                 microbatch_multiplier=(1, 2, 4),
                                 virtual_stages=(1, 2))
    pipeline = MayaPipeline(
        cluster, estimator_mode="learned",
        deduplicate_workers=optimized,
        selective_launch=optimized,
        reduce_replicas=optimized,
    )
    evaluator = MayaTrialEvaluator(model, cluster, GLOBAL_BATCH,
                                   pipeline=pipeline)
    search = MayaSearch(
        evaluator, space=space, algorithm="cma" if optimized else "grid",
        world_size=cluster.world_size, global_batch_size=GLOBAL_BATCH,
        num_layers=model.num_layers, num_heads=model.num_heads,
        gpus_per_node=cluster.gpus_per_node, enable_pruning=optimized,
        concurrency=8 if optimized else 1, seed=5,
    )
    return search.run(budget=BUDGET)


def run_experiment():
    return {"optimized": run_search(True), "unoptimized": run_search(False)}


def test_tab06_search_optimizations(benchmark, run_once):
    results = run_once(benchmark, run_experiment)

    rows = []
    for label, result in results.items():
        stages = result.stage_time_totals
        rows.append([
            label,
            fmt(stages.get("emulation", 0.0), 2),
            fmt(stages.get("collation", 0.0), 2),
            fmt(stages.get("prediction", 0.0), 2),
            fmt(stages.get("simulation", 0.0), 2),
            fmt(result.concurrent_makespan, 2),
            result.status_counts["executed"],
            result.status_counts["skipped"],
        ])
    print_table("Table 6: per-stage search cost with and without optimizations"
                " (seconds, summed over executed trials)",
                ["configuration", "emulation", "collation", "prediction",
                 "simulation", "makespan", "executed", "skipped"], rows)

    optimized = results["optimized"]
    unoptimized = results["unoptimized"]
    # The optimized search resolves the same budget with a smaller makespan
    # (concurrency + dedup + pruning), as in Table 6.
    assert optimized.concurrent_makespan < unoptimized.concurrent_makespan
    per_trial_opt = (sum(optimized.stage_time_totals.values())
                     / max(optimized.status_counts["executed"], 1))
    per_trial_unopt = (sum(unoptimized.stage_time_totals.values())
                       / max(unoptimized.status_counts["executed"], 1))
    assert per_trial_opt < per_trial_unopt
