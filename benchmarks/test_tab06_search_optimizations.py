"""Table 6: impact of Maya-Search's optimizations on search runtime.

The paper compares the optimized search (worker deduplication, concurrency,
CMA-ES, pruning, trial result reuse) against unoptimized grid search,
reporting a >30x reduction.  This benchmark contrasts three configurations:

* **optimized** -- the prediction service with the cross-trial artifact
  cache and batch evaluation enabled (plus selective launch, dedup and
  replica reduction in the pipeline),
* **cold** -- the *same* search with caching and parallelism disabled:
  every proposal re-runs the full four-stage pipeline serially, and
* **unoptimized** -- grid search with every rank emulated and simulated and
  pruning off.

It reports per-stage times and the service's cache-hit accounting: the
optimized run must show a nonzero artifact-cache hit rate and beat the cold
run end to end.
"""

from __future__ import annotations

import os

from bench_utils import fmt, print_table

from repro.analysis.experiments import scaled_transformer
from repro.core.pipeline import MayaPipeline
from repro.hardware.cluster import get_cluster
from repro.search import MayaSearch, MayaTrialEvaluator
from repro.search.space import ConfigurationSpace, Knob, default_search_space

CLUSTER = "v100-8"
GLOBAL_BATCH = 256
#: Sample budget of the optimized/cold CMA runs (>= 50 evaluated trials).
BUDGET = 230
GRID_BUDGET = 40
SEED = 13


def _model():
    return scaled_transformer("gpt3-2.7b", min_layers=8)


def _space():
    base = default_search_space(dtype="float16")
    # `compiled` does not change the emitted trace (a non-structural knob),
    # so points differing only in it share emulation artifacts -- exactly
    # the reuse the service's structural cache provides.
    return ConfigurationSpace(knobs=base.knobs + (Knob("compiled",
                                                       (False, True)),),
                              fixed=base.fixed)


def run_service_search(cached: bool, backend: str = "thread"):
    cluster = get_cluster(CLUSTER)
    model = _model()
    evaluator = MayaTrialEvaluator(
        model, cluster, GLOBAL_BATCH, estimator_mode="learned",
        enable_cache=cached, share_provider=cached,
        max_workers=None if cached else 1,
        backend=backend,
    )
    # Train the (per-cluster, globally cached) estimator suite up front so
    # the cached-vs-cold wall-clock comparison measures trial evaluation,
    # not one-time estimator training.
    evaluator.service.warm()
    search = MayaSearch(
        evaluator, space=_space(), algorithm="cma",
        world_size=cluster.world_size, global_batch_size=GLOBAL_BATCH,
        num_layers=model.num_layers, num_heads=model.num_heads,
        gpus_per_node=cluster.gpus_per_node, enable_pruning=True,
        concurrency=8, seed=SEED,
        # Early stopping off so the cached and cold runs see the *same*
        # proposal stream and the wall-clock comparison is apples to apples.
        early_stop_patience=10_000,
    )
    return search.run(budget=BUDGET)


def run_grid_search():
    cluster = get_cluster(CLUSTER)
    model = _model()
    space = default_search_space(dtype="float16",
                                 microbatch_multiplier=(1, 2, 4),
                                 virtual_stages=(1, 2))
    pipeline = MayaPipeline(
        cluster, estimator_mode="learned",
        deduplicate_workers=False,
        selective_launch=False,
        reduce_replicas=False,
    )
    evaluator = MayaTrialEvaluator(model, cluster, GLOBAL_BATCH,
                                   pipeline=pipeline, enable_cache=False,
                                   share_provider=False, max_workers=1)
    search = MayaSearch(
        evaluator, space=space, algorithm="grid",
        world_size=cluster.world_size, global_batch_size=GLOBAL_BATCH,
        num_layers=model.num_layers, num_heads=model.num_heads,
        gpus_per_node=cluster.gpus_per_node, enable_pruning=False,
        concurrency=1, seed=SEED,
    )
    return search.run(budget=GRID_BUDGET)


def run_experiment():
    return {
        "optimized": run_service_search(cached=True),
        "process": run_service_search(cached=True, backend="process"),
        "cold": run_service_search(cached=False),
        "unoptimized": run_grid_search(),
    }


def test_tab06_search_optimizations(benchmark, run_once):
    results = run_once(benchmark, run_experiment)

    rows = []
    for label, result in results.items():
        stages = result.stage_time_totals
        stats = result.cache_stats
        rows.append([
            label,
            fmt(stages.get("emulation", 0.0), 2),
            fmt(stages.get("collation", 0.0), 2),
            fmt(stages.get("prediction", 0.0), 2),
            fmt(stages.get("simulation", 0.0), 2),
            fmt(result.measured_makespan, 2),
            result.status_counts["executed"],
            result.status_counts["cached"],
            result.status_counts["skipped"],
            fmt(stats.get("hit_rate", 0.0) * 100, 1),
        ])
    print_table("Table 6: per-stage search cost with and without optimizations"
                " (seconds, summed over executed trials)",
                ["configuration", "emulation", "collation", "prediction",
                 "simulation", "wall", "executed", "cached", "skipped",
                 "cache hit %"], rows)

    optimized = results["optimized"]
    process = results["process"]
    cold = results["cold"]
    unoptimized = results["unoptimized"]

    # >= 50 trials actually ran through the prediction service.
    assert optimized.status_counts["executed"] >= 50
    # The cross-trial artifact cache resolved a nonzero share of them.
    assert optimized.cache_stats["hits"] > 0
    assert optimized.cache_stats["hit_rate"] > 0.0
    assert optimized.status_counts["cached"] > 0
    # Cached re-proposals and shared artifacts make the same search
    # measurably faster than the cold path end to end...
    assert optimized.measured_makespan < cold.measured_makespan
    # ... while selecting exactly the same configuration with exactly the
    # same predicted iteration time (caching never changes results).
    assert optimized.best is not None and cold.best is not None
    assert optimized.best.recipe == cold.best.recipe
    assert optimized.best.iteration_time == cold.best.iteration_time

    # The process backend runs the same >= 50-trial search in worker
    # processes and must select the identical configuration with the
    # identical predicted iteration time (backends never change results).
    assert process.best is not None
    assert process.best.recipe == optimized.best.recipe
    assert process.best.iteration_time == optimized.best.iteration_time
    assert process.status_counts == optimized.status_counts
    # With real cores available, forked workers beat the GIL-bound thread
    # pool end to end.  Only assert where the claim applies AND the search
    # is doing enough work for the comparison to be scheduler-noise-proof:
    # on few-core machines per-batch fork overhead can win out, and
    # sub-ten-second makespans on shared CI runners are too noisy to gate
    # the build on (the comparison is always printed above either way).
    if (os.cpu_count() or 1) >= 4 and optimized.measured_makespan > 10.0:
        assert process.measured_makespan < optimized.measured_makespan

    # The optimized per-trial pipeline (selective launch + dedup + replica
    # reduction) stays far cheaper than the unoptimized one, as in Table 6.
    per_trial_opt = (sum(optimized.stage_time_totals.values())
                     / max(optimized.status_counts["executed"], 1))
    per_trial_unopt = (sum(unoptimized.stage_time_totals.values())
                       / max(unoptimized.status_counts["executed"], 1))
    assert per_trial_opt < per_trial_unopt
