#!/usr/bin/env python3
"""Quickstart: predict the iteration time of a GPT training job without GPUs.

This is the 30-second tour of the reproduction: define a model and a
training recipe, point Maya at a cluster description, and get a performance
prediction -- iteration time, communication time and peak memory -- from
transparent device emulation plus discrete-event simulation.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.metrics import cost_of_run, mfu
from repro.core.pipeline import MayaPipeline
from repro.framework.recipe import TrainingRecipe
from repro.hardware import get_cluster
from repro.testbed import Testbed
from repro.workloads import TransformerTrainingJob, get_transformer


def main() -> None:
    # 1. Describe the deployment: a 2-node DGX-V100 cluster.
    cluster = get_cluster("v100-16")
    print(f"cluster: {cluster.name} ({cluster.world_size}x {cluster.gpu.name}, "
          f"${cluster.hourly_cost:.0f}/hour)")

    # 2. Pick a model and a training recipe (Megatron-style knobs).
    model = get_transformer("gpt3-2.7b")
    recipe = TrainingRecipe(
        tensor_parallel=4,
        pipeline_parallel=2,
        microbatch_multiplier=4,
        activation_recomputation=True,
        dtype="float16",
    )
    job = TransformerTrainingJob(model, recipe, cluster, global_batch_size=256)
    print(f"model:   {model.name} ({model.total_params / 1e9:.1f}B params)")
    print(f"recipe:  {recipe.short_name()}, "
          f"{recipe.num_microbatches} microbatches of "
          f"{recipe.micro_batch_size(256, cluster.world_size)} samples")

    # 3. Ask Maya for a prediction.  The first call profiles the virtual
    #    device and trains the kernel-runtime estimators (a few seconds);
    #    subsequent predictions on the same cluster reuse them.
    maya = MayaPipeline(cluster, estimator_mode="learned")
    prediction = maya.predict(job)
    print("\n--- Maya prediction ---")
    print(f"iteration time:     {prediction.iteration_time:.2f} s")
    print(f"communication time: {prediction.communication_time:.2f} s")
    print(f"peak memory:        {prediction.peak_memory_gb:.1f} GB")
    print(f"MFU:                "
          f"{mfu(prediction.iteration_time, job.flops_per_iteration(), cluster, recipe.dtype) * 100:.1f}%")
    print(f"cost per iteration: "
          f"${cost_of_run(prediction.iteration_time, cluster):.2f}")
    print(f"pipeline stages (s): "
          f"{ {k: round(v, 2) for k, v in prediction.stage_times.items()} }")

    # 4. Compare against the testbed reference model (the stand-in for
    #    running the job on real hardware).
    actual = Testbed(cluster).measure(job)
    error = abs(prediction.iteration_time - actual.iteration_time) \
        / actual.iteration_time * 100.0
    print("\n--- Testbed reference ---")
    print(f"actual iteration time: {actual.iteration_time:.2f} s")
    print(f"prediction error:      {error:.1f}%")


if __name__ == "__main__":
    main()
