#!/usr/bin/env python3
"""Compare training recipes for one deployment, Maya vs the baselines.

Reproduces the workflow behind Figures 7 and 8 at a small scale: enumerate a
handful of candidate recipes for GPT-3 2.7B on an 8xV100 node, predict each
with Maya and with the Calculon / AMPeD / Proteus baselines, and check the
predictions against the testbed reference.  The summary at the end shows why
prediction fidelity matters: the recipe each system would pick, and how much
that pick actually costs.

Run with::

    python examples/compare_recipes.py
"""

from __future__ import annotations

import math

from repro.analysis.experiments import candidate_recipes, evaluate_setup
from repro.analysis.metrics import normalized_cost
from repro.hardware import get_cluster
from repro.workloads import get_transformer


def main() -> None:
    cluster = get_cluster("v100-8")
    model = get_transformer("gpt3-2.7b")
    global_batch = 256

    recipes = candidate_recipes(model, cluster, global_batch, limit=8, seed=3)
    print(f"evaluating {len(recipes)} candidate recipes for {model.name} "
          f"on {cluster.name}...\n")

    setup = evaluate_setup("example", model, cluster, global_batch, recipes,
                           estimator_mode="learned", include_baselines=True)

    header = (f"{'recipe':<28}{'actual':>9}{'maya':>9}"
              f"{'proteus':>9}{'calculon':>10}{'amped':>8}")
    print(header)
    print("-" * len(header))
    for evaluation in sorted(setup.feasible(), key=lambda ev: ev.actual_time):
        def cell(value: float) -> str:
            return f"{value:8.2f}" if math.isfinite(value) else "     n/a"
        print(f"{evaluation.recipe.short_name():<28}"
              f"{evaluation.actual_time:9.2f}"
              f"{cell(evaluation.maya.iteration_time)}"
              f"{cell(evaluation.baselines.get('Proteus', math.inf))}"
              f"{cell(evaluation.baselines.get('Calculon', math.inf)):>10}"
              f"{cell(evaluation.baselines.get('AMPeD', math.inf))}")

    optimal = setup.optimal()
    print(f"\noptimal recipe (testbed): {optimal.recipe.short_name()} "
          f"at {optimal.actual_time:.2f} s/iteration")
    for system in ("maya", "Proteus", "Calculon", "AMPeD"):
        cost = setup.selection_cost(system)
        label = "n/a (no supported pick)" if math.isinf(cost) else \
            f"{(cost - 1.0) * 100:+.1f}% vs optimal"
        print(f"  {system:<10} pick costs {label}")

    errors = setup.maya_errors()
    print(f"\nMaya mean |error| across feasible recipes: "
          f"{sum(errors) / len(errors):.1f}%")
    print("normalized cost of Maya's pick: "
          f"{normalized_cost(setup.selection_cost('maya'), 1.0):.3f}")


if __name__ == "__main__":
    main()
