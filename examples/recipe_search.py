#!/usr/bin/env python3
"""Maya-Search: find a good training recipe automatically, without GPUs.

Runs the configuration search of Section 5 / 7.3 at laptop scale: CMA-ES
over the Table 5 knob space, with every trial evaluated by Maya's emulation
pipeline, fidelity-preserving pruning and result caching enabled.

Run with::

    python examples/recipe_search.py
"""

from __future__ import annotations

from repro.hardware import get_cluster
from repro.search import MayaSearch, MayaTrialEvaluator
from repro.search.space import default_search_space
from repro.workloads import get_transformer


def main() -> None:
    cluster = get_cluster("v100-8")
    model = get_transformer("gpt3-1.3b")
    global_batch = 128

    space = default_search_space(dtype="float16")
    # The evaluator wraps a PredictionService; use it as a context manager
    # so backend worker pools never outlive the search.  backend= accepts
    # "serial", "thread", "process", "persistent" or "socket" (the last
    # with worker_hosts=["host:port", ...] pointing at running
    # `repro worker-host` processes) -- all five produce identical
    # results, they only differ in wall-clock (see README.md).
    with MayaTrialEvaluator(model, cluster, global_batch,
                            estimator_mode="learned") as evaluator:
        search = MayaSearch(
            evaluator,
            space=space,
            algorithm="cma",
            world_size=cluster.world_size,
            global_batch_size=global_batch,
            num_layers=model.num_layers,
            num_heads=model.num_heads,
            gpus_per_node=cluster.gpus_per_node,
            enable_pruning=True,
            concurrency=8,
            seed=0,
        )

        print(f"searching {space.size()} raw configurations for {model.name} "
              f"on {cluster.name}...")
        result = search.run(budget=300)

    print(f"\nsearch finished in {result.total_wall_time:.1f}s wall time "
          f"({result.concurrent_makespan:.1f}s makespan with 8 workers)")
    print(f"samples used: {result.samples_used}, "
          f"unique valid configs: {result.unique_valid_configs}")
    print(f"trial statuses: {result.status_counts}")
    print(f"pruning tactics fired: {result.pruning_tactic_counts}")

    print("\ntop-5 recipes by predicted iteration time:")
    for rank, trial in enumerate(result.top(5), start=1):
        print(f"  {rank}. {trial.recipe.short_name():<28} "
              f"{trial.iteration_time:7.2f} s/iter   MFU {trial.mfu * 100:5.1f}%   "
              f"peak {trial.peak_memory_bytes / 2**30:5.1f} GB")

    best = result.best
    print(f"\nselected recipe: {best.recipe.short_name()}")
    print(f"  predicted iteration time: {best.iteration_time:.2f} s")
    print(f"  predicted MFU:            {best.mfu * 100:.1f}%")


if __name__ == "__main__":
    main()
