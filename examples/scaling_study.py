#!/usr/bin/env python3
"""What-if scaling study: how does a fixed recipe behave as the cluster grows?

Uses Maya's deployment-free prediction to sweep cluster sizes (the Figure 12
style hyperscale study), reporting iteration time, MFU and cost per step for
a fixed 3D-parallel recipe.  The collective model is the hierarchical
analytical backend, standing in for an external network simulator.

Run with::

    python examples/scaling_study.py
"""

from __future__ import annotations

from repro.analysis.metrics import cost_of_run, mfu
from repro.core.estimators.collective import HierarchicalNetworkModel
from repro.core.estimators.suite import EstimatorSuite, build_estimator_suite
from repro.core.pipeline import MayaPipeline
from repro.framework.recipe import TrainingRecipe
from repro.hardware import get_cluster
from repro.workloads import TransformerTrainingJob, get_transformer


def main() -> None:
    base_cluster = get_cluster("h100-64")
    model = get_transformer("gpt3-18.4b")
    recipe = TrainingRecipe(
        tensor_parallel=8, pipeline_parallel=8, microbatch_multiplier=4,
        activation_recomputation=True, sequence_parallelism=True,
        dtype="bfloat16",
    )

    print(f"{'GPUs':>6} {'global batch':>13} {'iter time (s)':>14} "
          f"{'MFU %':>7} {'$/iteration':>12}")
    for gpu_count in (64, 128, 256, 512):
        cluster = base_cluster.with_world_size(gpu_count)
        global_batch = 8 * gpu_count

        analytical = build_estimator_suite(cluster, mode="analytical",
                                           use_cache=False)
        suite = EstimatorSuite(
            name="analytical+hierarchical-network",
            kernel_estimators=analytical.kernel_estimators,
            fallback_kernel_estimator=analytical.fallback_kernel_estimator,
            collective_estimator=HierarchicalNetworkModel(cluster.interconnect),
        )
        pipeline = MayaPipeline(cluster, estimator_suite=suite)

        job = TransformerTrainingJob(model, recipe, cluster,
                                     global_batch_size=global_batch)
        problems = job.validate()
        if problems:
            print(f"{gpu_count:>6}  invalid: {problems[0]}")
            continue
        prediction = pipeline.predict(job)
        if not prediction.succeeded:
            print(f"{gpu_count:>6}  out of memory "
                  f"({prediction.peak_memory_gb:.0f} GB needed)")
            continue
        achieved = mfu(prediction.iteration_time, job.flops_per_iteration(),
                       cluster, dtype=recipe.dtype)
        print(f"{gpu_count:>6} {global_batch:>13} "
              f"{prediction.iteration_time:>14.2f} {achieved * 100:>7.1f} "
              f"{cost_of_run(prediction.iteration_time, cluster):>12.2f}")


if __name__ == "__main__":
    main()
