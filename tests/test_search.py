"""Tests for Maya-Search: space, algorithms, pruning, scheduling, runner."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework.recipe import TrainingRecipe
from repro.hardware.cluster import get_cluster
from repro.search import (
    CMAESSearch,
    FidelityPreservingPruner,
    GridSearch,
    MayaSearch,
    MayaTrialEvaluator,
    OnePlusOneSearch,
    ParticleSwarmSearch,
    RandomSearch,
    TrialScheduler,
    TrialStatus,
    TwoPointsDESearch,
    get_algorithm,
)
from repro.search.runner import TrialResult
from repro.search.space import DEFAULT_SEARCH_SPACE, default_search_space
from repro.workloads.models import get_transformer


class TestConfigurationSpace:
    def test_default_space_matches_table5(self):
        assert DEFAULT_SEARCH_SPACE.size() == 4 * 4 * 5 * 3 * 2 * 2 * 2
        assert DEFAULT_SEARCH_SPACE.dimensions == 7

    def test_decode_produces_recipe(self):
        recipe = DEFAULT_SEARCH_SPACE.decode([0.0] * 7)
        assert recipe.tensor_parallel == 1
        assert recipe.pipeline_parallel == 1

    def test_encode_decode_roundtrip(self):
        recipe = TrainingRecipe(tensor_parallel=4, pipeline_parallel=2,
                                microbatch_multiplier=6, virtual_stages=2,
                                activation_recomputation=False,
                                sequence_parallelism=True,
                                distributed_optimizer=True)
        vector = DEFAULT_SEARCH_SPACE.encode(recipe)
        assert DEFAULT_SEARCH_SPACE.decode(vector) == recipe

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            DEFAULT_SEARCH_SPACE.decode([0.5, 0.5])

    def test_enumerate_covers_space(self):
        space = default_search_space(tensor_parallel=(1, 2),
                                     pipeline_parallel=(1,),
                                     microbatch_multiplier=(1,),
                                     virtual_stages=(1,),
                                     activation_recomputation=(False,),
                                     sequence_parallelism=(False,),
                                     distributed_optimizer=(False,))
        assert len(list(space.enumerate())) == 2

    def test_valid_recipes_filtering(self):
        space = default_search_space(dtype="float16")
        valid = space.valid_recipes(world_size=8, global_batch_size=64,
                                    num_layers=8, num_heads=8,
                                    gpus_per_node=8)
        assert valid
        assert all(recipe.is_valid(8, 64, 8, 8, 8) for recipe in valid)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=7,
                    max_size=7))
    @settings(max_examples=50, deadline=None)
    def test_decode_always_yields_legal_knob_values(self, vector):
        recipe = DEFAULT_SEARCH_SPACE.decode(vector)
        assert recipe.tensor_parallel in (1, 2, 4, 8)
        assert recipe.pipeline_parallel in (1, 2, 4, 8)
        assert recipe.microbatch_multiplier in (1, 2, 4, 6, 8)
        assert recipe.virtual_stages in (1, 2, 4)


def _sphere(vector):
    """Simple convex objective with optimum at 0.25 per dimension."""
    return float(np.sum((np.asarray(vector) - 0.25) ** 2))


class TestAlgorithms:
    @pytest.mark.parametrize("algorithm_cls", [
        RandomSearch, OnePlusOneSearch, CMAESSearch, ParticleSwarmSearch,
        TwoPointsDESearch,
    ])
    def test_algorithms_make_progress_on_sphere(self, algorithm_cls):
        algorithm = algorithm_cls(dimensions=4, seed=3)
        scores = []
        for _ in range(120):
            vector = algorithm.ask()
            score = _sphere(vector)
            algorithm.tell(vector, score)
            scores.append(score)
        assert algorithm.best_score < np.mean(scores[:10])
        assert algorithm.best_score < 0.1

    def test_algorithms_tolerate_infeasible_scores(self):
        algorithm = CMAESSearch(dimensions=3, seed=0)
        for _ in range(30):
            vector = algorithm.ask()
            algorithm.tell(vector, math.inf)
        vector = algorithm.ask()
        assert np.all((vector >= 0.0) & (vector < 1.0))

    def test_grid_search_enumerates_everything(self):
        grid = GridSearch(dimensions=2, resolutions=[3, 2])
        seen = set()
        for _ in range(6):
            vector = grid.ask()
            seen.add(tuple(np.round(vector, 3)))
        assert len(seen) == 6
        assert grid.exhausted

    def test_get_algorithm_lookup(self):
        assert isinstance(get_algorithm("cma", 3), CMAESSearch)
        assert isinstance(get_algorithm("OnePlusOne", 3), OnePlusOneSearch)
        assert isinstance(get_algorithm("pso", 3), ParticleSwarmSearch)
        assert isinstance(get_algorithm("TwoPointsDE", 3), TwoPointsDESearch)
        assert isinstance(get_algorithm("random", 3), RandomSearch)
        assert isinstance(get_algorithm("grid", 2, resolutions=[2, 2]), GridSearch)
        with pytest.raises(KeyError):
            get_algorithm("simulated-annealing", 3)
        with pytest.raises(ValueError):
            get_algorithm("grid", 3)


class TestPruner:
    def _recipe(self, **kwargs):
        defaults = dict(tensor_parallel=2, pipeline_parallel=2,
                        microbatch_multiplier=2, dtype="float16")
        defaults.update(kwargs)
        return TrainingRecipe(**defaults)

    def test_recomputation_tactic(self):
        pruner = FidelityPreservingPruner()
        pruner.record(self._recipe(activation_recomputation=True), oom=True,
                      iteration_time=math.inf)
        decision = pruner.consult(self._recipe(activation_recomputation=False))
        assert decision.skip and decision.oom
        assert decision.tactic == "activation_recomputation"

    def test_sequence_parallel_tactic(self):
        pruner = FidelityPreservingPruner()
        pruner.record(self._recipe(sequence_parallelism=True), oom=True,
                      iteration_time=math.inf)
        decision = pruner.consult(self._recipe(sequence_parallelism=False))
        assert decision.skip and decision.oom

    def test_distributed_optimizer_tactic_inherits_runtime(self):
        pruner = FidelityPreservingPruner()
        pruner.record(self._recipe(distributed_optimizer=False), oom=False,
                      iteration_time=12.5)
        decision = pruner.consult(self._recipe(distributed_optimizer=True))
        assert decision.skip and not decision.oom
        assert decision.inherited_runtime == pytest.approx(12.5)

    def test_microbatch_tactic_without_pipeline(self):
        pruner = FidelityPreservingPruner()
        base = self._recipe(pipeline_parallel=1, microbatch_multiplier=2)
        pruner.record(base, oom=False, iteration_time=8.0)
        decision = pruner.consult(
            self._recipe(pipeline_parallel=1, microbatch_multiplier=4))
        assert decision.skip
        assert decision.inherited_runtime == pytest.approx(8.0)

    def test_no_skip_without_matching_history(self):
        pruner = FidelityPreservingPruner()
        assert not pruner.consult(self._recipe()).skip

    def test_disabled_pruner_never_skips(self):
        pruner = FidelityPreservingPruner(enabled=False)
        pruner.record(self._recipe(activation_recomputation=True), oom=True,
                      iteration_time=math.inf)
        assert not pruner.consult(
            self._recipe(activation_recomputation=False)).skip

    def test_successful_recompute_config_does_not_trigger_skip(self):
        pruner = FidelityPreservingPruner()
        pruner.record(self._recipe(activation_recomputation=True), oom=False,
                      iteration_time=5.0)
        assert not pruner.consult(
            self._recipe(activation_recomputation=False)).skip


class TestScheduler:
    def test_status_counts(self):
        scheduler = TrialScheduler(concurrency=2)
        scheduler.record(("a",), TrialStatus.EXECUTED, 1.0, wall_time=2.0)
        scheduler.record(("b",), TrialStatus.EXECUTED, 2.0, wall_time=3.0)
        scheduler.record(("a",), TrialStatus.CACHED, 1.0)
        scheduler.record(("c",), TrialStatus.SKIPPED, math.inf)
        counts = scheduler.status_counts()
        assert counts["executed"] == 2
        assert counts["cached"] == 1
        assert counts["skipped"] == 1

    def test_concurrent_makespan_balances_workers(self):
        scheduler = TrialScheduler(concurrency=2)
        for wall in (4.0, 3.0, 2.0, 1.0):
            scheduler.record((wall,), TrialStatus.EXECUTED, wall,
                             wall_time=wall)
        assert scheduler.concurrent_makespan() == pytest.approx(5.0)
        assert scheduler.executed_wall_time() == pytest.approx(10.0)

    def test_cache_lookup(self):
        scheduler = TrialScheduler()
        scheduler.record(("x",), TrialStatus.EXECUTED, 7.0, wall_time=1.0)
        assert scheduler.cached_score(("x",)) == 7.0
        assert scheduler.cached_score(("y",)) is None

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ValueError):
            TrialScheduler(concurrency=0)


class _SyntheticEvaluator:
    """Cheap evaluator with a known optimum for runner tests."""

    def __init__(self):
        self.calls = 0

    def __call__(self, recipe: TrainingRecipe) -> TrialResult:
        self.calls += 1
        # Optimum at tp=4, pp=2, no recomputation.
        time = (abs(recipe.tensor_parallel - 4) + abs(recipe.pipeline_parallel - 2)
                + (1.0 if recipe.activation_recomputation else 0.0)
                + 0.1 * recipe.microbatch_multiplier + 1.0)
        oom = recipe.tensor_parallel == 1 and recipe.pipeline_parallel == 1
        return TrialResult(recipe=recipe,
                           iteration_time=math.inf if oom else time,
                           mfu=0.5 / time, oom=oom, wall_time=0.01)


class TestMayaSearchRunner:
    def _search(self, algorithm="cma", budget=200, enable_pruning=True,
                seed=0):
        evaluator = _SyntheticEvaluator()
        space = default_search_space(dtype="float16")
        search = MayaSearch(evaluator, space=space, algorithm=algorithm,
                            world_size=64, global_batch_size=512,
                            num_layers=32, num_heads=32, gpus_per_node=8,
                            enable_pruning=enable_pruning, seed=seed)
        return search.run(budget=budget), evaluator

    def test_search_finds_near_optimal_config(self):
        result, _ = self._search(budget=400)
        assert result.best is not None
        assert result.best.recipe.tensor_parallel == 4
        assert result.best.recipe.pipeline_parallel == 2

    def test_status_breakdown_recorded(self):
        result, evaluator = self._search(budget=300)
        counts = result.status_counts
        assert counts["executed"] == evaluator.calls
        assert counts["cached"] > 0
        assert result.samples_used <= 300

    def test_pruning_reduces_executed_trials(self):
        with_pruning, ev1 = self._search(budget=250, enable_pruning=True,
                                         seed=2)
        without_pruning, ev2 = self._search(budget=250, enable_pruning=False,
                                            seed=2)
        assert with_pruning.status_counts["skipped"] > 0
        assert without_pruning.status_counts["skipped"] == 0

    def test_grid_search_stops_when_exhausted(self):
        evaluator = _SyntheticEvaluator()
        space = default_search_space(tensor_parallel=(1, 2),
                                     pipeline_parallel=(1, 2),
                                     microbatch_multiplier=(1,),
                                     virtual_stages=(1,),
                                     activation_recomputation=(False,),
                                     sequence_parallelism=(False,),
                                     distributed_optimizer=(False,),
                                     dtype="float16")
        search = MayaSearch(evaluator, space=space, algorithm="grid",
                            world_size=8, global_batch_size=64, num_layers=8,
                            num_heads=8, early_stop_patience=1000)
        result = search.run(budget=100)
        assert result.samples_used == 4

    def test_top_k_reporting(self):
        result, _ = self._search(budget=200)
        top = result.top(3)
        assert len(top) <= 3
        assert all(top[i].iteration_time <= top[i + 1].iteration_time
                   for i in range(len(top) - 1))

    def test_maya_trial_evaluator_end_to_end(self):
        cluster = get_cluster("v100-8")
        evaluator = MayaTrialEvaluator(get_transformer("gpt-tiny"), cluster,
                                       global_batch_size=16,
                                       estimator_mode="analytical")
        result = evaluator(TrainingRecipe(tensor_parallel=2,
                                          pipeline_parallel=2,
                                          microbatch_multiplier=2,
                                          dtype="float16"))
        assert result.feasible
        assert result.iteration_time > 0
        assert 0.0 < result.mfu <= 1.0
