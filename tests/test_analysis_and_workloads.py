"""Tests for analysis metrics, knob effects, experiment helpers and workloads."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import (
    bench_config_budget,
    bench_scale,
    candidate_recipes,
    evaluate_setup,
    scaled_transformer,
)
from repro.analysis.knob_effects import PAPER_TABLE2_DIRECTIONS, measure_knob_effects
from repro.analysis.metrics import (
    absolute_percentage_error,
    cost_of_run,
    error_cdf,
    fraction_below,
    mfu,
    normalized_cost,
)
from repro.framework.recipe import TrainingRecipe
from repro.hardware.cluster import get_cluster
from repro.workloads.job import TransformerTrainingJob, VisionTrainingJob
from repro.workloads.models import (
    CONVNET_PRESETS,
    TRANSFORMER_PRESETS,
    get_convnet,
    get_transformer,
)


class TestMetrics:
    def test_absolute_percentage_error(self):
        assert absolute_percentage_error(10.0, 11.0) == pytest.approx(10.0)
        assert math.isinf(absolute_percentage_error(10.0, math.inf))
        assert math.isinf(absolute_percentage_error(0.0, 1.0))

    def test_error_cdf_is_monotone(self):
        cdf = error_cdf([5.0, 1.0, 3.0, math.inf])
        assert [point[0] for point in cdf] == [1.0, 3.0, 5.0]
        assert cdf[-1][1] == pytest.approx(1.0)

    def test_fraction_below(self):
        assert fraction_below([1.0, 2.0, 10.0], 5.0) == pytest.approx(2 / 3)
        assert fraction_below([], 5.0) == 0.0

    def test_mfu_bounds_and_scaling(self):
        cluster = get_cluster("h100-64")
        value = mfu(iteration_time=2.0, flops_per_iteration=1e16,
                    cluster=cluster)
        assert 0.0 < value < 1.0
        assert mfu(1.0, 1e16, cluster) > value
        assert mfu(math.inf, 1e16, cluster) == 0.0

    def test_cost_of_run(self):
        cluster = get_cluster("v100-8")
        assert cost_of_run(3600.0, cluster) == pytest.approx(cluster.hourly_cost)
        assert math.isinf(cost_of_run(math.inf, cluster))

    def test_normalized_cost(self):
        assert normalized_cost(12.0, 10.0) == pytest.approx(1.2)
        assert math.isinf(normalized_cost(math.inf, 10.0))

    @given(st.floats(min_value=0.1, max_value=1e4),
           st.floats(min_value=0.1, max_value=1e4))
    @settings(max_examples=40, deadline=None)
    def test_normalized_cost_of_optimal_is_one(self, optimal, other):
        assert normalized_cost(optimal, optimal) == pytest.approx(1.0)
        assert normalized_cost(max(optimal, other), optimal) >= 1.0


class TestWorkloadPresets:
    def test_transformer_presets_cover_paper_models(self):
        for name in ("gpt3-2.7b", "gpt3-18.4b", "gpt3-145.6b", "llama2-7b",
                     "bert-large", "t5-large", "vit-large"):
            assert name in TRANSFORMER_PRESETS

    def test_convnet_presets_cover_table4_families(self):
        for name in ("resnet152", "densenet201", "mobilenet-v2", "vgg16"):
            assert name in CONVNET_PRESETS

    def test_unknown_presets_raise(self):
        with pytest.raises(KeyError):
            get_transformer("gpt5")
        with pytest.raises(KeyError):
            get_convnet("efficientnet")

    def test_llama_uses_custom_ffn(self):
        llama = get_transformer("llama2-7b")
        assert llama.ffn_size == 16512  # 1.5x 11008: SwiGLU folded into a 2-matrix MLP
        assert llama.total_params == pytest.approx(6.7e9, rel=0.15)


class TestTrainingJobs:
    def test_transformer_job_metadata(self):
        cluster = get_cluster("v100-8")
        job = TransformerTrainingJob(
            get_transformer("gpt-tiny"),
            TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                           microbatch_multiplier=2, dtype="float16"),
            cluster, global_batch_size=16)
        assert job.world_size == 8
        assert job.validate() == []
        assert len(job.unique_ranks()) == 2
        assert job.flops_per_iteration() > 0
        assert job.topology().data_parallel == 2

    def test_invalid_job_reports_problems(self):
        cluster = get_cluster("v100-8")
        job = TransformerTrainingJob(
            get_transformer("gpt-tiny"),
            TrainingRecipe(tensor_parallel=16), cluster, global_batch_size=16)
        assert job.validate()

    def test_vision_job_metadata(self):
        cluster = get_cluster("a40-8")
        job = VisionTrainingJob(get_convnet("convnet-tiny"), cluster,
                                global_batch_size=64)
        assert job.local_batch_size == 8
        assert job.unique_ranks() == [0]
        assert job.validate() == []
        bad = VisionTrainingJob(get_convnet("convnet-tiny"), cluster,
                                global_batch_size=31)
        assert bad.validate()


class TestExperimentHelpers:
    def test_bench_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_CONFIGS", raising=False)
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_config_budget() >= 2
        assert bench_scale() >= 1
        monkeypatch.setenv("REPRO_BENCH_CONFIGS", "5")
        monkeypatch.setenv("REPRO_BENCH_SCALE", "4")
        assert bench_config_budget() == 5
        assert bench_scale() == 4

    def test_scaled_transformer_reduces_depth(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "4")
        scaled = scaled_transformer("gpt3-18.4b")
        assert scaled.num_layers == 10
        assert scaled.hidden_size == get_transformer("gpt3-18.4b").hidden_size

    def test_candidate_recipes_valid_and_deterministic(self):
        cluster = get_cluster("v100-8")
        model = get_transformer("gpt-small")
        first = candidate_recipes(model, cluster, 64, limit=10, seed=1)
        second = candidate_recipes(model, cluster, 64, limit=10, seed=1)
        assert first == second
        assert len(first) == 10
        assert all(recipe.is_valid(8, 64, model.num_layers, model.num_heads, 8)
                   for recipe in first)

    def test_evaluate_setup_produces_comparable_rows(self):
        cluster = get_cluster("v100-8")
        model = get_transformer("gpt-tiny")
        recipes = candidate_recipes(model, cluster, 16, limit=3, seed=0)
        setup = evaluate_setup("unit-test", model, cluster, 16, recipes,
                               estimator_mode="analytical",
                               include_baselines=True)
        assert setup.evaluations
        feasible = setup.feasible()
        assert feasible
        assert setup.optimal() is not None
        assert setup.selection_cost("maya") >= 1.0
        assert setup.selection_cost("optimal") == pytest.approx(1.0)
        errors = setup.maya_errors()
        assert all(error >= 0 for error in errors)


class TestKnobEffects:
    @pytest.fixture(scope="class")
    def effects(self):
        cluster = get_cluster("v100-8")
        model = get_transformer("gpt-small")
        base = TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                              microbatch_multiplier=2, dtype="float16")
        return {effect.knob: effect
                for effect in measure_knob_effects(model, cluster, 64,
                                                   base_recipe=base)}

    def test_all_knobs_measured(self, effects):
        assert set(effects) == set(PAPER_TABLE2_DIRECTIONS)

    def test_memory_reducing_knobs(self, effects):
        for knob in ("tensor_parallel", "activation_recomputation",
                     "distributed_optimizer"):
            assert effects[knob].peak_memory_ratio < 1.0 or \
                effects[knob].memory_direction == "down"

    def test_network_increasing_knobs(self, effects):
        assert effects["tensor_parallel"].communication_ratio > 1.0

    def test_gradient_accumulation_reduces_network_load(self, effects):
        assert effects["gradient_accumulation"].communication_ratio <= 1.05
