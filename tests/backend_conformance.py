"""Cross-backend conformance harness.

Every evaluation backend (``serial`` / ``thread`` / ``process`` /
``persistent`` / ``socket``) must be a drop-in replacement for the serial
reference: identical :class:`~repro.core.pipeline.PredictionResult` values,
identical cache-hit accounting, and the same ``throughput_stats()`` shape
-- only wall-clock behaviour may differ.  This module is the single place
that byte-equivalence contract is written down;
``tests/test_backend_conformance.py`` parametrizes it over every backend
(spawning localhost ``repro worker-host`` subprocesses for ``socket``) and
``tests/test_service.py`` reuses it for the backend-specific regression
tests.

``REPRO_CONFORMANCE_BACKENDS`` (comma-separated) restricts which backends
the parametrized tests cover -- CI uses it to run dedicated
``persistent``-only and ``socket``-only legs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.pipeline import PredictionResult
from repro.framework.recipe import TrainingRecipe
from repro.service import BACKEND_NAMES, PredictionService
from repro.workloads.job import TransformerTrainingJob

#: Result fields that must be bit-identical across backends.  Stage times
#: are deliberately absent: they are wall-clock measurements.
RESULT_FIELDS = ("iteration_time", "total_time", "communication_time",
                 "peak_memory_bytes", "oom")

#: Keys every backend's ``throughput_stats()`` must expose.
THROUGHPUT_KEYS = ("backend", "workers", "batches", "trials", "batch_wall_s",
                   "simulated_events", "sim_wall_s", "trials_per_sec",
                   "events_per_sec")

#: Keys every backend's ``cache_stats()`` must expose -- including the
#: artifact-tier split (``memory_hits`` / ``store_hits``), which must sum
#: to ``artifact_hits`` whether or not a disk store is attached.
CACHE_STAT_KEYS = ("artifact_hits", "artifact_misses", "prediction_hits",
                   "prediction_misses", "memory_hits", "store_hits",
                   "hits", "lookups", "hit_rate")


def conformance_backends() -> Sequence[str]:
    """Backends the parametrized conformance tests cover.

    All registered backends by default; ``REPRO_CONFORMANCE_BACKENDS``
    narrows the set (unknown names are rejected so a typo cannot silently
    skip the suite) -- CI's ``conformance-persistent`` and
    ``conformance-socket`` jobs each run a single-backend leg this way.
    """
    selected = os.environ.get("REPRO_CONFORMANCE_BACKENDS")
    if not selected:
        return BACKEND_NAMES
    names = tuple(name.strip() for name in selected.split(",") if name.strip())
    unknown = [name for name in names if name not in BACKEND_NAMES]
    if unknown:
        raise ValueError(f"REPRO_CONFORMANCE_BACKENDS names unknown "
                         f"backends {unknown}; expected {BACKEND_NAMES}")
    return names


def default_batches() -> List[List[TrainingRecipe]]:
    """Two-batch conformance workload exercising every cache level.

    Batch 1 is four cold configurations; batch 2 mixes structural siblings
    (artifact-level hits -- shipped as cache deltas under ``persistent``),
    an exact re-proposal (prediction-level hit, resolved on the parent) and
    one fresh configuration.
    """
    base = [
        TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                       microbatch_multiplier=2, dtype="float16"),
        TrainingRecipe(tensor_parallel=1, pipeline_parallel=2,
                       microbatch_multiplier=2, dtype="float16"),
        TrainingRecipe(tensor_parallel=2, pipeline_parallel=1,
                       microbatch_multiplier=2, dtype="float16"),
        TrainingRecipe(tensor_parallel=1, pipeline_parallel=1,
                       microbatch_multiplier=1, dtype="float16"),
    ]
    followup = [
        base[0].replace(compiled=True),   # artifact hit (structural sibling)
        base[1].replace(compiled=True),   # artifact hit (structural sibling)
        base[2],                          # prediction hit (exact re-proposal)
        TrainingRecipe(tensor_parallel=4, pipeline_parallel=1,
                       microbatch_multiplier=2, dtype="float16"),  # cold
    ]
    return [base, followup]


def make_jobs(model, cluster, recipes: Sequence[TrainingRecipe],
              global_batch_size: int = 16) -> List[TransformerTrainingJob]:
    return [TransformerTrainingJob(model, recipe, cluster,
                                   global_batch_size=global_batch_size)
            for recipe in recipes]


@dataclass
class ConformanceRun:
    """Everything one backend produced for the conformance workload."""

    backend: str
    results: List[List[PredictionResult]]
    cache_stats: Dict[str, float]
    throughput: Dict[str, object]
    sync_stats: Dict[str, int] = field(default_factory=dict)
    #: Fault-handling counters (worker deaths, lease expirations,
    #: re-dispatches, ...) from the pooled backends; empty elsewhere.
    #: The chaos suite asserts against these.
    resilience_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def flat_results(self) -> List[PredictionResult]:
        return [result for batch in self.results for result in batch]


def run_conformance(model, cluster, backend: str, workers: int = 2,
                    batches: Optional[Sequence[Sequence[TrainingRecipe]]] = None,
                    service: Optional[PredictionService] = None,
                    ) -> ConformanceRun:
    """Run the conformance workload through one backend and close it.

    The ``socket`` backend resolves its worker addresses from the
    ``REPRO_WORKER_HOSTS`` environment variable (the parametrized suite's
    worker-host fixture exports it before these runs).
    """
    if batches is None:
        batches = default_batches()
    if service is None:
        service = PredictionService(cluster=cluster,
                                    estimator_mode="analytical",
                                    backend=backend, max_workers=workers)
    with service:
        results = [service.predict_many(make_jobs(model, cluster, recipes))
                   for recipes in batches]
        sync_stats = dict(getattr(service.backend_impl, "sync_stats", {}))
        resilience_stats = dict(getattr(service.backend_impl,
                                        "resilience_stats", {}))
        return ConformanceRun(backend=backend, results=results,
                              cache_stats=service.cache_stats(),
                              throughput=service.throughput_stats(),
                              sync_stats=sync_stats,
                              resilience_stats=resilience_stats)


def result_fingerprint(result: PredictionResult) -> Dict[str, object]:
    """The byte-identity surface of one prediction."""
    fingerprint = {name: getattr(result, name) for name in RESULT_FIELDS}
    fingerprint["service_cache"] = result.metadata.get("service_cache")
    if result.report is not None:
        fingerprint["report_total_time"] = result.report.total_time
        fingerprint["report_iteration_time"] = result.report.iteration_time
        fingerprint["report_communication_time"] = \
            result.report.communication_time
    else:
        fingerprint["report_total_time"] = None
        fingerprint["report_iteration_time"] = None
        fingerprint["report_communication_time"] = None
    return fingerprint


def assert_results_identical(reference: Sequence[PredictionResult],
                             candidate: Sequence[PredictionResult],
                             backend: str = "?") -> None:
    """Bit-for-bit equality of every prediction against the reference."""
    assert len(candidate) == len(reference), \
        f"backend {backend}: {len(candidate)} results vs " \
        f"{len(reference)} reference results"
    for position, (expected, actual) in enumerate(zip(reference, candidate)):
        expected_fp = result_fingerprint(expected)
        actual_fp = result_fingerprint(actual)
        assert actual_fp == expected_fp, \
            f"backend {backend} diverged on result {position}: " \
            f"{actual_fp} != {expected_fp}"


def assert_accounting_matches(reference: ConformanceRun,
                              candidate: ConformanceRun) -> None:
    """Cache-hit accounting must replay exactly as a serial run records it."""
    assert candidate.cache_stats == reference.cache_stats, \
        f"backend {candidate.backend} cache accounting " \
        f"{candidate.cache_stats} != serial {reference.cache_stats}"


def assert_cache_stats_shape(run: ConformanceRun) -> None:
    """``cache_stats()`` exposes the tier-labelled accounting everywhere."""
    for key in CACHE_STAT_KEYS:
        assert key in run.cache_stats, \
            f"backend {run.backend} cache_stats missing {key!r}"
    assert (run.cache_stats["memory_hits"] + run.cache_stats["store_hits"]
            == run.cache_stats["artifact_hits"]), \
        f"backend {run.backend}: tier hits do not sum to artifact_hits " \
        f"({run.cache_stats})"


def assert_throughput_shape(run: ConformanceRun, trials: int) -> None:
    """``throughput_stats()`` exposes the same keys and counters everywhere."""
    for key in THROUGHPUT_KEYS:
        assert key in run.throughput, \
            f"backend {run.backend} throughput_stats missing {key!r}"
    assert run.throughput["backend"] == run.backend
    assert run.throughput["trials"] == trials
    assert run.throughput["batches"] == len(run.results)
    assert run.throughput["batch_wall_s"] > 0.0
    assert run.throughput["simulated_events"] > 0


def assert_conformant(reference: ConformanceRun,
                      candidate: ConformanceRun) -> None:
    """Full conformance: results, accounting and throughput shape."""
    assert_results_identical(reference.flat_results, candidate.flat_results,
                             backend=candidate.backend)
    assert_accounting_matches(reference, candidate)
    assert_cache_stats_shape(candidate)
    assert_throughput_shape(candidate, trials=len(reference.flat_results))
