"""Tests for the discrete-event cluster simulator."""

from __future__ import annotations

import random

import pytest

from repro.core.collator import (
    TraceCollator,
    find_iteration_windows,
    windows_are_periodic,
)
from repro.core.emulator import EmulationSession
from repro.core.pipeline import MayaPipeline
from repro.core.simulator.engine import (
    ClusterSimulator,
    SimulationConfig,
    SimulationError,
)
from repro.core.simulator.providers import (
    GroundTruthDurationProvider,
    _AnnotationMemoMixin,
)
from repro.framework.recipe import TrainingRecipe
from repro.hardware.host_model import HOST_MODEL_METADATA_KEY, HostModel
from repro.workloads.job import TransformerTrainingJob
from repro.workloads.models import get_transformer
from repro.core.simulator.waitmaps import (
    CollectiveWaitMap,
    CudaEventWaitMap,
    P2PWaitMap,
)
from repro.core.trace import JobTrace, TraceEvent, TraceEventKind, WorkerTrace
from repro.hardware.cluster import get_cluster


class ConstantProvider:
    """Duration provider with fixed kernel / collective durations."""

    def __init__(self, kernel=1.0, collective=2.0):
        self.kernel = kernel
        self.collective = collective

    def kernel_duration(self, rank, event):
        return float(event.params.get("duration", self.kernel))

    def collective_duration(self, rank, event, resolution, group):
        return float(event.params.get("duration", self.collective))


def kernel(stream=0, duration=1.0, device=0):
    return TraceEvent(kind=TraceEventKind.KERNEL, api="k", device=device,
                      stream=stream, kernel_class="elementwise",
                      params={"duration": duration, "bytes": 1.0})


def host_delay(duration=0.1, device=0):
    return TraceEvent(kind=TraceEventKind.HOST_DELAY, api="hostDelay",
                      device=device, duration=duration)


def event_record(event_id, version=1, stream=0):
    return TraceEvent(kind=TraceEventKind.EVENT_RECORD, api="cudaEventRecord",
                      device=0, stream=stream, event=event_id,
                      params={"version": version})


def wait_event(event_id, version=1, stream=0):
    return TraceEvent(kind=TraceEventKind.STREAM_WAIT_EVENT,
                      api="cudaStreamWaitEvent", device=0, stream=stream,
                      wait_event=event_id, params={"version": version})


def collective(op, rank, ranks, seq, tag="dp", duration=2.0, stream=1,
               peer=None):
    info = {"comm_id": 7, "comm_tag": tag, "seq": seq, "op": op, "rank": rank,
            "nranks": len(ranks), "ranks": tuple(ranks)}
    if peer is not None:
        info["peer"] = peer
    return TraceEvent(kind=TraceEventKind.COLLECTIVE, api=f"nccl{op}",
                      device=rank, stream=stream, kernel_class=op,
                      params={"bytes": 1024.0, "duration": duration},
                      collective=info)


def device_sync(device=0):
    return TraceEvent(kind=TraceEventKind.DEVICE_SYNCHRONIZE,
                      api="cudaDeviceSynchronize", device=device)


def build_job(events_per_rank):
    job = JobTrace(world_size=len(events_per_rank))
    for rank, events in events_per_rank.items():
        trace = WorkerTrace(rank=rank, device=rank)
        for event in events:
            trace.append(event)
        job.add_worker(trace)
    return job


def simulate(events_per_rank, **config_kwargs):
    job = build_job(events_per_rank)
    collated = TraceCollator(deduplicate=False).collate(job)
    simulator = ClusterSimulator(get_cluster("v100-8"), ConstantProvider(),
                                 SimulationConfig(**config_kwargs))
    return simulator.simulate(collated)


class TestWaitMaps:
    def test_event_waitmap_records_and_releases(self):
        wait_map = CudaEventWaitMap()
        key = CudaEventWaitMap.key(0, 5, 1)
        assert not wait_map.is_complete(key)
        wait_map.block(key, "waiter")
        released = wait_map.record(key, 3.0)
        assert released == ["waiter"]
        assert wait_map.is_complete(key)
        assert wait_map.completion_time(key) == 3.0

    def test_version_zero_is_always_complete(self):
        wait_map = CudaEventWaitMap()
        assert wait_map.is_complete(CudaEventWaitMap.key(0, 5, 0))

    def test_collective_waitmap_completes_on_last_join(self):
        wait_map = CollectiveWaitMap()
        assert wait_map.join("key", 2, rank=0, stream_id=0, ready_time=1.0) is None
        instance = wait_map.join("key", 2, rank=1, stream_id=0, ready_time=3.0)
        assert instance is not None
        assert instance.start_time == 3.0
        assert not wait_map.pending()

    def test_p2p_send_before_recv(self):
        wait_map = P2PWaitMap()
        assert wait_map.post_send("k", 5.0) is None
        assert wait_map.post_recv("k", "recv-waiter", 1.0) == 5.0

    def test_p2p_recv_before_send(self):
        wait_map = P2PWaitMap()
        assert wait_map.post_recv("k", "recv-waiter", 1.0) is None
        assert wait_map.pending()
        assert wait_map.post_send("k", 4.0) == "recv-waiter"


class TestSimulatorBasics:
    def test_sequential_kernels_accumulate(self):
        report = simulate({0: [kernel(duration=1.0), kernel(duration=2.0)]},
                          include_host_overheads=False)
        assert report.total_time == pytest.approx(3.0)
        assert report.rank_reports[0].compute_time == pytest.approx(3.0)
        assert report.rank_reports[0].kernel_count == 2

    def test_host_delays_serialise_dispatch(self):
        report = simulate({0: [host_delay(0.5), kernel(duration=1.0),
                               host_delay(0.5), kernel(duration=1.0)]})
        # Kernel 1 is dispatched at 0.5 and runs until 1.5; kernel 2 is
        # dispatched at 1.0 but queues behind it, finishing at 2.5.
        assert report.total_time == pytest.approx(2.5)
        assert report.rank_reports[0].host_time == pytest.approx(1.0)

    def test_independent_streams_overlap(self):
        report = simulate({0: [kernel(stream=0, duration=2.0),
                               kernel(stream=1, duration=2.0)]},
                          include_host_overheads=False)
        assert report.total_time == pytest.approx(2.0)

    def test_stream_wait_event_orders_across_streams(self):
        events = [
            kernel(stream=0, duration=3.0),
            event_record(event_id=9, version=1, stream=0),
            wait_event(event_id=9, version=1, stream=1),
            kernel(stream=1, duration=1.0),
        ]
        report = simulate({0: events}, include_host_overheads=False)
        assert report.total_time == pytest.approx(4.0)

    def test_wait_on_unrecorded_event_is_noop(self):
        events = [wait_event(event_id=3, version=0, stream=1),
                  kernel(stream=1, duration=1.0)]
        report = simulate({0: events}, include_host_overheads=False)
        assert report.total_time == pytest.approx(1.0)

    def test_device_synchronize_blocks_host(self):
        events = [kernel(duration=2.0), device_sync(),
                  host_delay(1.0), kernel(duration=1.0)]
        report = simulate({0: events})
        assert report.total_time == pytest.approx(4.0)

    def test_markers_captured_per_rank(self):
        marker = TraceEvent(kind=TraceEventKind.MARKER, api="marker", device=0,
                            params={"label": "iteration-0-start"})
        report = simulate({0: [marker, kernel(duration=1.0)]},
                          include_host_overheads=False)
        assert "iteration-0-start" in report.markers
        assert report.markers["iteration-0-start"][0] == pytest.approx(0.0)

    def test_sm_contention_inflates_overlapped_compute(self):
        events = {
            0: [collective("all_reduce", 0, [0, 1], seq=1, duration=10.0),
                host_delay(0.1),
                kernel(stream=0, duration=4.0)],
            1: [collective("all_reduce", 1, [0, 1], seq=1, duration=10.0)],
        }
        plain = simulate(events)
        contended = simulate(events, sm_contention_factor=1.5)
        assert contended.rank_reports[0].compute_time > \
            plain.rank_reports[0].compute_time


class TestSimulatorCollectives:
    def test_collective_waits_for_slowest_participant(self):
        events = {
            0: [kernel(stream=0, duration=5.0),
                collective("all_reduce", 0, [0, 1], seq=1, duration=2.0,
                           stream=0)],
            1: [collective("all_reduce", 1, [0, 1], seq=1, duration=2.0,
                           stream=0)],
        }
        report = simulate(events, include_host_overheads=False)
        # Rank 1 joins at t=0 but must wait for rank 0's kernel (5s) before
        # the 2s collective runs.
        assert report.total_time == pytest.approx(7.0)
        assert report.rank_reports[1].communication_time == pytest.approx(2.0)

    def test_collectives_overlap_with_compute_on_other_stream(self):
        events = {
            0: [collective("all_reduce", 0, [0, 1], seq=1, duration=4.0,
                           stream=1),
                kernel(stream=0, duration=4.0)],
            1: [collective("all_reduce", 1, [0, 1], seq=1, duration=4.0,
                           stream=1)],
        }
        report = simulate(events, include_host_overheads=False)
        assert report.total_time == pytest.approx(4.0)

    def test_p2p_recv_waits_for_send(self):
        events = {
            0: [kernel(duration=3.0),
                collective("send", 0, [0, 1], seq=1, tag="pp", duration=1.0,
                           stream=0, peer=1)],
            1: [collective("recv", 1, [0, 1], seq=1, tag="pp", duration=1.0,
                           stream=0, peer=0),
                kernel(duration=1.0)],
        }
        report = simulate(events, include_host_overheads=False)
        # Send finishes at 4.0; recv completes just after; final kernel adds 1.
        assert report.total_time == pytest.approx(5.0, abs=0.01)

    def test_mismatched_collective_orders_detected_as_deadlock(self):
        events = {
            0: [collective("all_reduce", 0, [0, 1], seq=1, duration=1.0)],
            1: [collective("all_reduce", 1, [0, 1], seq=2, duration=1.0)],
        }
        with pytest.raises(SimulationError):
            simulate(events, include_host_overheads=False)

    def test_reduced_replica_simulation_still_completes_collectives(self):
        events = {
            0: [collective("all_reduce", 0, [0, 1], seq=1, duration=2.0)],
            1: [collective("all_reduce", 1, [0, 1], seq=1, duration=2.0)],
        }
        report = simulate(events, include_host_overheads=False,
                          simulate_ranks=[0])
        assert report.total_time == pytest.approx(2.0)
        assert report.metadata["simulated_ranks"] == 1

    def test_explicit_stream_zero_matches_default_stream(self):
        # An explicit stream-0 launch and a default-stream (None) launch
        # must land in the same FIFO stream regardless of how default
        # stream ids are spelled: the two kernels serialise.
        report = simulate({0: [kernel(stream=None, duration=1.0),
                               kernel(stream=0, duration=1.0)]},
                          include_host_overheads=False)
        assert report.total_time == pytest.approx(2.0)
        assert report.metadata["processed_events"] > 0
        assert report.metadata["wall_time_s"] >= 0.0
        assert report.metadata["events_per_sec"] > 0.0

    def test_missing_rank_trace_rejected(self):
        events = {0: [kernel()]}
        job = build_job(events)
        job.world_size = 2
        collated = TraceCollator(deduplicate=False).collate(
            job, topology=None) if False else None
        # Building the collated trace for an incomplete world requires a
        # topology; here we verify the simulator's own guard instead.
        job2 = build_job({0: [kernel()], 1: [kernel()]})
        collated2 = TraceCollator(deduplicate=False).collate(job2)
        simulator = ClusterSimulator(get_cluster("v100-8"), ConstantProvider(),
                                     SimulationConfig(simulate_ranks=[0, 5]))
        with pytest.raises(SimulationError):
            simulator.simulate(collated2)


def iteration_marker(index, suffix, device=0):
    return TraceEvent(kind=TraceEventKind.MARKER, api="marker", device=device,
                      params={"label": f"iteration-{index}-{suffix}"})


class FoldableProvider(ConstantProvider):
    """Constant provider that certifies per-shape (foldable) durations."""

    supports_iteration_folding = True


def build_periodic_job(iterations, kernel_cost=0.5, collective_cost=2.0,
                       host_cost=0.25, warmup=True, extra_label=None):
    """Two-rank job with identical iteration windows and binary durations.

    Every duration is an exact binary fraction, so all simulation
    arithmetic is exact and a committed fold must reproduce the full
    event-by-event replay bit for bit.  ``extra_label`` optionally maps the
    window index to a custom marker label emitted inside each window.
    """
    events = {0: [], 1: []}
    for rank in (0, 1):
        if warmup:
            events[rank].append(kernel(stream=0, duration=4.0 * kernel_cost))
        for index in range(iterations):
            events[rank].append(iteration_marker(index, "start", device=rank))
            events[rank].append(host_delay(host_cost, device=rank))
            if extra_label is not None:
                events[rank].append(TraceEvent(
                    kind=TraceEventKind.MARKER, api="marker", device=rank,
                    params={"label": extra_label(index)}))
            events[rank].append(kernel(stream=0, duration=kernel_cost,
                                       device=rank))
            events[rank].append(collective("all_reduce", rank, [0, 1],
                                           seq=index + 1,
                                           duration=collective_cost,
                                           stream=1))
            events[rank].append(device_sync(device=rank))
            events[rank].append(iteration_marker(index, "end", device=rank))
    return build_job(events)


class TestIterationFolding:
    def _simulate(self, job, **config_kwargs):
        collated = TraceCollator(deduplicate=False).collate(job)
        simulator = ClusterSimulator(get_cluster("v100-8"),
                                     FoldableProvider(),
                                     SimulationConfig(**config_kwargs))
        return simulator.simulate(collated, iterations=8)

    def test_periodic_windows_detected(self):
        job = build_periodic_job(8)
        trace = job.workers[0]
        windows = find_iteration_windows(trace)
        assert windows is not None and windows.count == 8
        assert windows_are_periodic(trace, windows)

    def test_fold_is_bitwise_exact_on_binary_durations(self):
        job = build_periodic_job(8)
        full = self._simulate(job, fold_iterations=False)
        folded = self._simulate(job, fold_tolerance=0.0)
        info = folded.metadata.get("iteration_folding")
        assert info is not None, "fold should engage on a periodic trace"
        assert info["folded_iterations"] == 4
        assert folded.metadata["processed_events"] < \
            full.metadata["processed_events"]
        assert folded.total_time == full.total_time
        assert folded.iteration_time == full.iteration_time
        assert folded.communication_time == full.communication_time
        for rank in full.rank_reports:
            a, b = full.rank_reports[rank], folded.rank_reports[rank]
            assert a.compute_time == b.compute_time
            assert a.communication_time == b.communication_time
            assert a.host_time == b.host_time
            assert a.finish_time == b.finish_time
            assert a.kernel_count == b.kernel_count
            assert a.collective_count == b.collective_count
        assert full.markers == folded.markers

    def test_fold_skipped_below_minimum_iterations(self):
        job = build_periodic_job(4)
        report = self._simulate(job)
        assert "iteration_folding" not in report.metadata

    def test_fold_skipped_when_windows_differ(self):
        job = build_periodic_job(8)
        # Perturb one mid-trace host delay: windows are no longer periodic.
        trace = job.workers[0]
        delays = [event for event in trace.events
                  if event.kind is TraceEventKind.HOST_DELAY]
        delays[5].duration = delays[5].duration * 2.0
        full = self._simulate(job, fold_iterations=False)
        guarded = self._simulate(job)
        assert "iteration_folding" not in guarded.metadata
        assert guarded.total_time == full.total_time

    def test_window_unique_marker_labels_block_folding(self):
        # A label that embeds the window index would be dropped (or
        # mis-timed) by extrapolation, so it must break periodicity.
        job = build_periodic_job(8, extra_label=lambda i: f"checkpoint-{i}")
        full = self._simulate(job, fold_iterations=False)
        guarded = self._simulate(job)
        assert "iteration_folding" not in guarded.metadata
        assert guarded.markers == full.markers

    def test_recurring_marker_labels_fold_exactly(self):
        # The same label every window folds fine: its final occurrence
        # belongs to the last real window and is shifted by the fold.
        job = build_periodic_job(8, extra_label=lambda i: "checkpoint")
        full = self._simulate(job, fold_iterations=False)
        folded = self._simulate(job, fold_tolerance=0.0)
        assert folded.metadata["iteration_folding"]["folded_iterations"] == 4
        assert folded.markers == full.markers
        assert folded.total_time == full.total_time

    def test_fold_skipped_for_jittered_provider(self):
        job = build_periodic_job(8)
        collated = TraceCollator(deduplicate=False).collate(job)
        cluster = get_cluster("v100-8")
        provider = GroundTruthDurationProvider(cluster)
        fast = ClusterSimulator(cluster, provider,
                                SimulationConfig()).simulate(collated)
        slow = ClusterSimulator(
            cluster, provider,
            SimulationConfig(use_annotations=False,
                             fold_iterations=False)).simulate(collated)
        assert "iteration_folding" not in fast.metadata
        assert fast.total_time == slow.total_time


def build_random_job(seed, steps=40, nranks=2):
    """Seeded random multi-stream / multi-collective two-rank trace.

    Collectives are appended to every rank at the same generation step, so
    each rank observes them in one consistent global order (no deadlocks by
    construction); stream-wait events only reference events the same rank
    already recorded.  All durations are exact binary fractions so the
    annotate-trace fast path must reproduce the per-event replay bit for
    bit, not merely approximately.
    """
    rng = random.Random(seed)
    events = {rank: [] for rank in range(nranks)}
    recorded = {rank: [] for rank in range(nranks)}
    versions = {}
    seqs = {"dp": 0, "tp": 0}
    for _ in range(steps):
        op = rng.choices(
            ("kernel", "host", "record", "wait", "collective", "sync"),
            weights=(5, 2, 2, 2, 3, 1))[0]
        rank = rng.randrange(nranks)
        if op == "kernel":
            events[rank].append(kernel(stream=rng.randrange(3),
                                       duration=rng.randrange(1, 64) / 64.0,
                                       device=rank))
        elif op == "host":
            events[rank].append(host_delay(rng.randrange(1, 16) / 64.0,
                                           device=rank))
        elif op == "record":
            event_id = rng.randrange(1, 6)
            version = versions.get((rank, event_id), 0) + 1
            versions[(rank, event_id)] = version
            events[rank].append(event_record(event_id, version=version,
                                             stream=rng.randrange(3)))
            events[rank][-1].device = rank
            recorded[rank].append((event_id, version))
        elif op == "wait":
            if recorded[rank]:
                event_id, version = rng.choice(recorded[rank])
                events[rank].append(wait_event(event_id, version=version,
                                               stream=rng.randrange(3)))
                events[rank][-1].device = rank
        elif op == "collective":
            tag = rng.choice(("dp", "tp"))
            seqs[tag] += 1
            duration = rng.randrange(1, 64) / 16.0
            stream = rng.randrange(1, 3)
            for member in range(nranks):
                events[member].append(
                    collective("all_reduce", member, list(range(nranks)),
                               seq=seqs[tag], tag=tag, duration=duration,
                               stream=stream))
        else:
            events[rank].append(device_sync(device=rank))
    for rank in range(nranks):
        if not events[rank]:
            events[rank].append(kernel(device=rank))
    return build_job(events)


def build_random_periodic_job(seed, iterations=8, nranks=2):
    """Seeded random steady-state workload: one random window, repeated.

    The window template (random kernels, host delays, collectives and
    record/wait pairs, all with binary-fraction durations) is fixed per
    seed and replayed for every iteration, so the trace is canonically
    periodic and a committed fold must reproduce the full replay exactly.
    """
    rng = random.Random(seed)
    template = []
    for _ in range(rng.randrange(3, 7)):
        op = rng.choice(("kernel", "host", "collective", "eventpair"))
        template.append((op, rng.randrange(1, 64) / 64.0, rng.randrange(3)))
    events = {rank: [kernel(stream=0, duration=2.0, device=rank)]
              for rank in range(nranks)}
    seq = 0
    versions = {}
    for index in range(iterations):
        for rank in range(nranks):
            events[rank].append(iteration_marker(index, "start", device=rank))
        for position, (op, duration, stream) in enumerate(template):
            if op == "kernel":
                for rank in range(nranks):
                    events[rank].append(kernel(stream=stream,
                                               duration=duration,
                                               device=rank))
            elif op == "host":
                for rank in range(nranks):
                    events[rank].append(host_delay(duration / 4.0,
                                                   device=rank))
            elif op == "collective":
                seq += 1
                for rank in range(nranks):
                    events[rank].append(
                        collective("all_reduce", rank, list(range(nranks)),
                                   seq=seq, duration=duration * 4.0,
                                   stream=max(stream, 1)))
            else:
                # Record on one stream, wait on another: event ids repeat
                # every window, versions advance (both are masked by the
                # canonical periodicity fingerprint).
                event_id = position + 1
                for rank in range(nranks):
                    version = versions.get((rank, event_id), 0) + 1
                    versions[(rank, event_id)] = version
                    record = event_record(event_id, version=version,
                                          stream=stream)
                    record.device = rank
                    waiter = wait_event(event_id, version=version,
                                        stream=(stream + 1) % 3)
                    waiter.device = rank
                    events[rank].append(record)
                    events[rank].append(waiter)
        for rank in range(nranks):
            events[rank].append(device_sync(device=rank))
            events[rank].append(iteration_marker(index, "end", device=rank))
    return build_job(events)


def _assert_reports_identical(reference, candidate):
    assert candidate.total_time == reference.total_time
    assert candidate.iteration_time == reference.iteration_time
    assert candidate.communication_time == reference.communication_time
    assert candidate.markers == reference.markers
    for rank in reference.rank_reports:
        a = reference.rank_reports[rank]
        b = candidate.rank_reports[rank]
        assert a.compute_time == b.compute_time
        assert a.communication_time == b.communication_time
        assert a.exposed_communication_time == b.exposed_communication_time
        assert a.host_time == b.host_time
        assert a.finish_time == b.finish_time
        assert a.kernel_count == b.kernel_count
        assert a.collective_count == b.collective_count


class AnnotatedConstantProvider(_AnnotationMemoMixin, ConstantProvider):
    """ConstantProvider with batch annotation: enables the columnar loop."""


class AnnotatedFoldableProvider(_AnnotationMemoMixin, FoldableProvider):
    """FoldableProvider with batch annotation: columnar loop plus folding."""


_JITTER_CALL_CLASSES = ("kernel_launch", "collective", "misc", "optimizer")


def jitterize_host_delays(job, seed):
    """Rewrite a job's host delays into the structured jittered form.

    Gives every HOST_DELAY a ``(call_class, seq)`` pair and stamps the
    per-trace host-model metadata, so replay materializes seeded noise --
    the engine paths must agree bit for bit on the noisy durations too.
    """
    rng = random.Random(seed)
    for trace in job.workers.values():
        noise_seq = rng.randrange(4)
        for event in trace.events:
            if event.kind is TraceEventKind.HOST_DELAY:
                event.params = {
                    "call_class": rng.choice(_JITTER_CALL_CLASSES),
                    "after": "kernel",
                    "seq": noise_seq,
                }
                noise_seq += rng.randrange(1, 4)
        trace.metadata[HOST_MODEL_METADATA_KEY] = {"name": "test-host",
                                                   "jitter": 0.15}
    return job


class TestRandomizedDifferential:
    """Seeded random traces: the fast paths must track per-event replay."""

    @pytest.mark.parametrize("seed", range(50))
    def test_annotation_fast_path_bitwise_equal(self, seed):
        job = build_random_job(seed)
        collated = TraceCollator(deduplicate=False).collate(job)
        cluster = get_cluster("v100-8")
        provider = ConstantProvider()
        fast = ClusterSimulator(cluster, provider,
                                SimulationConfig()).simulate(collated)
        slow = ClusterSimulator(
            cluster, provider,
            SimulationConfig(use_annotations=False,
                             fold_iterations=False)).simulate(collated)
        assert (fast.metadata["processed_events"]
                == slow.metadata["processed_events"])
        _assert_reports_identical(slow, fast)

    @pytest.mark.parametrize("seed", range(25))
    def test_iteration_folding_bitwise_equal(self, seed):
        job = build_random_periodic_job(seed, iterations=8)
        collated = TraceCollator(deduplicate=False).collate(job)
        cluster = get_cluster("v100-8")
        provider = FoldableProvider()
        folded = ClusterSimulator(
            cluster, provider,
            SimulationConfig(fold_tolerance=0.0)).simulate(collated,
                                                           iterations=8)
        full = ClusterSimulator(
            cluster, provider,
            SimulationConfig(use_annotations=False,
                             fold_iterations=False)).simulate(collated,
                                                              iterations=8)
        info = folded.metadata.get("iteration_folding")
        assert info is not None, \
            f"fold must engage on the periodic trace of seed {seed}"
        assert info["folded_iterations"] == 4
        assert folded.metadata["processed_events"] < \
            full.metadata["processed_events"]
        _assert_reports_identical(full, folded)

    @pytest.mark.parametrize("seed", range(30))
    def test_columnar_replay_bitwise_equal(self, seed):
        """Columnar, annotated and per-event replay: one report, three paths."""
        job = build_random_job(seed)
        collated = TraceCollator(deduplicate=False).collate(job)
        cluster = get_cluster("v100-8")
        provider = AnnotatedConstantProvider()
        serial = ClusterSimulator(
            cluster, provider,
            SimulationConfig(use_annotations=False,
                             fold_iterations=False)).simulate(collated)
        annotated = ClusterSimulator(
            cluster, provider,
            SimulationConfig(fold_iterations=False,
                             use_columnar=False)).simulate(collated)
        columnar = ClusterSimulator(
            cluster, provider,
            SimulationConfig(fold_iterations=False)).simulate(collated)
        assert serial.metadata["engine"] == "serial"
        assert annotated.metadata["engine"] == "annotated"
        assert columnar.metadata["engine"] == "columnar"
        assert (columnar.metadata["processed_events"]
                == serial.metadata["processed_events"])
        _assert_reports_identical(serial, annotated)
        _assert_reports_identical(serial, columnar)

    @pytest.mark.parametrize("seed", range(10))
    def test_columnar_jittered_host_bitwise_equal(self, seed):
        """Structured jittered host delays replay identically columnar-wise."""
        job = jitterize_host_delays(build_random_job(seed, steps=60), seed)
        collated = TraceCollator(deduplicate=False).collate(job)
        cluster = get_cluster("v100-8")
        provider = AnnotatedConstantProvider()
        serial = ClusterSimulator(
            cluster, provider,
            SimulationConfig(use_annotations=False,
                             fold_iterations=False)).simulate(collated)
        annotated = ClusterSimulator(
            cluster, provider,
            SimulationConfig(fold_iterations=False,
                             use_columnar=False)).simulate(collated)
        columnar = ClusterSimulator(
            cluster, provider,
            SimulationConfig(fold_iterations=False)).simulate(collated)
        assert columnar.metadata["engine"] == "columnar"
        _assert_reports_identical(serial, annotated)
        _assert_reports_identical(serial, columnar)

    @pytest.mark.parametrize("seed", range(10))
    def test_columnar_fold_bitwise_equal(self, seed):
        """Fold-engaged columnar replay matches object fold and full replay."""
        job = build_random_periodic_job(seed, iterations=8)
        collated = TraceCollator(deduplicate=False).collate(job)
        cluster = get_cluster("v100-8")
        provider = AnnotatedFoldableProvider()
        full = ClusterSimulator(
            cluster, provider,
            SimulationConfig(use_annotations=False,
                             fold_iterations=False)).simulate(collated,
                                                              iterations=8)
        object_fold = ClusterSimulator(
            cluster, provider,
            SimulationConfig(fold_tolerance=0.0,
                             use_columnar=False)).simulate(collated,
                                                           iterations=8)
        columnar_fold = ClusterSimulator(
            cluster, provider,
            SimulationConfig(fold_tolerance=0.0)).simulate(collated,
                                                           iterations=8)
        assert columnar_fold.metadata["engine"] == "columnar"
        info = columnar_fold.metadata.get("iteration_folding")
        assert info is not None, \
            f"fold must engage on the periodic trace of seed {seed}"
        assert info["folded_iterations"] == 4
        _assert_reports_identical(full, object_fold)
        _assert_reports_identical(full, columnar_fold)


class TestFastPathEquivalence:
    """Annotation fast path must be bit-identical to per-event provider calls."""

    @pytest.fixture(scope="class")
    def artifacts(self, v100_cluster):
        model = get_transformer("gpt-tiny")
        recipe = TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                                microbatch_multiplier=2, dtype="float16")
        job = TransformerTrainingJob(model, recipe, v100_cluster,
                                     global_batch_size=16, iterations=2)
        pipeline = MayaPipeline(v100_cluster, estimator_mode="analytical")
        return pipeline, pipeline.emulate(job), job

    def _compare(self, cluster, provider, collated, ranks,
                 sm_contention_factor=1.0):
        fast = ClusterSimulator(cluster, provider, SimulationConfig(
            simulate_ranks=ranks,
            sm_contention_factor=sm_contention_factor)).simulate(collated)
        slow = ClusterSimulator(cluster, provider, SimulationConfig(
            simulate_ranks=ranks, sm_contention_factor=sm_contention_factor,
            use_annotations=False, fold_iterations=False)).simulate(collated)
        assert fast.total_time == slow.total_time
        assert fast.communication_time == slow.communication_time
        assert fast.markers == slow.markers
        assert (fast.metadata["processed_events"]
                == slow.metadata["processed_events"])
        for rank in slow.rank_reports:
            a, b = slow.rank_reports[rank], fast.rank_reports[rank]
            assert a.compute_time == b.compute_time
            assert a.communication_time == b.communication_time
            assert a.exposed_communication_time == b.exposed_communication_time
            assert a.memcpy_time == b.memcpy_time
            assert a.finish_time == b.finish_time
            assert a.kernel_count == b.kernel_count
            assert a.collective_count == b.collective_count

    def test_estimated_provider_multistream_job(self, v100_cluster, artifacts):
        # tp=2/pp=2 exercises compute + comm + p2p streams, group
        # collectives and point-to-point transfers.
        pipeline, emulated, job = artifacts
        ranks = pipeline._simulation_ranks(job)
        self._compare(v100_cluster, pipeline.make_provider(),
                      emulated.collated, ranks)

    def test_jittered_testbed_provider(self, v100_cluster, artifacts):
        # The testbed's per-invocation jitter is a pure function of
        # (rank, seq): pre-annotation must reproduce it exactly, including
        # under SM contention.
        pipeline, emulated, job = artifacts
        ranks = pipeline._simulation_ranks(job)
        self._compare(v100_cluster, GroundTruthDurationProvider(v100_cluster),
                      emulated.collated, ranks, sm_contention_factor=1.045)

    def test_fold_on_real_job_with_smooth_host(self, v100_cluster):
        model = get_transformer("gpt-tiny")
        recipe = TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                                microbatch_multiplier=2, dtype="float16")
        job = TransformerTrainingJob(model, recipe, v100_cluster,
                                     global_batch_size=16, iterations=10)
        session = EmulationSession(v100_cluster,
                                   host_model=HostModel(jitter=0.0))
        emulated = session.run(job.worker_fn, ranks=job.unique_ranks(),
                               world_size=job.world_size)
        collated = TraceCollator().collate(emulated.job_trace,
                                           topology=job.topology())
        pipeline = MayaPipeline(v100_cluster, estimator_mode="analytical")
        provider = pipeline.make_provider()
        ranks = pipeline._simulation_ranks(job)
        folded = ClusterSimulator(v100_cluster, provider, SimulationConfig(
            simulate_ranks=ranks)).simulate(collated, iterations=10)
        full = ClusterSimulator(v100_cluster, provider, SimulationConfig(
            simulate_ranks=ranks, use_annotations=False,
            fold_iterations=False)).simulate(collated, iterations=10)
        info = folded.metadata.get("iteration_folding")
        assert info is not None and info["folded_iterations"] == 6
        assert folded.metadata["processed_events"] < \
            full.metadata["processed_events"]
        # The fold only commits when the steady-state period is stable to
        # within rounding; the extrapolated total may differ from the full
        # replay by at most that rounding drift.
        assert folded.total_time == pytest.approx(full.total_time,
                                                  rel=1e-9)
        for rank in full.rank_reports:
            assert (full.rank_reports[rank].kernel_count
                    == folded.rank_reports[rank].kernel_count)
            assert (full.rank_reports[rank].collective_count
                    == folded.rank_reports[rank].collective_count)
