"""Tests for the discrete-event cluster simulator."""

from __future__ import annotations

import pytest

from repro.core.collator import TraceCollator
from repro.core.simulator.engine import (
    ClusterSimulator,
    SimulationConfig,
    SimulationError,
)
from repro.core.simulator.waitmaps import (
    CollectiveWaitMap,
    CudaEventWaitMap,
    P2PWaitMap,
)
from repro.core.trace import JobTrace, TraceEvent, TraceEventKind, WorkerTrace
from repro.hardware.cluster import get_cluster


class ConstantProvider:
    """Duration provider with fixed kernel / collective durations."""

    def __init__(self, kernel=1.0, collective=2.0):
        self.kernel = kernel
        self.collective = collective

    def kernel_duration(self, rank, event):
        return float(event.params.get("duration", self.kernel))

    def collective_duration(self, rank, event, resolution, group):
        return float(event.params.get("duration", self.collective))


def kernel(stream=0, duration=1.0, device=0):
    return TraceEvent(kind=TraceEventKind.KERNEL, api="k", device=device,
                      stream=stream, kernel_class="elementwise",
                      params={"duration": duration, "bytes": 1.0})


def host_delay(duration=0.1, device=0):
    return TraceEvent(kind=TraceEventKind.HOST_DELAY, api="hostDelay",
                      device=device, duration=duration)


def event_record(event_id, version=1, stream=0):
    return TraceEvent(kind=TraceEventKind.EVENT_RECORD, api="cudaEventRecord",
                      device=0, stream=stream, event=event_id,
                      params={"version": version})


def wait_event(event_id, version=1, stream=0):
    return TraceEvent(kind=TraceEventKind.STREAM_WAIT_EVENT,
                      api="cudaStreamWaitEvent", device=0, stream=stream,
                      wait_event=event_id, params={"version": version})


def collective(op, rank, ranks, seq, tag="dp", duration=2.0, stream=1,
               peer=None):
    info = {"comm_id": 7, "comm_tag": tag, "seq": seq, "op": op, "rank": rank,
            "nranks": len(ranks), "ranks": tuple(ranks)}
    if peer is not None:
        info["peer"] = peer
    return TraceEvent(kind=TraceEventKind.COLLECTIVE, api=f"nccl{op}",
                      device=rank, stream=stream, kernel_class=op,
                      params={"bytes": 1024.0, "duration": duration},
                      collective=info)


def device_sync(device=0):
    return TraceEvent(kind=TraceEventKind.DEVICE_SYNCHRONIZE,
                      api="cudaDeviceSynchronize", device=device)


def build_job(events_per_rank):
    job = JobTrace(world_size=len(events_per_rank))
    for rank, events in events_per_rank.items():
        trace = WorkerTrace(rank=rank, device=rank)
        for event in events:
            trace.append(event)
        job.add_worker(trace)
    return job


def simulate(events_per_rank, **config_kwargs):
    job = build_job(events_per_rank)
    collated = TraceCollator(deduplicate=False).collate(job)
    simulator = ClusterSimulator(get_cluster("v100-8"), ConstantProvider(),
                                 SimulationConfig(**config_kwargs))
    return simulator.simulate(collated)


class TestWaitMaps:
    def test_event_waitmap_records_and_releases(self):
        wait_map = CudaEventWaitMap()
        key = CudaEventWaitMap.key(0, 5, 1)
        assert not wait_map.is_complete(key)
        wait_map.block(key, "waiter")
        released = wait_map.record(key, 3.0)
        assert released == ["waiter"]
        assert wait_map.is_complete(key)
        assert wait_map.completion_time(key) == 3.0

    def test_version_zero_is_always_complete(self):
        wait_map = CudaEventWaitMap()
        assert wait_map.is_complete(CudaEventWaitMap.key(0, 5, 0))

    def test_collective_waitmap_completes_on_last_join(self):
        wait_map = CollectiveWaitMap()
        assert wait_map.join("key", 2, rank=0, stream_id=0, ready_time=1.0) is None
        instance = wait_map.join("key", 2, rank=1, stream_id=0, ready_time=3.0)
        assert instance is not None
        assert instance.start_time == 3.0
        assert not wait_map.pending()

    def test_p2p_send_before_recv(self):
        wait_map = P2PWaitMap()
        assert wait_map.post_send("k", 5.0) is None
        assert wait_map.post_recv("k", "recv-waiter", 1.0) == 5.0

    def test_p2p_recv_before_send(self):
        wait_map = P2PWaitMap()
        assert wait_map.post_recv("k", "recv-waiter", 1.0) is None
        assert wait_map.pending()
        assert wait_map.post_send("k", 4.0) == "recv-waiter"


class TestSimulatorBasics:
    def test_sequential_kernels_accumulate(self):
        report = simulate({0: [kernel(duration=1.0), kernel(duration=2.0)]},
                          include_host_overheads=False)
        assert report.total_time == pytest.approx(3.0)
        assert report.rank_reports[0].compute_time == pytest.approx(3.0)
        assert report.rank_reports[0].kernel_count == 2

    def test_host_delays_serialise_dispatch(self):
        report = simulate({0: [host_delay(0.5), kernel(duration=1.0),
                               host_delay(0.5), kernel(duration=1.0)]})
        # Kernel 1 is dispatched at 0.5 and runs until 1.5; kernel 2 is
        # dispatched at 1.0 but queues behind it, finishing at 2.5.
        assert report.total_time == pytest.approx(2.5)
        assert report.rank_reports[0].host_time == pytest.approx(1.0)

    def test_independent_streams_overlap(self):
        report = simulate({0: [kernel(stream=0, duration=2.0),
                               kernel(stream=1, duration=2.0)]},
                          include_host_overheads=False)
        assert report.total_time == pytest.approx(2.0)

    def test_stream_wait_event_orders_across_streams(self):
        events = [
            kernel(stream=0, duration=3.0),
            event_record(event_id=9, version=1, stream=0),
            wait_event(event_id=9, version=1, stream=1),
            kernel(stream=1, duration=1.0),
        ]
        report = simulate({0: events}, include_host_overheads=False)
        assert report.total_time == pytest.approx(4.0)

    def test_wait_on_unrecorded_event_is_noop(self):
        events = [wait_event(event_id=3, version=0, stream=1),
                  kernel(stream=1, duration=1.0)]
        report = simulate({0: events}, include_host_overheads=False)
        assert report.total_time == pytest.approx(1.0)

    def test_device_synchronize_blocks_host(self):
        events = [kernel(duration=2.0), device_sync(),
                  host_delay(1.0), kernel(duration=1.0)]
        report = simulate({0: events})
        assert report.total_time == pytest.approx(4.0)

    def test_markers_captured_per_rank(self):
        marker = TraceEvent(kind=TraceEventKind.MARKER, api="marker", device=0,
                            params={"label": "iteration-0-start"})
        report = simulate({0: [marker, kernel(duration=1.0)]},
                          include_host_overheads=False)
        assert "iteration-0-start" in report.markers
        assert report.markers["iteration-0-start"][0] == pytest.approx(0.0)

    def test_sm_contention_inflates_overlapped_compute(self):
        events = {
            0: [collective("all_reduce", 0, [0, 1], seq=1, duration=10.0),
                host_delay(0.1),
                kernel(stream=0, duration=4.0)],
            1: [collective("all_reduce", 1, [0, 1], seq=1, duration=10.0)],
        }
        plain = simulate(events)
        contended = simulate(events, sm_contention_factor=1.5)
        assert contended.rank_reports[0].compute_time > \
            plain.rank_reports[0].compute_time


class TestSimulatorCollectives:
    def test_collective_waits_for_slowest_participant(self):
        events = {
            0: [kernel(stream=0, duration=5.0),
                collective("all_reduce", 0, [0, 1], seq=1, duration=2.0,
                           stream=0)],
            1: [collective("all_reduce", 1, [0, 1], seq=1, duration=2.0,
                           stream=0)],
        }
        report = simulate(events, include_host_overheads=False)
        # Rank 1 joins at t=0 but must wait for rank 0's kernel (5s) before
        # the 2s collective runs.
        assert report.total_time == pytest.approx(7.0)
        assert report.rank_reports[1].communication_time == pytest.approx(2.0)

    def test_collectives_overlap_with_compute_on_other_stream(self):
        events = {
            0: [collective("all_reduce", 0, [0, 1], seq=1, duration=4.0,
                           stream=1),
                kernel(stream=0, duration=4.0)],
            1: [collective("all_reduce", 1, [0, 1], seq=1, duration=4.0,
                           stream=1)],
        }
        report = simulate(events, include_host_overheads=False)
        assert report.total_time == pytest.approx(4.0)

    def test_p2p_recv_waits_for_send(self):
        events = {
            0: [kernel(duration=3.0),
                collective("send", 0, [0, 1], seq=1, tag="pp", duration=1.0,
                           stream=0, peer=1)],
            1: [collective("recv", 1, [0, 1], seq=1, tag="pp", duration=1.0,
                           stream=0, peer=0),
                kernel(duration=1.0)],
        }
        report = simulate(events, include_host_overheads=False)
        # Send finishes at 4.0; recv completes just after; final kernel adds 1.
        assert report.total_time == pytest.approx(5.0, abs=0.01)

    def test_mismatched_collective_orders_detected_as_deadlock(self):
        events = {
            0: [collective("all_reduce", 0, [0, 1], seq=1, duration=1.0)],
            1: [collective("all_reduce", 1, [0, 1], seq=2, duration=1.0)],
        }
        with pytest.raises(SimulationError):
            simulate(events, include_host_overheads=False)

    def test_reduced_replica_simulation_still_completes_collectives(self):
        events = {
            0: [collective("all_reduce", 0, [0, 1], seq=1, duration=2.0)],
            1: [collective("all_reduce", 1, [0, 1], seq=1, duration=2.0)],
        }
        report = simulate(events, include_host_overheads=False,
                          simulate_ranks=[0])
        assert report.total_time == pytest.approx(2.0)
        assert report.metadata["simulated_ranks"] == 1

    def test_missing_rank_trace_rejected(self):
        events = {0: [kernel()]}
        job = build_job(events)
        job.world_size = 2
        collated = TraceCollator(deduplicate=False).collate(
            job, topology=None) if False else None
        # Building the collated trace for an incomplete world requires a
        # topology; here we verify the simulator's own guard instead.
        job2 = build_job({0: [kernel()], 1: [kernel()]})
        collated2 = TraceCollator(deduplicate=False).collate(job2)
        simulator = ClusterSimulator(get_cluster("v100-8"), ConstantProvider(),
                                     SimulationConfig(simulate_ranks=[0, 5]))
        with pytest.raises(SimulationError):
            simulator.simulate(collated2)
