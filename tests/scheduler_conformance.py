"""Scheduler-policy conformance harness.

Placement must never change what a batch computes.  Every registered
:class:`~repro.service.SchedulerPolicy` (``round_robin`` /
``least_loaded`` / ``locality``), run under every pooled backend
(``persistent`` / ``socket``), must reproduce the serial reference
byte-for-byte -- identical results AND identical cache accounting over
the standard two-batch conformance workload -- and must keep doing so
while a seeded fault plan kills a worker mid-batch.  This module writes
that contract down once; ``tests/test_scheduler_conformance.py``
parametrizes it over the full policy x backend matrix.

``REPRO_CONFORMANCE_SCHEDULERS`` (comma-separated) restricts which
policies the parametrized tests cover, mirroring
``REPRO_CONFORMANCE_BACKENDS`` -- CI's ``scheduler`` job uses both to
run the dedicated matrix leg.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from backend_conformance import (
    ConformanceRun,
    conformance_backends,
    run_conformance,
)
from repro.framework.recipe import TrainingRecipe
from repro.service import SCHEDULER_NAMES, PredictionService

#: Counters every pooled backend must mirror from its policy into
#: ``sync_stats`` (and thereby into the server stats payload).
PLACEMENT_COUNTER_KEYS = ("placements", "locality_hits",
                          "ship_bytes_avoided")

#: The backends whose placement is actually policy-driven.  ``serial`` /
#: ``thread`` / ``process`` have no persistent pool to place onto.
POOLED_BACKENDS = ("persistent", "socket")


def conformance_schedulers() -> Sequence[str]:
    """Scheduler policies the parametrized conformance tests cover.

    All registered policies by default; ``REPRO_CONFORMANCE_SCHEDULERS``
    narrows the set (unknown names are rejected so a typo cannot
    silently skip the suite).
    """
    selected = os.environ.get("REPRO_CONFORMANCE_SCHEDULERS")
    if not selected:
        return SCHEDULER_NAMES
    names = tuple(name.strip() for name in selected.split(",") if name.strip())
    unknown = [name for name in names if name not in SCHEDULER_NAMES]
    if unknown:
        raise ValueError(f"REPRO_CONFORMANCE_SCHEDULERS names unknown "
                         f"policies {unknown}; expected {SCHEDULER_NAMES}")
    return names


def scheduler_backends() -> Sequence[str]:
    """Pooled backends in the covered set (honours the backend filter)."""
    covered = conformance_backends()
    return tuple(name for name in POOLED_BACKENDS if name in covered)


def run_scheduler_conformance(
    model, cluster, backend: str, scheduler: str, workers: int = 2,
    batches: Optional[Sequence[Sequence[TrainingRecipe]]] = None,
    worker_hosts: Optional[Sequence[str]] = None,
    **service_kwargs,
) -> ConformanceRun:
    """Run the conformance workload under one policy and close the pool."""
    service = PredictionService(cluster=cluster, estimator_mode="analytical",
                                backend=backend, max_workers=workers,
                                workers=(list(worker_hosts)
                                         if worker_hosts else None),
                                scheduler=scheduler, **service_kwargs)
    return run_conformance(model, cluster, backend, workers=workers,
                           batches=batches, service=service)


def assert_placement_counters(run: ConformanceRun, scheduler: str) -> None:
    """Every pooled run surfaces the placement counters through sync_stats."""
    for key in PLACEMENT_COUNTER_KEYS:
        assert key in run.sync_stats, \
            f"{run.backend}/{scheduler}: sync_stats missing {key!r} " \
            f"({run.sync_stats})"
    cold = sum(1 for result in run.flat_results
               if result.metadata.get("service_cache") == "miss")
    assert run.sync_stats["placements"] >= cold, \
        f"{run.backend}/{scheduler}: placements counter did not cover " \
        f"the {cold} dispatched cold jobs ({run.sync_stats})"
