"""Tests for the trace model and the transparent device emulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emulator import DeviceEmulator, EmulationSession
from repro.core.trace import JobTrace, TraceEvent, TraceEventKind, WorkerTrace
from repro.cuda.cublas import CublasHandle
from repro.hardware.cluster import get_cluster
from repro.hardware.gpu_specs import get_gpu


def _make_event(kind=TraceEventKind.KERNEL, api="k", **params):
    return TraceEvent(kind=kind, api=api, device=0, stream=0,
                      kernel_class="elementwise", params=dict(params))


class TestTraceEvent:
    def test_roundtrip_serialisation(self):
        event = _make_event(bytes=128.0, dtype="float16")
        clone = TraceEvent.from_dict(event.to_dict())
        assert clone == event

    def test_device_work_classification(self):
        assert _make_event().is_device_work()
        host = TraceEvent(kind=TraceEventKind.HOST_DELAY, api="hostDelay",
                          device=0, duration=1e-6)
        assert not host.is_device_work()

    def test_signature_ignores_duration(self):
        first = _make_event(bytes=64.0)
        second = _make_event(bytes=64.0)
        second.duration = 1.0
        assert first.signature() == second.signature()

    def test_signature_differs_on_params(self):
        assert _make_event(bytes=64.0).signature() != \
            _make_event(bytes=128.0).signature()

    @given(st.floats(min_value=0, max_value=1e9),
           st.sampled_from(["float16", "float32", "bfloat16"]))
    @settings(max_examples=30, deadline=None)
    def test_json_roundtrip(self, nbytes, dtype):
        trace = WorkerTrace(rank=3, device=1)
        trace.append(_make_event(bytes=nbytes, dtype=dtype))
        restored = WorkerTrace.from_json(trace.to_json())
        assert restored.rank == 3
        assert restored.events[0].params["bytes"] == nbytes


class TestWorkerTrace:
    def test_append_assigns_sequence_numbers(self):
        trace = WorkerTrace(rank=0, device=0)
        for _ in range(5):
            trace.append(_make_event())
        assert [event.seq for event in trace.events] == list(range(5))

    def test_device_events_filters_host_delays(self):
        trace = WorkerTrace(rank=0, device=0)
        trace.append(TraceEvent(kind=TraceEventKind.HOST_DELAY, api="hostDelay",
                                device=0, duration=1e-6))
        trace.append(_make_event())
        assert len(trace.device_events()) == 1

    def test_host_delay_total(self):
        trace = WorkerTrace(rank=0, device=0)
        for _ in range(4):
            trace.append(TraceEvent(kind=TraceEventKind.HOST_DELAY,
                                    api="hostDelay", device=0, duration=0.5))
        assert trace.host_delay_total() == pytest.approx(2.0)

    def test_rolling_signature_equal_for_identical_streams(self):
        def build():
            trace = WorkerTrace(rank=0, device=0)
            trace.append(_make_event(bytes=1.0))
            trace.append(_make_event(api="k2", bytes=2.0))
            return trace
        assert build().rolling_signature() == build().rolling_signature()

    def test_rolling_signature_detects_differences(self):
        first = WorkerTrace(rank=0, device=0)
        first.append(_make_event(bytes=1.0))
        second = WorkerTrace(rank=1, device=0)
        second.append(_make_event(bytes=2.0))
        assert first.rolling_signature() != second.rolling_signature()


class TestJobTrace:
    def test_add_worker_and_lookup(self):
        job = JobTrace(world_size=4)
        trace = WorkerTrace(rank=1, device=1)
        job.add_worker(trace)
        job.representative[3] = 1
        assert job.trace_for(3) is trace
        assert job.emulated_ranks == [1]

    def test_peak_memory_and_oom(self):
        job = JobTrace(world_size=2)
        job.add_worker(WorkerTrace(rank=0, device=0, peak_memory_bytes=100))
        job.add_worker(WorkerTrace(rank=1, device=1, peak_memory_bytes=300,
                                   oom=True))
        assert job.peak_memory_bytes() == 300
        assert job.any_oom()

    def test_json_roundtrip(self):
        job = JobTrace(world_size=2)
        trace = WorkerTrace(rank=0, device=0)
        trace.append(_make_event())
        job.add_worker(trace)
        restored = JobTrace.from_json(job.to_json())
        assert restored.world_size == 2
        assert len(restored.workers[0]) == 1


class TestDeviceEmulator:
    def test_intercepts_api_calls_into_trace(self):
        emulator = DeviceEmulator(rank=0, device=0, gpu=get_gpu("V100"))
        cublas = CublasHandle(emulator.runtime)
        cublas.hgemm(256, 256, 256)
        trace = emulator.finalize()
        kinds = [event.kind for event in trace.events]
        assert TraceEventKind.HOST_DELAY in kinds
        assert TraceEventKind.KERNEL in kinds
        kernel = [e for e in trace.events if e.kind is TraceEventKind.KERNEL][0]
        assert kernel.kernel_class == "gemm"

    def test_host_delays_precede_device_events(self):
        emulator = DeviceEmulator(rank=0, device=0, gpu=get_gpu("V100"))
        emulator.runtime.launch_kernel("k", "elementwise", {"bytes": 1.0})
        events = emulator.trace.events
        assert events[0].kind is TraceEventKind.HOST_DELAY
        assert events[1].kind is TraceEventKind.KERNEL

    def test_host_delays_can_be_disabled(self):
        emulator = DeviceEmulator(rank=0, device=0, gpu=get_gpu("V100"),
                                  record_host_delays=False)
        emulator.runtime.launch_kernel("k", "elementwise", {"bytes": 1.0})
        assert all(event.kind is not TraceEventKind.HOST_DELAY
                   for event in emulator.trace.events)

    def test_markers_recorded(self):
        emulator = DeviceEmulator(rank=0, device=0, gpu=get_gpu("V100"))
        emulator.mark("iteration-0-start")
        assert emulator.trace.events[-1].kind is TraceEventKind.MARKER

    def test_finalize_records_peak_memory(self):
        emulator = DeviceEmulator(rank=0, device=0, gpu=get_gpu("V100"))
        emulator.runtime.cuda_malloc(1 << 26)
        trace = emulator.finalize()
        assert trace.peak_memory_bytes >= 1 << 26
        assert trace.metadata["api_calls"] >= 1

    def test_identical_workers_share_rolling_signature(self):
        def run(rank):
            emulator = DeviceEmulator(rank=rank, device=rank, gpu=get_gpu("V100"))
            cublas = CublasHandle(emulator.runtime)
            cublas.hgemm(128, 128, 128)
            emulator.runtime.launch_kernel("k", "softmax", {"bytes": 64.0})
            return emulator.finalize().rolling_signature()
        assert run(0) == run(1)


class TestEmulationSession:
    def test_runs_requested_ranks_only(self):
        cluster = get_cluster("v100-8")
        session = EmulationSession(cluster)

        def worker(rank, emulator):
            emulator.runtime.launch_kernel("k", "elementwise", {"bytes": 1.0})

        result = session.run(worker, ranks=[0, 3])
        assert sorted(result.job_trace.workers) == [0, 3]
        assert result.job_trace.world_size == 8
        assert not result.oom

    def test_oom_is_captured_not_raised(self):
        cluster = get_cluster("v100-8")
        session = EmulationSession(cluster)

        def worker(rank, emulator):
            emulator.runtime.cuda_malloc(cluster.gpu.memory_bytes * 2)

        result = session.run(worker, ranks=[0, 1])
        assert result.oom
        assert result.job_trace.workers[0].oom
        # stop_on_oom aborts the remaining ranks.
        assert 1 not in result.job_trace.workers

    def test_stop_on_oom_can_be_disabled(self):
        cluster = get_cluster("v100-8")
        session = EmulationSession(cluster)

        def worker(rank, emulator):
            if rank == 0:
                emulator.runtime.cuda_malloc(cluster.gpu.memory_bytes * 2)
            else:
                emulator.runtime.launch_kernel("k", "elementwise", {"bytes": 1.0})

        result = session.run(worker, ranks=[0, 1], stop_on_oom=False)
        assert result.oom
        assert 1 in result.job_trace.workers
