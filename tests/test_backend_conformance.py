"""Cross-backend conformance and lifecycle tests.

The conformance harness (``tests/backend_conformance.py``) runs one
identical two-batch workload through every evaluation backend and asserts
byte-identical results, serial-equivalent cache accounting and a uniform
``throughput_stats()`` shape.  The lifecycle classes pin down the
persistent pool's failure behaviour (exception mid-batch, stale sync
epochs, idempotent close) and that no backend leaks worker processes.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time

import pytest

from backend_conformance import (
    assert_accounting_matches,
    assert_conformant,
    assert_results_identical,
    assert_throughput_shape,
    conformance_backends,
    default_batches,
    make_jobs,
    run_conformance,
)
from repro.core.pipeline import PredictionResult
from repro.framework.recipe import TrainingRecipe
from repro.service import (
    ArtifactCache,
    BackendWorkerError,
    PredictionService,
    get_backend,
)
from repro.service.worker_host import spawn_local_worker_hosts

BACKENDS = conformance_backends()


@pytest.fixture(scope="module", autouse=True)
def socket_worker_hosts():
    """Localhost ``repro worker-host`` subprocesses for the socket backend.

    Spawned once per module (only when the socket backend is in the
    covered set) and exported via ``REPRO_WORKER_HOSTS``, which is where
    a ``PredictionService(backend="socket")`` without an explicit worker
    list resolves its addresses.
    """
    if "socket" not in BACKENDS:
        yield None
        return
    with spawn_local_worker_hosts(2) as addresses:
        previous = os.environ.get("REPRO_WORKER_HOSTS")
        os.environ["REPRO_WORKER_HOSTS"] = ",".join(addresses)
        try:
            yield addresses
        finally:
            if previous is None:
                os.environ.pop("REPRO_WORKER_HOSTS", None)
            else:
                os.environ["REPRO_WORKER_HOSTS"] = previous


class _FlowJob:
    """Picklable job with a bulky payload (stresses the job-message pipe)."""

    def __init__(self, index: int, payload_bytes: int = 0) -> None:
        self.index = index
        self.name = f"flow-{index}"
        self.payload = b"\x00" * payload_bytes


class _FlowService:
    """Minimal service stand-in that drives a backend directly.

    ``predict`` is instant and returns a result of configurable size, so
    these tests stress only the backend's pipe protocol (scatter/gather
    flow control, sync timeouts), never the real pipeline.
    """

    def __init__(self, result_bytes: int = 0, max_workers: int = 2) -> None:
        self.max_workers = max_workers
        self.enable_cache = True
        self.share_provider = False
        self.cache = ArtifactCache()
        self.result_bytes = result_bytes

    @property
    def stats(self):
        return self.cache.stats

    def provider(self):
        return None

    def _warm_pipeline(self) -> None:
        pass

    def _artifact_key(self, job):
        return ("flow", job.index)

    def _prediction_key(self, job):
        return ("flow-pred", job.index)

    def predict(self, job):
        return PredictionResult(
            job_name=job.name, iteration_time=float(job.index),
            total_time=0.0, communication_time=0.0, peak_memory_bytes=0,
            oom=False, metadata={"bulk": "x" * self.result_bytes})


class _NoAckConn:
    """Pipe stand-in for a wedged-but-alive worker: never acks a sync."""

    def send(self, message) -> None:
        pass

    def poll(self, timeout=None) -> bool:
        return False

    def recv(self):  # pragma: no cover - poll() gates every recv
        raise AssertionError("recv without a successful poll")

    def close(self) -> None:
        pass


def _wait_no_extra_children(before, timeout=10.0):
    """Wait until no child processes beyond ``before`` remain."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        extra = set(multiprocessing.active_children()) - set(before)
        if not extra:
            return []
        time.sleep(0.05)
    return sorted(p.pid for p in extra)


@pytest.fixture(scope="module")
def reference(tiny_model, v100_cluster):
    """Serial reference run every backend is compared against."""
    return run_conformance(tiny_model, v100_cluster, "serial", workers=1)


class TestBackendConformance:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_conformant_with_serial(self, tiny_model, v100_cluster,
                                            reference, backend):
        run = run_conformance(tiny_model, v100_cluster, backend)
        assert_conformant(reference, run)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_no_worker_processes_outlive_the_service(self, tiny_model,
                                                     v100_cluster, backend):
        before = multiprocessing.active_children()
        run_conformance(tiny_model, v100_cluster, backend)
        assert _wait_no_extra_children(before) == []

    def test_persistent_ships_deltas_not_snapshots(self, tiny_model,
                                                   v100_cluster):
        run = run_conformance(tiny_model, v100_cluster, "persistent")
        # Batch 2's artifact-level hits were served from incrementally
        # shipped entries, never from a full resync.
        assert run.sync_stats["batches"] >= 2
        assert run.sync_stats["delta_syncs"] >= 1
        assert run.sync_stats["full_syncs"] == 0

    def test_eviction_forces_resync_not_stale_hits(self, tiny_model,
                                                   v100_cluster):
        # A tiny cache forces a FIFO eviction while the workers' last sync
        # predates it.  Deltas only carry puts, so the workers must receive
        # a full snapshot -- otherwise the worker that originally emulated
        # the evicted entry would serve (and count) an artifact hit for a
        # structural sibling that a serial run re-emulates from cold.
        from repro.framework.recipe import TrainingRecipe
        from repro.service import ArtifactCache, PredictionService

        base = default_batches()[0]      # 4 distinct structural keys
        batches = [base, [
            base[0].replace(compiled=True),   # sibling of the evicted entry
            TrainingRecipe(tensor_parallel=4, pipeline_parallel=1,
                           microbatch_multiplier=2, dtype="float16"),
        ]]

        def run(backend):
            service = PredictionService(cluster=v100_cluster,
                                        estimator_mode="analytical",
                                        cache=ArtifactCache(max_entries=3),
                                        backend=backend, max_workers=2)
            return run_conformance(tiny_model, v100_cluster, backend,
                                   batches=batches, service=service)

        reference = run("serial")
        persistent = run("persistent")
        # Batch 1 evicted the first structural key on the parent, so the
        # sibling in batch 2 must be a cold miss everywhere -- a stale
        # worker copy would have turned it into an artifact hit.
        assert reference.flat_results[4].metadata["service_cache"] == "miss"
        assert_accounting_matches(reference, persistent)
        assert_results_identical(reference.flat_results,
                                 persistent.flat_results,
                                 backend="persistent-evicting")
        assert persistent.sync_stats["full_syncs"] >= 1

    def test_backends_conformant_with_store_attached(self, tiny_model,
                                                     v100_cluster, tmp_path):
        # Every backend run against one shared, pre-populated store
        # directory must match a serial run against the same store:
        # identical results AND identical tier accounting (store hits for
        # batch 1, memory/prediction hits within batch 2).  Socket worker
        # hosts are spawned with REPRO_STORE_DIR so both sides of the wire
        # read the same cold tier, as a real deployment would.
        store_dir = str(tmp_path / "shared-store")

        def run(backend):
            service = PredictionService(cluster=v100_cluster,
                                        estimator_mode="analytical",
                                        backend=backend, max_workers=2,
                                        store_dir=store_dir)
            return run_conformance(tiny_model, v100_cluster, backend,
                                   service=service)

        seed = run("serial")          # cold run populates the store
        assert seed.cache_stats["store_hits"] == 0
        reference = run("serial")     # warm serial reference
        assert reference.cache_stats["store_hits"] > 0
        assert reference.cache_stats["memory_hits"] \
            + reference.cache_stats["store_hits"] \
            == reference.cache_stats["artifact_hits"]

        backends = [name for name in BACKENDS if name != "serial"]
        hosts = None
        if "socket" in backends:
            hosts = spawn_local_worker_hosts(
                2, env_per_host=[{"REPRO_STORE_DIR": store_dir}] * 2)
            addresses = hosts.__enter__()
            previous = os.environ.get("REPRO_WORKER_HOSTS")
            os.environ["REPRO_WORKER_HOSTS"] = ",".join(addresses)
        try:
            for backend in backends:
                assert_conformant(reference, run(backend))
        finally:
            if hosts is not None:
                if previous is None:
                    os.environ.pop("REPRO_WORKER_HOSTS", None)
                else:
                    os.environ["REPRO_WORKER_HOSTS"] = previous
                hosts.__exit__(None, None, None)


class TestPersistentLifecycle:
    def _service(self, cluster, **kwargs):
        kwargs.setdefault("backend", "persistent")
        kwargs.setdefault("max_workers", 2)
        return PredictionService(cluster=cluster,
                                 estimator_mode="analytical", **kwargs)

    def test_pool_is_created_once_and_reused(self, tiny_model, v100_cluster):
        with self._service(v100_cluster) as service:
            batches = default_batches()
            service.predict_many(make_jobs(tiny_model, v100_cluster,
                                           batches[0]))
            pids = sorted(worker.process.pid
                          for worker in service.backend_impl._workers)
            assert len(pids) == 2
            service.predict_many(make_jobs(tiny_model, v100_cluster,
                                           batches[1]))
            again = sorted(worker.process.pid
                           for worker in service.backend_impl._workers)
            assert again == pids, "second batch must reuse the same workers"

    def test_exception_mid_batch_does_not_leak_workers(
            self, tiny_model, v100_cluster, reference, monkeypatch):
        original = PredictionService.predict

        def failing_predict(self, job):
            if getattr(job, "conformance_boom", False):
                raise RuntimeError("injected mid-batch failure")
            return original(self, job)

        # Patch before warm(): the forked workers inherit the failing
        # predict, the parent process keeps it for the (unused) flag.
        monkeypatch.setattr(PredictionService, "predict", failing_predict)
        before = multiprocessing.active_children()
        with self._service(v100_cluster) as service:
            service.warm()
            jobs = make_jobs(tiny_model, v100_cluster, default_batches()[0])
            jobs[0].conformance_boom = True
            with pytest.raises(BackendWorkerError):
                service.predict_many(jobs)
            # The pool survived the failure ...
            assert all(worker.alive()
                       for worker in service.backend_impl._workers)
            # ... and the next batch still evaluates correctly.
            retry = service.predict_many(
                make_jobs(tiny_model, v100_cluster, default_batches()[0]))
            for expected, actual in zip(reference.results[0], retry):
                assert actual.iteration_time == expected.iteration_time
                assert actual.oom == expected.oom
        assert _wait_no_extra_children(before) == []

    def test_stale_epoch_forces_full_resync(self, tiny_model, v100_cluster,
                                            reference):
        batches = default_batches()
        with self._service(v100_cluster) as service:
            first = service.predict_many(make_jobs(tiny_model, v100_cluster,
                                                   batches[0]))
            # Corrupt every worker's sync cursor: the journal cannot serve
            # an epoch it never issued, so the next sync must replace the
            # workers' caches wholesale instead of trusting them.
            for worker in service.backend_impl._workers:
                worker.epoch = 10 ** 9
            second = service.predict_many(make_jobs(tiny_model, v100_cluster,
                                                    batches[1]))
            assert service.backend_impl.sync_stats["full_syncs"] >= 1
            assert_results_identical(reference.flat_results, first + second,
                                     backend="persistent-resync")

    def test_close_is_idempotent_and_context_manager_exits_clean(
            self, tiny_model, v100_cluster):
        before = multiprocessing.active_children()
        service = self._service(v100_cluster)
        with service:
            service.predict_many(make_jobs(tiny_model, v100_cluster,
                                           default_batches()[0]))
        assert _wait_no_extra_children(before) == []
        service.close()
        service.close()
        # A closed service can still evaluate: the backend re-warms a
        # fresh pool on the next batch.
        with service:
            results = service.predict_many(
                make_jobs(tiny_model, v100_cluster, default_batches()[0]))
            assert all(result.metadata["service_cache"] == "prediction"
                       for result in results)
        assert _wait_no_extra_children(before) == []

    def test_switching_backend_closes_the_pool(self, tiny_model,
                                               v100_cluster):
        before = multiprocessing.active_children()
        service = self._service(v100_cluster)
        service.predict_many(make_jobs(tiny_model, v100_cluster,
                                       default_batches()[0]))
        service.backend = "serial"
        assert _wait_no_extra_children(before) == []

    def test_large_batch_and_large_results_do_not_deadlock(self):
        # Pipes are fixed-size OS buffers (~64KB each way).  Per-worker job
        # bytes and every result here both exceed that, so scattering the
        # whole batch before gathering anything would deadlock: a worker
        # blocked sending a large result stops recv'ing jobs while the
        # parent blocks sending the rest of the worker's share.  The
        # interleaved scatter/gather (bounded in-flight window) must
        # finish regardless of batch and result size.
        backend = get_backend("persistent")
        service = _FlowService(result_bytes=256 * 1024)
        jobs = [_FlowJob(i, payload_bytes=32 * 1024) for i in range(24)]
        done = []
        thread = threading.Thread(
            target=lambda: done.append(backend.evaluate(service, jobs)),
            daemon=True)
        thread.start()
        thread.join(timeout=120)
        try:
            assert done, ("persistent batch deadlocked: scatter and gather "
                          "are not interleaved")
        finally:
            backend.close()
        assert [result.iteration_time for result in done[0]] == [
            float(index) for index in range(24)]

    def test_unresponsive_sync_worker_is_discarded_not_hung(self):
        # A wedged-but-alive worker that never acks its sync must not hang
        # the service: the ack wait times out, the worker is discarded
        # (and reaped), and its share is evaluated on the parent.
        backend = get_backend("persistent")
        backend.sync_timeout = 0.2
        service = _FlowService()
        try:
            backend.warm(service)
            assert len(backend._workers) == 2
            victim = backend._workers[0]
            victim.epoch = -1  # unserviceable: forces a sync message
            real_conn, victim.conn = victim.conn, _NoAckConn()
            results = backend.evaluate(service,
                                       [_FlowJob(i) for i in range(6)])
            assert [result.iteration_time for result in results] == [
                float(index) for index in range(6)]
            assert victim not in backend._workers
            assert not victim.process.is_alive()
            real_conn.close()
        finally:
            backend.close()

    def test_concurrent_warm_and_close_strand_no_workers(self):
        # close() racing a warm() top-up from another thread must never
        # leave a freshly forked worker outside the pool list where no
        # teardown can reach it.
        before = multiprocessing.active_children()
        backend = get_backend("persistent")
        service = _FlowService()
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                backend.close()

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            for _ in range(10):
                backend.warm(service)
        finally:
            stop.set()
            thread.join()
            backend.close()
        assert _wait_no_extra_children(before) == []

    def test_process_backend_cleans_up_when_evaluate_raises(
            self, tiny_model, v100_cluster, monkeypatch):
        original = PredictionService.predict

        def failing_predict(self, job):
            if getattr(job, "conformance_boom", False):
                raise RuntimeError("injected mid-batch failure")
            return original(self, job)

        monkeypatch.setattr(PredictionService, "predict", failing_predict)
        before = multiprocessing.active_children()
        with PredictionService(cluster=v100_cluster,
                               estimator_mode="analytical",
                               backend="process", max_workers=2) as service:
            jobs = make_jobs(tiny_model, v100_cluster, default_batches()[0])
            jobs[0].conformance_boom = True
            with pytest.raises(RuntimeError):
                service.predict_many(jobs)
            # The per-batch pool (and its fork context) is torn down by the
            # close() the lifecycle guarantees even on error ...
            assert _wait_no_extra_children(before) == []
            # ... and the service keeps working afterwards.
            retry = service.predict_many(
                make_jobs(tiny_model, v100_cluster, default_batches()[0]))
            assert len(retry) == 4
        assert _wait_no_extra_children(before) == []
