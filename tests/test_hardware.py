"""Tests for hardware specs, interconnects, clusters and noise helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cluster import PRESET_CLUSTERS, get_cluster
from repro.hardware.gpu_specs import GPU_SPECS, get_gpu
from repro.hardware.host_model import HostModel
from repro.hardware.interconnect import (
    H100_FABRIC,
    V100_FABRIC,
    InterconnectSpec,
    LinkSpec,
)
from repro.hardware.noise import (
    deterministic_choice,
    deterministic_noise,
    fast_noise,
    stable_hash,
    unit_uniform,
)


class TestGPUSpecs:
    def test_presets_exist(self):
        for name in ("V100", "H100", "A40", "A100"):
            assert get_gpu(name).name == name

    def test_lookup_is_case_insensitive(self):
        assert get_gpu("h100") is GPU_SPECS["H100"]

    def test_unknown_gpu_raises(self):
        with pytest.raises(KeyError):
            get_gpu("TPUv4")

    def test_peak_flops_by_dtype(self):
        h100 = get_gpu("H100")
        assert h100.peak_flops_for("bfloat16") > h100.peak_flops_for("float32")

    def test_volta_has_no_bf16_tensor_cores(self):
        v100 = get_gpu("V100")
        assert v100.peak_flops_for("bfloat16") < v100.peak_flops_for("float16")

    def test_unknown_dtype_falls_back_to_fp32(self):
        v100 = get_gpu("V100")
        assert v100.peak_flops_for("int4") == v100.peak_flops_for("float32")

    def test_memory_capacities_match_paper(self):
        assert get_gpu("H100").memory_gb == pytest.approx(80.0)
        assert get_gpu("V100").memory_gb == pytest.approx(40.0)
        assert get_gpu("A40").memory_gb == pytest.approx(48.0)


class TestInterconnect:
    def test_intra_node_group_uses_nvlink(self):
        link = H100_FABRIC.link_for_group(list(range(8)), gpus_per_node=8)
        assert link is H100_FABRIC.intra_node

    def test_cross_node_group_uses_fabric(self):
        link = H100_FABRIC.link_for_group([0, 8], gpus_per_node=8)
        assert link is H100_FABRIC.inter_node

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            H100_FABRIC.link_for_group([], gpus_per_node=8)

    def test_effective_bandwidth_includes_efficiency(self):
        group = list(range(4))
        bandwidth = V100_FABRIC.effective_bus_bandwidth(group, 8)
        assert bandwidth == pytest.approx(
            V100_FABRIC.intra_node.bandwidth * V100_FABRIC.collective_efficiency)

    def test_transfer_time_monotone_in_bytes(self):
        link = LinkSpec(name="test", bandwidth=1e9, latency=1e-6)
        assert link.transfer_time(2e6) > link.transfer_time(1e6)

    def test_inter_node_slower_than_intra(self):
        for fabric in (H100_FABRIC, V100_FABRIC):
            assert fabric.inter_node.bandwidth < fabric.intra_node.bandwidth


class TestCluster:
    def test_presets_match_paper_sizes(self):
        assert get_cluster("h100-64").world_size == 64
        assert get_cluster("v100-16").world_size == 16
        assert get_cluster("a40-8").world_size == 8

    def test_all_presets_are_consistent(self):
        for name, cluster in PRESET_CLUSTERS.items():
            assert cluster.world_size == cluster.gpus_per_node * cluster.num_nodes
            assert cluster.hourly_cost > 0

    def test_node_and_local_rank(self):
        cluster = get_cluster("h100-64")
        assert cluster.node_of(0) == 0
        assert cluster.node_of(63) == 7
        assert cluster.local_rank(13) == 5

    def test_rank_bounds_checked(self):
        cluster = get_cluster("v100-8")
        with pytest.raises(ValueError):
            cluster.node_of(8)

    def test_with_world_size_scales_nodes(self):
        cluster = get_cluster("h100-64").with_world_size(128)
        assert cluster.world_size == 128
        assert cluster.gpus_per_node == 8

    def test_with_world_size_shrinks_node(self):
        cluster = get_cluster("h100-64").with_world_size(4)
        assert cluster.world_size == 4
        assert cluster.num_nodes == 1

    def test_with_world_size_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            get_cluster("h100-64").with_world_size(12)

    def test_unknown_cluster_raises(self):
        with pytest.raises(KeyError):
            get_cluster("tpu-pod")


class TestHostModel:
    def test_dispatch_cost_positive(self):
        host = HostModel()
        for call_class in ("gemm", "memcpy", "collective", "unknown-class"):
            assert host.dispatch_cost(call_class, 3) > 0

    def test_dispatch_cost_deterministic(self):
        host = HostModel()
        assert host.dispatch_cost("gemm", 7) == host.dispatch_cost("gemm", 7)

    def test_speed_factor_scales_cost(self):
        slow = HostModel(name="slow", speed_factor=2.0, jitter=0.0)
        fast = HostModel(name="slow", speed_factor=1.0, jitter=0.0)
        assert slow.dispatch_cost("gemm", 1) == pytest.approx(
            2.0 * fast.dispatch_cost("gemm", 1))

    def test_custom_costs_without_misc_do_not_raise(self):
        # Regression: a custom table with neither the requested class nor
        # a "misc" entry used to raise KeyError("misc").
        host = HostModel(name="bare", dispatch_costs={"gemm": 5.0e-6})
        assert host.dispatch_cost("query", 2) > 0.0
        assert host.base_cost("gemm") == pytest.approx(5.0e-6)

    def test_split_halves_multiply_back_to_dispatch_cost(self):
        host = HostModel()
        assert host.dispatch_cost("collective", 11) == \
            host.base_cost("collective") * host.jitter_factor("collective", 11)


class TestNoise:
    def test_stable_hash_is_stable(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_stable_hash_differs_on_input(self):
        assert stable_hash("a") != stable_hash("b")

    def test_unit_uniform_in_range(self):
        for i in range(50):
            value = unit_uniform("key", i)
            assert 0.0 <= value < 1.0

    def test_deterministic_choice(self):
        options = ["x", "y", "z"]
        assert deterministic_choice(options, "seed") in options
        assert (deterministic_choice(options, "seed")
                == deterministic_choice(options, "seed"))

    def test_deterministic_choice_empty_raises(self):
        with pytest.raises(ValueError):
            deterministic_choice([], "seed")

    @given(st.integers(min_value=0, max_value=2**32), st.floats(0.001, 0.2))
    @settings(max_examples=50, deadline=None)
    def test_fast_noise_bounded(self, seed, scale):
        value = fast_noise(seed, scale)
        assert 1.0 - 2.0 * scale <= value <= 1.0 + 2.0 * scale

    @given(st.text(min_size=0, max_size=20), st.integers())
    @settings(max_examples=50, deadline=None)
    def test_deterministic_noise_positive_and_stable(self, key, index):
        first = deterministic_noise(key, index, scale=0.05)
        second = deterministic_noise(key, index, scale=0.05)
        assert first == second
        assert 0.8 < first < 1.2
