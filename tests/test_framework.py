"""Tests for the mini training framework: recipes, transformer stages,
optimizers, vision models and the training engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emulator import DeviceEmulator
from repro.core.trace import TraceEventKind
from repro.framework.engine import RecipeValidationError, TrainingEngine
from repro.framework.optimizer import MixedPrecisionAdam, OptimizerConfig
from repro.framework.process_group import ProcessGroupRegistry
from repro.framework.recipe import TrainingRecipe
from repro.framework.topology import ParallelTopology
from repro.framework.transformer import (
    ParallelConfig,
    TransformerModelSpec,
    TransformerStage,
    split_layers,
)
from repro.framework.vision import VisionModel
from repro.framework.worker import WorkerContext
from repro.hardware.gpu_specs import get_gpu
from repro.workloads.models import get_convnet, get_transformer


def _make_context(rank=0, world=4, tp=2, pp=2, dtype="float16"):
    emulator = DeviceEmulator(rank=rank, device=rank, gpu=get_gpu("H100"))
    topology = ParallelTopology(world_size=world, tensor_parallel=tp,
                                pipeline_parallel=pp)
    ctx = WorkerContext(rank, emulator, topology, ProcessGroupRegistry(),
                        dtype=dtype)
    return ctx, emulator


def _kernel_classes(emulator):
    return [event.kernel_class for event in emulator.trace.events
            if event.kind is TraceEventKind.KERNEL]


def _collective_ops(emulator):
    return [event.collective["op"] for event in emulator.trace.events
            if event.kind is TraceEventKind.COLLECTIVE]


class TestTrainingRecipe:
    def test_defaults_are_valid_on_small_cluster(self):
        recipe = TrainingRecipe()
        assert recipe.is_valid(world_size=8, global_batch_size=8,
                               num_layers=2, num_heads=4)

    def test_num_microbatches(self):
        recipe = TrainingRecipe(pipeline_parallel=4, microbatch_multiplier=2)
        assert recipe.num_microbatches == 8

    def test_micro_batch_size(self):
        recipe = TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                                microbatch_multiplier=2)
        assert recipe.micro_batch_size(global_batch_size=256, world_size=8) == 32

    def test_rejects_indivisible_world_size(self):
        recipe = TrainingRecipe(tensor_parallel=4, pipeline_parallel=4)
        assert not recipe.is_valid(8, 64, 24, 16)

    def test_rejects_heads_not_divisible_by_tp(self):
        recipe = TrainingRecipe(tensor_parallel=8)
        problems = recipe.validate(8, 64, 24, num_heads=12)
        assert any("heads" in problem for problem in problems)

    def test_rejects_tp_larger_than_node(self):
        recipe = TrainingRecipe(tensor_parallel=16)
        problems = recipe.validate(32, 256, 24, 16, gpus_per_node=8)
        assert any("exceeds GPUs per node" in problem for problem in problems)

    def test_rejects_virtual_stages_without_pp(self):
        recipe = TrainingRecipe(virtual_stages=2)
        assert not recipe.is_valid(8, 64, 24, 16)

    def test_rejects_sequence_parallel_without_tp(self):
        recipe = TrainingRecipe(sequence_parallelism=True)
        assert not recipe.is_valid(8, 64, 24, 16)

    def test_rejects_batch_not_divisible(self):
        recipe = TrainingRecipe(microbatch_multiplier=3)
        assert not recipe.is_valid(8, 100, 24, 16)

    def test_roundtrip_dict(self):
        recipe = TrainingRecipe(tensor_parallel=4, activation_recomputation=True)
        assert TrainingRecipe.from_dict(recipe.to_dict()) == recipe

    def test_short_name_mentions_flags(self):
        recipe = TrainingRecipe(tensor_parallel=2, sequence_parallelism=True,
                                distributed_optimizer=True)
        name = recipe.short_name()
        assert "tp2" in name and "sp" in name and "do" in name


class TestTransformerSpec:
    def test_preset_parameter_counts(self):
        assert get_transformer("gpt3-2.7b").total_params == \
            pytest.approx(2.7e9, rel=0.1)
        assert get_transformer("gpt3-18.4b").total_params == \
            pytest.approx(18.4e9, rel=0.1)
        assert get_transformer("gpt3-1.3b").total_params == \
            pytest.approx(1.3e9, rel=0.15)

    def test_flops_per_token_close_to_6n(self):
        model = get_transformer("gpt3-2.7b")
        assert model.flops_per_token() >= 6.0 * model.total_params * 0.8

    def test_invalid_heads_rejected(self):
        with pytest.raises(ValueError):
            TransformerModelSpec(name="bad", hidden_size=100, num_layers=1,
                                 num_heads=3, seq_length=8)

    def test_split_layers_balanced(self):
        per_rank = split_layers(num_layers=24, pipeline_parallel=4)
        assert [sum(sizes) for sizes in per_rank] == [6, 6, 6, 6]

    def test_split_layers_interleaved(self):
        per_rank = split_layers(num_layers=8, pipeline_parallel=2,
                                virtual_stages=2)
        assert all(len(sizes) == 2 for sizes in per_rank)
        assert sum(sum(sizes) for sizes in per_rank) == 8

    def test_split_layers_uneven_distributes_remainder(self):
        per_rank = split_layers(num_layers=10, pipeline_parallel=4)
        assert sum(sum(sizes) for sizes in per_rank) == 10
        assert max(sum(sizes) for sizes in per_rank) - \
            min(sum(sizes) for sizes in per_rank) <= 1


class TestTransformerStage:
    def _stage(self, tp=2, sp=False, recompute=False, layers=2,
               embedding=False, head=False):
        model = get_transformer("gpt-small")
        return TransformerStage(
            model=model,
            parallel=ParallelConfig(tensor_parallel=tp, sequence_parallel=sp,
                                    activation_recomputation=recompute),
            num_layers=layers, has_embedding=embedding, has_lm_head=head,
            dtype="float16",
        )

    def test_forward_emits_gemms_and_tp_collectives(self):
        ctx, emulator = _make_context()
        self._stage().forward_microbatch(ctx, micro_batch=2)
        classes = _kernel_classes(emulator)
        assert classes.count("gemm") == 8  # 4 GEMMs per layer, 2 layers
        assert _collective_ops(emulator).count("all_reduce") == 4

    def test_sequence_parallel_swaps_collectives(self):
        ctx, emulator = _make_context()
        self._stage(sp=True).forward_microbatch(ctx, micro_batch=2)
        ops = _collective_ops(emulator)
        assert "reduce_scatter" in ops and "all_gather" in ops
        assert "all_reduce" not in ops

    def test_no_tp_collectives_without_tensor_parallelism(self):
        ctx, emulator = _make_context(tp=1, world=2, pp=2)
        self._stage(tp=1).forward_microbatch(ctx, micro_batch=2)
        assert not _collective_ops(emulator)

    def test_backward_roughly_doubles_gemm_count(self):
        ctx, emulator = _make_context()
        stage = self._stage()
        stage.forward_microbatch(ctx, 2)
        forward_gemms = _kernel_classes(emulator).count("gemm")
        stage.backward_microbatch(ctx, 2)
        total_gemms = _kernel_classes(emulator).count("gemm")
        assert total_gemms == 3 * forward_gemms  # dgrad + wgrad per GEMM

    def test_recomputation_replays_forward_in_backward(self):
        ctx_plain, emu_plain = _make_context()
        self._stage().backward_microbatch(ctx_plain, 2)
        plain = len(_kernel_classes(emu_plain))
        ctx_rc, emu_rc = _make_context()
        self._stage(recompute=True).backward_microbatch(ctx_rc, 2)
        assert len(_kernel_classes(emu_rc)) > plain

    def test_embedding_and_lm_head_only_on_edge_stages(self):
        ctx, emulator = _make_context()
        self._stage(embedding=True, head=True).forward_microbatch(ctx, 2)
        classes = _kernel_classes(emulator)
        assert "embedding" in classes
        assert "cross_entropy" in classes

    def test_recompute_reduces_activation_memory(self):
        plain = self._stage().activation_bytes(micro_batch=4)
        recomputed = self._stage(recompute=True).activation_bytes(micro_batch=4)
        assert recomputed < plain / 3

    def test_sequence_parallel_reduces_activation_memory(self):
        plain = self._stage().activation_bytes(micro_batch=4)
        sp = self._stage(sp=True).activation_bytes(micro_batch=4)
        assert sp < plain

    def test_tensor_parallel_shards_parameters(self):
        assert self._stage(tp=2).local_params() < \
            self._stage(tp=1).local_params()

    @given(st.integers(1, 16))
    @settings(max_examples=20, deadline=None)
    def test_activation_bytes_scale_with_microbatch(self, micro_batch):
        stage = self._stage()
        assert stage.activation_bytes(micro_batch * 2) > \
            stage.activation_bytes(micro_batch)


class TestOptimizer:
    def test_state_bytes_sharded_by_distributed_optimizer(self):
        dense = MixedPrecisionAdam(OptimizerConfig(distributed=False),
                                   local_params=1000, dp_degree=4)
        sharded = MixedPrecisionAdam(OptimizerConfig(distributed=True),
                                     local_params=1000, dp_degree=4)
        assert sharded.state_bytes() == dense.state_bytes() // 4

    def test_offload_moves_state_to_host(self):
        offloaded = MixedPrecisionAdam(OptimizerConfig(offload=True),
                                       local_params=1000, dp_degree=2)
        assert offloaded.state_bytes() == 0
        assert offloaded.host_state_bytes() > 0

    def test_zero_stage_flags(self):
        config = OptimizerConfig(zero_stage=3)
        assert config.shards_optimizer_state
        assert config.shards_gradients
        assert config.shards_parameters

    def test_ddp_reduce_uses_allreduce_buckets(self):
        ctx, emulator = _make_context(tp=1, pp=1, world=4)
        adam = MixedPrecisionAdam(OptimizerConfig(bucket_bytes=4000),
                                  local_params=3000, dp_degree=4)
        adam.reduce_gradients(ctx)
        ops = _collective_ops(emulator)
        assert ops and set(ops) == {"all_reduce"}
        assert len(ops) == 3  # 3000 fp32 params in 1000-element buckets

    def test_distributed_optimizer_uses_reduce_scatter_and_gather(self):
        ctx, emulator = _make_context(tp=1, pp=1, world=4)
        adam = MixedPrecisionAdam(OptimizerConfig(distributed=True),
                                  local_params=1 << 20, dp_degree=4)
        adam.reduce_gradients(ctx)
        adam.step(ctx)
        ops = _collective_ops(emulator)
        assert "reduce_scatter" in ops
        assert "all_gather" in ops

    def test_step_emits_fused_update_kernel(self):
        ctx, emulator = _make_context(tp=1, pp=1, world=1)
        adam = MixedPrecisionAdam(OptimizerConfig(clip_grad_norm=False),
                                  local_params=1024, dp_degree=1)
        adam.step(ctx)
        assert "optimizer_apply" in _kernel_classes(emulator)


class TestVisionModel:
    def test_resnet152_parameter_count(self):
        spec = get_convnet("resnet152")
        assert spec.total_params == pytest.approx(60e6, rel=0.35)

    def test_forward_backward_emit_conv_kernels(self):
        ctx, emulator = _make_context(tp=1, pp=1, world=2)
        model = VisionModel(get_convnet("convnet-tiny"), dtype="float16")
        model.forward(ctx, batch=4)
        model.backward(ctx, batch=4)
        classes = _kernel_classes(emulator)
        assert "conv_forward" in classes
        assert "conv_backward_data" in classes
        assert "conv_backward_filter" in classes

    def test_compiled_model_uses_fused_triton_kernels(self):
        ctx, emulator = _make_context(tp=1, pp=1, world=2)
        model = VisionModel(get_convnet("convnet-tiny"), compiled=True)
        model.forward(ctx, batch=2)
        assert "fused_triton" in _kernel_classes(emulator)

    def test_ddp_gradient_allreduce(self):
        ctx, emulator = _make_context(tp=1, pp=1, world=2)
        model = VisionModel(get_convnet("convnet-tiny"))
        model.reduce_gradients(ctx)
        assert _collective_ops(emulator) == ["all_reduce"]


class TestTrainingEngine:
    def _engine(self, model_name="gpt-tiny", world=8, gbs=16, **recipe_kwargs):
        recipe = TrainingRecipe(dtype="float16", **recipe_kwargs)
        return TrainingEngine(get_transformer(model_name), recipe,
                              world_size=world, global_batch_size=gbs)

    def _run(self, engine, rank=0):
        emulator = DeviceEmulator(rank=rank, device=rank, gpu=get_gpu("H100"))
        engine.run_worker(rank, emulator)
        return emulator

    def test_invalid_recipe_raises(self):
        with pytest.raises(RecipeValidationError):
            self._engine(tensor_parallel=3)

    def test_iteration_has_expected_structure(self):
        engine = self._engine(tensor_parallel=2, pipeline_parallel=2,
                              microbatch_multiplier=2)
        emulator = self._run(engine, rank=0)
        classes = _kernel_classes(emulator)
        ops = _collective_ops(emulator)
        assert "gemm" in classes and "optimizer_apply" in classes
        assert "send" in ops           # pipeline activations leave stage 0
        assert "all_reduce" in ops     # DP gradients + TP activations
        markers = [event for event in emulator.trace.events
                   if event.kind is TraceEventKind.MARKER]
        assert len(markers) == 2

    def test_last_stage_receives_activations(self):
        engine = self._engine(tensor_parallel=2, pipeline_parallel=2,
                              microbatch_multiplier=2)
        emulator = self._run(engine, rank=2)  # pp rank 1
        assert "recv" in _collective_ops(emulator)

    def test_memory_freed_after_iteration(self):
        engine = self._engine(tensor_parallel=1, pipeline_parallel=1,
                              microbatch_multiplier=2, world=2, gbs=8)
        emulator = self._run(engine)
        runtime = emulator.runtime
        # Activations are freed; only params/grads/optimizer state remain.
        assert runtime.memory.allocated < runtime.memory.peak_allocated

    def test_unique_ranks_matches_topology(self):
        engine = self._engine(tensor_parallel=2, pipeline_parallel=2)
        assert engine.unique_ranks() == engine.topology.unique_ranks()

    def test_zero3_gathers_parameters(self):
        engine = self._engine(tensor_parallel=1, pipeline_parallel=1,
                              zero_stage=3, world=4, gbs=8)
        emulator = self._run(engine)
        ops = _collective_ops(emulator)
        assert "all_gather" in ops and "reduce_scatter" in ops

    def test_offload_emits_host_device_copies(self):
        engine = self._engine(tensor_parallel=1, pipeline_parallel=1,
                              offload=True, world=2, gbs=8)
        emulator = self._run(engine)
        memcpys = [event for event in emulator.trace.events
                   if event.kind is TraceEventKind.MEMCPY]
        directions = {event.kernel_class for event in memcpys}
        assert "memcpy_d2h" in directions and "memcpy_h2d" in directions

    def test_multiple_iterations_emit_multiple_markers(self):
        engine = self._engine(tensor_parallel=1, pipeline_parallel=1,
                              world=2, gbs=8)
        emulator = DeviceEmulator(rank=0, device=0, gpu=get_gpu("H100"))
        engine.run_worker(0, emulator, iterations=2)
        markers = [event.params["label"] for event in emulator.trace.events
                   if event.kind is TraceEventKind.MARKER]
        assert "iteration-1-end" in markers
