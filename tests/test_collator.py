"""Tests for trace collation: deduplication, collective matching, expansion."""

from __future__ import annotations

import pytest

from repro.core.collator import (
    CollatedTrace,
    IdentityGroupResolver,
    TopologyGroupResolver,
    TraceCollator,
)
from repro.core.emulator import EmulationSession
from repro.core.trace import JobTrace, TraceEvent, TraceEventKind, WorkerTrace
from repro.framework.topology import ParallelTopology
from repro.hardware.cluster import get_cluster
from repro.workloads.job import TransformerTrainingJob
from repro.workloads.models import get_transformer
from repro.framework.recipe import TrainingRecipe


def _collective_event(op, rank, ranks, seq, comm_id=1, tag="dp", nbytes=1024.0,
                      peer=None):
    collective = {"comm_id": comm_id, "comm_tag": tag, "seq": seq, "op": op,
                  "rank": rank, "nranks": len(ranks), "ranks": tuple(ranks)}
    if peer is not None:
        collective["peer"] = peer
    return TraceEvent(kind=TraceEventKind.COLLECTIVE, api=f"nccl{op}",
                      device=0, stream=0, kernel_class=op,
                      params={"bytes": nbytes}, collective=collective)


def _kernel_event(nbytes=64.0):
    return TraceEvent(kind=TraceEventKind.KERNEL, api="k", device=0, stream=0,
                      kernel_class="elementwise", params={"bytes": nbytes})


def _job_with_two_identical_workers():
    job = JobTrace(world_size=4)
    for rank in (0, 1, 2, 3):
        trace = WorkerTrace(rank=rank, device=rank)
        trace.append(_kernel_event())
        trace.append(_collective_event("all_reduce", rank, [0, 1, 2, 3], seq=1))
        job.add_worker(trace)
    return job


class TestDeduplication:
    def test_identical_workers_collapse_to_one(self):
        collated = TraceCollator(deduplicate=True).collate(
            _job_with_two_identical_workers())
        assert collated.unique_trace_count() == 1
        assert set(collated.representative.values()) == {0}
        assert collated.stats["dedup_savings"] == pytest.approx(0.75)

    def test_dedup_can_be_disabled(self):
        collated = TraceCollator(deduplicate=False).collate(
            _job_with_two_identical_workers())
        assert collated.unique_trace_count() == 4

    def test_distinct_workers_not_merged(self):
        job = JobTrace(world_size=2)
        first = WorkerTrace(rank=0, device=0)
        first.append(_kernel_event(64.0))
        second = WorkerTrace(rank=1, device=1)
        second.append(_kernel_event(128.0))
        job.add_worker(first)
        job.add_worker(second)
        collated = TraceCollator().collate(job)
        assert collated.unique_trace_count() == 2

    def test_selective_launch_expansion_requires_topology(self):
        job = JobTrace(world_size=4)
        trace = WorkerTrace(rank=0, device=0)
        trace.append(_kernel_event())
        job.add_worker(trace)
        with pytest.raises(ValueError):
            TraceCollator().collate(job)
        topology = ParallelTopology(world_size=4, tensor_parallel=2,
                                    pipeline_parallel=1)
        collated = TraceCollator().collate(job, topology=topology)
        assert collated.representative[3] == 0

    def test_expansion_fails_for_missing_stage(self):
        job = JobTrace(world_size=4)
        trace = WorkerTrace(rank=0, device=0)
        trace.append(_kernel_event())
        job.add_worker(trace)
        topology = ParallelTopology(world_size=4, tensor_parallel=1,
                                    pipeline_parallel=2)
        with pytest.raises(ValueError):
            TraceCollator().collate(job, topology=topology)


class TestCollectiveResolution:
    def test_group_collective_key_matches_across_ranks(self):
        job = _job_with_two_identical_workers()
        collated = TraceCollator(deduplicate=False).collate(job)
        events = [e for e in collated.traces[0].events
                  if e.kind is TraceEventKind.COLLECTIVE]
        key0 = collated.collective_key(0, events[0])
        key1 = collated.collective_key(1, events[0])
        assert key0 == key1
        assert key0[0] == "coll"

    def test_non_collective_event_has_no_key(self):
        collated = TraceCollator().collate(_job_with_two_identical_workers())
        kernel = collated.traces[0].events[0]
        assert collated.collective_key(0, kernel) is None

    def test_p2p_send_recv_pair_to_same_key(self):
        job = JobTrace(world_size=2)
        sender = WorkerTrace(rank=0, device=0)
        sender.append(_collective_event("send", 0, [0, 1], seq=1, tag="pp",
                                        peer=1))
        receiver = WorkerTrace(rank=1, device=1)
        receiver.append(_collective_event("recv", 1, [0, 1], seq=1, tag="pp",
                                          peer=0))
        job.add_worker(sender)
        job.add_worker(receiver)
        collated = TraceCollator(deduplicate=False).collate(job)
        send_key = collated.collective_key(0, sender.events[0])
        recv_key = collated.collective_key(1, receiver.events[0])
        assert send_key == recv_key
        assert send_key[0] == "p2p"

    def test_repeated_p2p_messages_get_distinct_pair_indices(self):
        trace = WorkerTrace(rank=0, device=0)
        trace.append(_collective_event("send", 0, [0, 1], seq=1, tag="pp", peer=1))
        trace.append(_collective_event("send", 0, [0, 1], seq=2, tag="pp", peer=1))
        job = JobTrace(world_size=2)
        job.add_worker(trace)
        other = WorkerTrace(rank=1, device=1)
        other.append(_kernel_event())
        job.add_worker(other)
        collated = TraceCollator(deduplicate=False).collate(job)
        first = collated.resolution_for(0, trace.events[0])
        second = collated.resolution_for(0, trace.events[1])
        assert first.pair_index == 0
        assert second.pair_index == 1

    def test_topology_resolver_remaps_groups_per_rank(self):
        topology = ParallelTopology(world_size=8, tensor_parallel=2,
                                    pipeline_parallel=2)
        resolver = TopologyGroupResolver(topology)
        rep_group = tuple(topology.data_parallel_group(0))
        remapped = resolver.group_for(1, "dp", rep_group)
        assert remapped == tuple(topology.data_parallel_group(1))
        assert remapped != rep_group

    def test_identity_resolver_keeps_group(self):
        resolver = IdentityGroupResolver()
        assert resolver.group_for(7, "dp", (0, 1)) == (0, 1)

    def test_unknown_tag_falls_back_to_recorded_group(self):
        topology = ParallelTopology(world_size=4, tensor_parallel=2,
                                    pipeline_parallel=1)
        resolver = TopologyGroupResolver(topology)
        assert resolver.group_for(3, "expert", (0, 2)) == (0, 2)


class TestEndToEndCollation:
    def test_transformer_job_collation_stats(self):
        cluster = get_cluster("v100-8")
        model = get_transformer("gpt-tiny")
        recipe = TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                                microbatch_multiplier=2, dtype="float16")
        job = TransformerTrainingJob(model, recipe, cluster,
                                     global_batch_size=16)
        session = EmulationSession(cluster)
        result = session.run(job.worker_fn, ranks=job.unique_ranks(),
                             world_size=job.world_size)
        collated = TraceCollator().collate(result.job_trace,
                                           topology=job.topology())
        # Two pipeline stages -> two unique traces, expanded to all 8 ranks.
        assert collated.unique_trace_count() == 2
        assert set(collated.representative) == set(range(8))
        assert collated.peak_memory_bytes() > 0
        assert not collated.any_oom()

    def test_every_collective_event_is_resolved(self):
        cluster = get_cluster("v100-8")
        model = get_transformer("gpt-tiny")
        recipe = TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                                microbatch_multiplier=2, dtype="float16")
        job = TransformerTrainingJob(model, recipe, cluster,
                                     global_batch_size=16)
        session = EmulationSession(cluster)
        result = session.run(job.worker_fn, ranks=job.unique_ranks(),
                             world_size=job.world_size)
        collated = TraceCollator().collate(result.job_trace,
                                           topology=job.topology())
        for rank, trace in collated.traces.items():
            for event in trace.events:
                if event.kind is TraceEventKind.COLLECTIVE:
                    assert collated.resolution_for(rank, event) is not None
