"""End-to-end tests for the Maya pipeline and the testbed reference model."""

from __future__ import annotations

import math

import pytest

from repro.analysis.metrics import absolute_percentage_error, mfu
from repro.core.pipeline import MayaPipeline
from repro.framework.recipe import TrainingRecipe
from repro.hardware.cluster import get_cluster
from repro.testbed import Testbed
from repro.workloads.job import TransformerTrainingJob, VisionTrainingJob
from repro.workloads.models import get_convnet, get_transformer


@pytest.fixture(scope="module")
def v100():
    return get_cluster("v100-8")


@pytest.fixture(scope="module")
def tiny_gpt():
    return get_transformer("gpt-tiny")


def _job(model, cluster, gbs=16, **recipe_kwargs):
    recipe = TrainingRecipe(dtype="float16", **recipe_kwargs)
    return TransformerTrainingJob(model, recipe, cluster, global_batch_size=gbs)


class TestMayaPipeline:
    def test_emulation_artifacts_contain_traces(self, v100, tiny_gpt):
        pipeline = MayaPipeline(v100, estimator_mode="analytical")
        job = _job(tiny_gpt, v100, tensor_parallel=2, pipeline_parallel=2,
                   microbatch_multiplier=2)
        artifacts = pipeline.emulate(job)
        assert artifacts.job_trace.total_events() > 0
        assert artifacts.collated.unique_trace_count() >= 1
        assert "emulation" in artifacts.stage_times
        assert not artifacts.oom

    def test_prediction_reports_all_metrics(self, v100, tiny_gpt):
        pipeline = MayaPipeline(v100, estimator_mode="analytical")
        job = _job(tiny_gpt, v100, tensor_parallel=2, pipeline_parallel=2,
                   microbatch_multiplier=2)
        result = pipeline.predict(job)
        assert result.succeeded
        assert result.iteration_time > 0
        assert result.communication_time > 0
        assert result.peak_memory_bytes > 0
        assert set(result.stage_times) >= {"emulation", "collation",
                                           "prediction", "simulation"}

    def test_invalid_recipe_reported_not_raised(self, v100, tiny_gpt):
        job = _job(tiny_gpt, v100, tensor_parallel=3)
        result = MayaPipeline(v100, estimator_mode="analytical").predict(job)
        assert not result.succeeded
        assert "invalid" in result.metadata

    def test_oom_config_reported(self, v100):
        # gpt3-6.7b with no parallelism cannot fit in 40 GB.
        model = get_transformer("gpt3-6.7b")
        job = _job(model, v100, gbs=64, tensor_parallel=1, pipeline_parallel=1)
        result = MayaPipeline(v100, estimator_mode="analytical").predict(job)
        assert result.oom
        assert math.isinf(result.iteration_time)

    def test_selective_launch_matches_full_emulation(self, v100, tiny_gpt):
        job = _job(tiny_gpt, v100, tensor_parallel=2, pipeline_parallel=2,
                   microbatch_multiplier=2)
        selective = MayaPipeline(v100, estimator_mode="analytical",
                                 selective_launch=True).predict(job)
        job2 = _job(tiny_gpt, v100, tensor_parallel=2, pipeline_parallel=2,
                    microbatch_multiplier=2)
        full = MayaPipeline(v100, estimator_mode="analytical",
                            selective_launch=False,
                            deduplicate_workers=True).predict(job2)
        assert selective.iteration_time == pytest.approx(full.iteration_time,
                                                         rel=0.02)

    def test_replica_reduction_matches_full_simulation(self, v100, tiny_gpt):
        job = _job(tiny_gpt, v100, tensor_parallel=2, pipeline_parallel=2,
                   microbatch_multiplier=2)
        pipeline_reduced = MayaPipeline(v100, estimator_mode="analytical",
                                        reduce_replicas=True)
        pipeline_full = MayaPipeline(v100, estimator_mode="analytical",
                                     reduce_replicas=False)
        artifacts = pipeline_reduced.emulate(job)
        reduced = pipeline_reduced.predict(job, artifacts)
        full = pipeline_full.predict(job, artifacts)
        assert reduced.iteration_time == pytest.approx(full.iteration_time,
                                                       rel=0.05)
        assert reduced.metadata["simulated_ranks"] < \
            full.metadata["simulated_ranks"]

    def test_vision_job_prediction(self, tiny_gpt):
        cluster = get_cluster("a40-8")
        job = VisionTrainingJob(get_convnet("convnet-tiny"), cluster,
                                global_batch_size=32)
        result = MayaPipeline(cluster, estimator_mode="analytical").predict(job)
        assert result.succeeded
        assert result.iteration_time > 0


class TestTestbed:
    def test_measurement_close_to_oracle_prediction(self, v100, tiny_gpt):
        job = _job(tiny_gpt, v100, tensor_parallel=2, pipeline_parallel=2,
                   microbatch_multiplier=2)
        pipeline = MayaPipeline(v100, estimator_mode="oracle")
        artifacts = pipeline.emulate(job)
        predicted = pipeline.predict(job, artifacts)
        actual = Testbed(v100).measure(job, artifacts)
        error = absolute_percentage_error(actual.iteration_time,
                                          predicted.iteration_time)
        assert error < 10.0

    def test_measurements_are_reproducible(self, v100, tiny_gpt):
        job = _job(tiny_gpt, v100, tensor_parallel=2, pipeline_parallel=1,
                   microbatch_multiplier=2)
        first = Testbed(v100).measure(job)
        second = Testbed(v100).measure(job)
        assert first.iteration_time == pytest.approx(second.iteration_time)

    def test_contention_increases_measured_time(self, v100, tiny_gpt):
        job = _job(tiny_gpt, v100, tensor_parallel=2, pipeline_parallel=1,
                   microbatch_multiplier=2)
        pipeline = MayaPipeline(v100, estimator_mode="analytical")
        artifacts = pipeline.emulate(job)
        plain = Testbed(v100, sm_contention_factor=1.0).measure(job, artifacts)
        contended = Testbed(v100, sm_contention_factor=1.3).measure(job,
                                                                    artifacts)
        assert contended.iteration_time >= plain.iteration_time

    def test_invalid_and_oom_reported(self, v100):
        invalid = _job(get_transformer("gpt-tiny"), v100, tensor_parallel=5)
        assert not Testbed(v100).measure(invalid).succeeded
        oom = _job(get_transformer("gpt3-6.7b"), v100, gbs=64)
        assert Testbed(v100).measure(oom).oom


class TestAccuracyContract:
    """The headline claim: Maya's predictions track the testbed closely."""

    @pytest.mark.parametrize("recipe_kwargs", [
        dict(tensor_parallel=2, pipeline_parallel=2, microbatch_multiplier=2),
        dict(tensor_parallel=4, pipeline_parallel=1, microbatch_multiplier=2,
             distributed_optimizer=True),
        dict(tensor_parallel=2, pipeline_parallel=2, microbatch_multiplier=1,
             activation_recomputation=True, sequence_parallelism=True),
        dict(tensor_parallel=1, pipeline_parallel=2, microbatch_multiplier=2,
             virtual_stages=2),
    ])
    def test_oracle_prediction_within_ten_percent(self, v100, recipe_kwargs):
        model = get_transformer("gpt-small")
        job = _job(model, v100, gbs=32, **recipe_kwargs)
        pipeline = MayaPipeline(v100, estimator_mode="oracle")
        artifacts = pipeline.emulate(job)
        predicted = pipeline.predict(job, artifacts)
        actual = Testbed(v100).measure(job, artifacts)
        assert predicted.succeeded and actual.succeeded
        error = absolute_percentage_error(actual.iteration_time,
                                          predicted.iteration_time)
        assert error < 10.0

    def test_mfu_within_physical_bounds(self, v100):
        model = get_transformer("gpt-small")
        job = _job(model, v100, gbs=32, tensor_parallel=2, pipeline_parallel=2,
                   microbatch_multiplier=2)
        actual = Testbed(v100).measure(job)
        value = mfu(actual.iteration_time, job.flops_per_iteration(), v100,
                    dtype="float16")
        assert 0.0 < value <= 1.0
