"""Tests for the kernel runtime estimators: regressors, profiler, suites."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators.analytical import AnalyticalKernelEstimator
from repro.core.estimators.collective import (
    HierarchicalNetworkModel,
    ProfiledCollectiveEstimator,
)
from repro.core.estimators.features import FEATURE_NAMES, kernel_features
from repro.core.estimators.oracle import (
    OracleCollectiveEstimator,
    OracleKernelEstimator,
)
from repro.core.estimators.profiler import (
    CollectiveProfiler,
    DEFAULT_KERNEL_CLASSES,
    KernelProfiler,
)
from repro.core.estimators.regression import (
    DecisionTreeRegressor,
    RandomForestRegressor,
    mean_absolute_percentage_error,
)
from repro.core.estimators.suite import (
    EstimatorSuite,
    LearnedKernelEstimator,
    build_estimator_suite,
)
from repro.hardware.cluster import get_cluster
from repro.hardware.gpu_specs import get_gpu
from repro.hardware.interconnect import V100_FABRIC
from repro.hardware.kernel_cost import KernelCostModel


class TestFeatures:
    def test_feature_vector_length(self):
        vector = kernel_features({"flops": 1e9, "bytes": 1e6})
        assert vector.shape == (len(FEATURE_NAMES),)

    def test_dtype_distinguished(self):
        fp16 = kernel_features({"flops": 1e9, "dtype": "float16"})
        bf16 = kernel_features({"flops": 1e9, "dtype": "bfloat16"})
        assert not np.allclose(fp16, bf16)

    def test_missing_fields_default_to_zero(self):
        vector = kernel_features({})
        assert np.isfinite(vector).all()


class TestRegression:
    def test_tree_fits_piecewise_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, size=(400, 1))
        y = np.where(x[:, 0] < 5, 1.0, 3.0)
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        prediction = tree.predict(np.array([[2.0], [8.0]]))
        assert prediction[0] == pytest.approx(1.0, abs=0.1)
        assert prediction[1] == pytest.approx(3.0, abs=0.1)

    def test_tree_rejects_empty_dataset(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_tree_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((3, 2)), np.zeros(4))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_forest_improves_over_constant(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(1, 20, size=(600, 2))
        y = np.log(x[:, 0] * 3 + x[:, 1])
        forest = RandomForestRegressor(n_trees=6, max_depth=10, seed=2)
        forest.fit(x[:500], y[:500])
        prediction = forest.predict(x[500:])
        residual = np.mean((prediction - y[500:]) ** 2)
        baseline = np.var(y[500:])
        assert residual < baseline * 0.1

    def test_forest_is_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, size=(100, 3))
        y = x.sum(axis=1)
        first = RandomForestRegressor(n_trees=3, seed=7).fit(x, y).predict(x[:5])
        second = RandomForestRegressor(n_trees=3, seed=7).fit(x, y).predict(x[:5])
        assert np.allclose(first, second)

    def test_mape_metric(self):
        assert mean_absolute_percentage_error(
            np.array([1.0, 2.0]), np.array([1.1, 1.8])) == pytest.approx(10.0)

    @given(st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=20, deadline=None)
    def test_tree_predicts_constant_function_exactly(self, constant):
        x = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.full(20, constant)
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.predict(np.array([[3.0]]))[0] == pytest.approx(constant)


class TestAnalyticalAndOracle:
    def test_analytical_monotone_in_flops(self):
        estimator = AnalyticalKernelEstimator(get_gpu("H100"))
        small = estimator.estimate("gemm", {"flops": 1e9, "bytes": 1e6,
                                            "dtype": "float16"})
        large = estimator.estimate("gemm", {"flops": 1e12, "bytes": 1e8,
                                            "dtype": "float16"})
        assert large > small

    def test_analytical_memcpy_uses_pcie(self):
        estimator = AnalyticalKernelEstimator(get_gpu("H100"))
        assert estimator.estimate("memcpy_h2d", {"bytes": 1e9}) > \
            estimator.estimate("memcpy_d2d", {"bytes": 1e9})

    def test_oracle_matches_cost_model(self):
        cost_model = KernelCostModel()
        oracle = OracleKernelEstimator(get_gpu("V100"), cost_model)
        params = {"flops": 2e12, "bytes": 5e8, "m": 4096, "n": 4096, "k": 4096,
                  "dtype": "float16"}
        assert oracle.estimate("gemm", params) == pytest.approx(
            cost_model.expected_kernel_time(get_gpu("V100"), "gemm", params))

    def test_oracle_collective_positive(self):
        oracle = OracleCollectiveEstimator(V100_FABRIC)
        time = oracle.estimate_collective("all_reduce", 1e8, list(range(8)), 8)
        assert time > 0


class TestProfiler:
    def test_profile_class_produces_samples(self):
        profiler = KernelProfiler(get_gpu("V100"), seed=1)
        dataset = profiler.profile_class("gemm", n_samples=50)
        assert len(dataset) == 50
        assert (dataset.runtimes > 0).all()

    def test_profiles_are_deterministic_per_seed(self):
        first = KernelProfiler(get_gpu("V100"), seed=3).profile_class("softmax", 20)
        second = KernelProfiler(get_gpu("V100"), seed=3).profile_class("softmax", 20)
        assert np.allclose(first.runtimes, second.runtimes)

    def test_train_test_split_partitions(self):
        dataset = KernelProfiler(get_gpu("A40")).profile_class("elementwise", 40)
        train, test = dataset.train_test_split(test_fraction=0.25, seed=0)
        assert len(train) + len(test) == 40
        assert len(test) == 10

    def test_default_classes_cover_trace_vocabulary(self):
        for kernel_class in ("gemm", "batched_gemm", "softmax", "memcpy_h2d",
                             "conv_forward", "fused_triton"):
            assert kernel_class in DEFAULT_KERNEL_CLASSES

    def test_collective_profiler_sweeps_sizes_and_ranks(self):
        profiler = CollectiveProfiler(V100_FABRIC, gpus_per_node=8, seed=0)
        samples = profiler.profile(ops=("all_reduce",), rank_counts=(2, 8, 16),
                                   sizes=(1e6, 1e8), repeats=1)
        assert len(samples) == 6
        assert any(not sample.intra_node for sample in samples)
        assert all(sample.runtime > 0 for sample in samples)


class TestLearnedEstimators:
    @pytest.fixture(scope="class")
    def gemm_estimator(self):
        profiler = KernelProfiler(get_gpu("V100"), seed=0)
        dataset = profiler.profile_class("gemm", n_samples=200)
        train, test = dataset.train_test_split(seed=0)
        prior = AnalyticalKernelEstimator(get_gpu("V100"))
        estimator = LearnedKernelEstimator.train(train, prior, seed=0)
        return estimator, test

    def test_validation_mape_reasonable(self, gemm_estimator):
        estimator, test = gemm_estimator
        assert estimator.validation_mape(test) < 25.0

    def test_estimates_are_positive(self, gemm_estimator):
        estimator, _ = gemm_estimator
        value = estimator.estimate("gemm", {"m": 2048, "n": 2048, "k": 2048,
                                            "flops": 2.0 * 2048 ** 3,
                                            "bytes": 2.0 * 3 * 2048 ** 2,
                                            "dtype": "float16"})
        assert value > 0

    def test_profiled_collective_estimator_fits_sweep(self):
        profiler = CollectiveProfiler(V100_FABRIC, gpus_per_node=8, seed=1)
        samples = profiler.profile(ops=("all_reduce", "all_gather"),
                                   rank_counts=(2, 4, 8), repeats=2)
        estimator = ProfiledCollectiveEstimator(gpus_per_node=8).fit(samples)
        predicted = estimator.estimate_collective("all_reduce", 1e8,
                                                  list(range(8)), 8)
        oracle = OracleCollectiveEstimator(V100_FABRIC)
        actual = oracle.estimate_collective("all_reduce", 1e8, list(range(8)), 8)
        assert predicted == pytest.approx(actual, rel=0.35)

    def test_unfitted_collective_estimator_raises(self):
        with pytest.raises(RuntimeError):
            ProfiledCollectiveEstimator(8).estimate_collective(
                "all_reduce", 1e6, [0, 1], 8)

    def test_hierarchical_model_penalises_cross_node(self):
        model = HierarchicalNetworkModel(V100_FABRIC)
        intra = model.estimate_collective("all_reduce", 1e8, list(range(8)), 8)
        inter = model.estimate_collective("all_reduce", 1e8, list(range(16)), 8)
        assert inter > intra


class TestEstimatorSuite:
    def test_oracle_and_analytical_modes(self):
        cluster = get_cluster("v100-8")
        for mode in ("oracle", "analytical"):
            suite = build_estimator_suite(cluster, mode=mode)
            assert suite.estimate_kernel("gemm", {"flops": 1e10, "bytes": 1e7,
                                                  "dtype": "float16"}) > 0
            assert suite.estimate_collective("all_reduce", 1e7,
                                             list(range(4)), 8) > 0

    def test_suite_cache_reuses_instances(self):
        cluster = get_cluster("v100-8")
        first = build_estimator_suite(cluster, mode="analytical")
        second = build_estimator_suite(cluster, mode="analytical")
        assert first is second

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            build_estimator_suite(get_cluster("v100-8"), mode="quantum")

    def test_missing_estimator_raises(self):
        suite = EstimatorSuite(name="empty")
        with pytest.raises(RuntimeError):
            suite.estimate_kernel("gemm", {})
        with pytest.raises(RuntimeError):
            suite.estimate_collective("all_reduce", 1.0, [0, 1], 8)

    def test_learned_suite_reports_validation_mape(self):
        # Uses the session-level cache when the learned suite was already
        # trained by other tests; otherwise trains a small one.
        cluster = get_cluster("v100-8")
        suite = build_estimator_suite(cluster, mode="learned",
                                      samples_per_class=60, seed=5)
        assert suite.validation_mape
        important = [suite.validation_mape[name]
                     for name in ("gemm", "batched_gemm", "softmax")]
        assert all(value < 40.0 for value in important)
