"""Tests for the disk-backed artifact store (the cold cache tier).

Covers the on-disk format (stamping, refusal of incompatible stores,
checksummed entries), durability (atomic writes, partial/corrupt files as
misses, crash-leftover sweeping), maintenance (LRU gc, verify +
quarantine), the tiered lookup path through :class:`ArtifactCache` and
:class:`PredictionService` (tier accounting, journalled hydration,
warm-starting a second service from disk), cross-process sharing
(interleaved writers never corrupt the store), the :class:`StoreRef`
skip-ship sync protocol of the persistent pool, and pickle safety (a
store handle never travels to another process).
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.framework.recipe import TrainingRecipe
from repro.service import (
    ArtifactCache,
    ArtifactStore,
    PredictionService,
    StoreError,
    StoreFormatError,
    StoreRef,
)
from repro.service.store import (
    DEFAULT_SIZE_BUDGET,
    FORMAT_FILE,
    STORE_FORMAT,
    key_digest,
)

SRC_ROOT = str(Path(__file__).resolve().parents[1] / "src")


def make_job(model, cluster, recipe, global_batch_size=16, iterations=1):
    # Local copy of the conftest helper: subprocess scripts import this
    # module by name, and a bare `from conftest import ...` is ambiguous
    # under full-repo collection (benchmarks/ has its own conftest).
    from repro.workloads.job import TransformerTrainingJob

    return TransformerTrainingJob(model, recipe, cluster,
                                  global_batch_size=global_batch_size,
                                  iterations=iterations)


def _store(tmp_path, **kwargs) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store", **kwargs)


def _service(cluster, **kwargs) -> PredictionService:
    return PredictionService(cluster=cluster, estimator_mode="analytical",
                             **kwargs)


def _recipes(count: int = 4):
    """Structurally distinct recipes (distinct artifact keys)."""
    pool = [
        TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                       microbatch_multiplier=2, dtype="float16"),
        TrainingRecipe(tensor_parallel=1, pipeline_parallel=2,
                       microbatch_multiplier=2, dtype="float16"),
        TrainingRecipe(tensor_parallel=2, pipeline_parallel=1,
                       microbatch_multiplier=2, dtype="float16"),
        TrainingRecipe(tensor_parallel=1, pipeline_parallel=1,
                       microbatch_multiplier=1, dtype="float16"),
        TrainingRecipe(tensor_parallel=4, pipeline_parallel=1,
                       microbatch_multiplier=2, dtype="float16"),
        TrainingRecipe(tensor_parallel=4, pipeline_parallel=2,
                       microbatch_multiplier=2, dtype="float16"),
    ]
    return pool[:count]


class TestStoreBasics:
    def test_roundtrip_and_contains(self, tmp_path):
        store = _store(tmp_path)
        key = ("sig", ("tp", 2), "fp")
        payload = {"events": [1, 2, 3], "name": "artifact"}
        assert not store.contains(key)
        assert store.get(key) is None
        assert store.put(key, payload)
        assert store.contains(key)
        assert store.get(key) == payload
        assert store.counters["puts"] == 1
        assert store.counters["hits"] == 1
        assert store.counters["misses"] == 1

    def test_second_put_skips_existing_entry(self, tmp_path):
        store = _store(tmp_path)
        key = ("sig", 1)
        assert store.put(key, "first")
        assert not store.put(key, "second")
        assert store.counters["put_skips"] == 1
        # Content-addressed: the existing (equivalent) entry survives.
        assert store.get(key) == "first"

    def test_unstorable_payload_is_skipped_not_fatal(self, tmp_path):
        store = _store(tmp_path)
        assert not store.put(("sig", 2), lambda: None)  # unpicklable
        assert store.counters["put_skips"] == 1
        assert store.get(("sig", 2)) is None

    def test_entry_for_wrong_key_is_treated_as_corrupt(self, tmp_path):
        # A file whose decoded key differs from the lookup key (digest
        # collision or a copied/tampered file) must be a miss, not a
        # silently wrong artifact.
        store = _store(tmp_path)
        store.put(("sig", "a"), "payload-a")
        src = store._entry_path(("sig", "a"))
        dst = store._entry_path(("sig", "b"))
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(src, dst)
        assert store.get(("sig", "b")) is None
        assert store.counters["corrupt"] == 1

    def test_entries_are_bucketed_by_digest_prefix(self, tmp_path):
        store = _store(tmp_path)
        key = ("sig", 3)
        store.put(key, "x")
        digest = key_digest(key)
        expected = (tmp_path / "store" / "objects" / digest[:2]
                    / f"{digest}.art")
        assert expected.is_file()


class TestStoreFormat:
    def test_fresh_store_is_stamped(self, tmp_path):
        from repro.service import wire

        _store(tmp_path)
        stamp = json.loads((tmp_path / "store" / FORMAT_FILE).read_text())
        assert stamp == {"store_format": STORE_FORMAT,
                         "protocol": wire.PROTOCOL}

    def test_reopening_a_compatible_store_succeeds(self, tmp_path):
        _store(tmp_path).put(("k",), "v")
        assert _store(tmp_path).get(("k",)) == "v"

    def test_incompatible_format_refused_naming_both_sides(self, tmp_path):
        _store(tmp_path)
        stamp = tmp_path / "store" / FORMAT_FILE
        stamp.write_text(json.dumps({"store_format": 999, "protocol": 1}))
        with pytest.raises(StoreFormatError) as excinfo:
            _store(tmp_path)
        message = str(excinfo.value)
        assert "999" in message  # what the directory speaks
        assert str(STORE_FORMAT) in message  # what we speak

    def test_unreadable_stamp_refused(self, tmp_path):
        _store(tmp_path)
        (tmp_path / "store" / FORMAT_FILE).write_text("not json{")
        with pytest.raises(StoreFormatError):
            _store(tmp_path)

    def test_missing_directory_without_create_refused(self, tmp_path):
        with pytest.raises(StoreError):
            ArtifactStore(tmp_path / "absent", create=False)

    def test_unstamped_directory_without_create_refused(self, tmp_path):
        (tmp_path / "plain").mkdir()
        with pytest.raises(StoreFormatError):
            ArtifactStore(tmp_path / "plain", create=False)

    def test_service_attach_propagates_format_refusal(self, tmp_path,
                                                      v100_cluster):
        _store(tmp_path)
        stamp = tmp_path / "store" / FORMAT_FILE
        stamp.write_text(json.dumps({"store_format": 999, "protocol": 1}))
        with pytest.raises(StoreFormatError):
            _service(v100_cluster, store_dir=str(tmp_path / "store"))


class TestStoreCorruption:
    def test_truncated_entry_is_a_miss(self, tmp_path):
        store = _store(tmp_path)
        key = ("sig", "t")
        store.put(key, {"payload": list(range(100))})
        path = store._entry_path(key)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # crash-like truncation
        assert store.get(key) is None
        assert store.counters["corrupt"] == 1

    def test_flipped_byte_fails_the_checksum(self, tmp_path):
        store = _store(tmp_path)
        key = ("sig", "f")
        store.put(key, {"payload": "x" * 256})
        path = store._entry_path(key)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.get(key) is None
        assert store.counters["corrupt"] == 1

    def test_orphaned_temp_file_is_invisible_and_swept(self, tmp_path):
        store = _store(tmp_path)
        store.put(("live",), "payload")
        bucket = store._entry_path(("live",)).parent
        orphan = bucket / ".tmp-99999-1-deadbeef.art"
        orphan.write_bytes(b"partial write from a crashed process")
        # Invisible to lookups and stats ...
        assert store.get(("live",)) == "payload"
        assert store.stats()["entries"] == 1
        assert store.verify()["checked"] == 1
        # ... and swept by gc without touching live entries.
        report = store.gc()
        assert report["removed"] == 1
        assert not orphan.exists()
        assert store.get(("live",)) == "payload"

    def test_verify_reports_and_quarantines_corrupt_entries(self, tmp_path):
        store = _store(tmp_path)
        store.put(("good",), "payload")
        store.put(("bad",), "payload")
        bad_path = store._entry_path(("bad",))
        bad_path.write_bytes(b"garbage")
        report = store.verify()
        assert report["checked"] == 2
        assert report["corrupt"] == [bad_path.name]
        assert report["quarantined"] == []
        assert bad_path.exists()  # report-only by default

        report = store.verify(quarantine=True)
        assert report["quarantined"] == [bad_path.name]
        assert not bad_path.exists()
        assert bad_path.with_suffix(".art.corrupt").exists()
        # Quarantined files leave the scan set and the lookup path.
        assert store.verify() == {"checked": 1, "corrupt": [],
                                  "quarantined": []}
        assert store.get(("bad",)) is None
        # The slot is free again: a re-put repairs the store.
        assert store.put(("bad",), "payload")
        assert store.get(("bad",)) == "payload"


class TestStoreGC:
    def _put_aged(self, store, items):
        """Put entries and pin their mtimes (oldest first)."""
        for age, (key, payload) in enumerate(items):
            store.put(key, payload)
            path = store._entry_path(key)
            os.utime(path, (1_000_000 + age, 1_000_000 + age))

    def test_gc_evicts_lru_until_budget(self, tmp_path):
        store = _store(tmp_path)
        self._put_aged(store, [(("old",), "x" * 64),
                               (("mid",), "y" * 64),
                               (("new",), "z" * 64)])
        entry_size = store._entry_path(("new",)).stat().st_size
        report = store.gc(size_budget=entry_size)
        assert report["removed"] == 2
        assert report["remaining_bytes"] <= entry_size
        assert store.counters["evicted"] == 2
        assert not store.contains(("old",))
        assert not store.contains(("mid",))
        assert store.contains(("new",))

    def test_gc_budget_zero_clears_the_store(self, tmp_path):
        store = _store(tmp_path)
        self._put_aged(store, [(("a",), "x"), (("b",), "y")])
        report = store.gc(size_budget=0)
        assert report["removed"] == 2
        assert report["remaining_bytes"] == 0
        assert store.stats()["entries"] == 0

    def test_reads_touch_mtime_so_warm_entries_survive(self, tmp_path):
        store = _store(tmp_path)
        self._put_aged(store, [(("hot",), "x" * 64), (("cold",), "y" * 64)])
        assert store.get(("hot",)) == "x" * 64  # refreshes mtime
        entry_size = store._entry_path(("hot",)).stat().st_size
        store.gc(size_budget=entry_size)
        assert store.contains(("hot",))
        assert not store.contains(("cold",))

    def test_default_budget_is_settable(self, tmp_path):
        assert _store(tmp_path).size_budget == DEFAULT_SIZE_BUDGET
        assert ArtifactStore(tmp_path / "s2", size_budget=123).size_budget \
            == 123
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path / "s3", size_budget=0)


class TestTieredCacheLookup:
    def test_tier_accounting_memory_then_store(self, tmp_path, tiny_model,
                                               v100_cluster):
        store_dir = str(tmp_path / "store")
        recipe = _recipes(1)[0]
        job = make_job(tiny_model, v100_cluster, recipe)

        with _service(v100_cluster, store_dir=store_dir) as service:
            cold = service.predict(job)
            assert cold.metadata["service_cache"] == "miss"
            assert "artifact_tier" not in cold.metadata
            sibling = make_job(tiny_model, v100_cluster,
                               recipe.replace(compiled=True))
            warm = service.predict(sibling)
            assert warm.metadata["service_cache"] == "artifacts"
            assert warm.metadata["artifact_tier"] == "memory"
            stats = service.cache_stats()
            assert stats["memory_hits"] == 1
            assert stats["store_hits"] == 0

        # A fresh service (empty memory tier) resolves from disk.
        with _service(v100_cluster, store_dir=store_dir) as service:
            disk = service.predict(job)
            assert disk.metadata["service_cache"] == "artifacts"
            assert disk.metadata["artifact_tier"] == "store"
            assert disk.iteration_time == cold.iteration_time
            assert disk.peak_memory_bytes == cold.peak_memory_bytes
            stats = service.cache_stats()
            assert stats["store_hits"] == 1
            assert stats["memory_hits"] + stats["store_hits"] \
                == stats["artifact_hits"]

    def test_store_hydration_is_journalled(self, tmp_path, tiny_model,
                                           v100_cluster):
        # A store hit enters the memory tier through the ordinary journal
        # path, so pooled workers receive hydrated entries as regular
        # deltas -- a disk-warmed entry is indistinguishable from a
        # freshly emulated one.
        store_dir = str(tmp_path / "store")
        job = make_job(tiny_model, v100_cluster, _recipes(1)[0])
        with _service(v100_cluster, store_dir=store_dir) as service:
            service.predict(job)
            key = service._artifact_key(job)

        cache = ArtifactCache(store=ArtifactStore(store_dir))
        epoch_before = cache.sync_epoch
        artifacts, tier = cache.lookup_artifacts(key)
        assert tier == "store" and artifacts is not None
        delta = cache.delta_since(epoch_before)
        assert delta is not None
        epoch_after, entries = delta
        assert epoch_after == epoch_before + 1
        assert [entry_key for entry_key, _ in entries] == [key]

    def test_hydrated_entries_do_not_write_back(self, tmp_path, tiny_model,
                                                v100_cluster):
        store_dir = str(tmp_path / "store")
        job = make_job(tiny_model, v100_cluster, _recipes(1)[0])
        with _service(v100_cluster, store_dir=store_dir) as service:
            service.predict(job)
        with _service(v100_cluster, store_dir=store_dir) as service:
            service.predict(job)  # store hit hydrates memory
            service.predict(make_job(tiny_model, v100_cluster,
                                     _recipes(1)[0].replace(compiled=True)))
            counters = service.store.counters
            # The only lookup that reached the store was the hydration;
            # neither the hydration nor the memory hit re-wrote the entry.
            assert counters["puts"] == 0
            assert counters["put_skips"] == 0

    def test_cache_disabled_ignores_the_store(self, tmp_path, tiny_model,
                                              v100_cluster):
        store_dir = str(tmp_path / "store")
        job = make_job(tiny_model, v100_cluster, _recipes(1)[0])
        with _service(v100_cluster, store_dir=store_dir) as service:
            service.predict(job)
        with _service(v100_cluster, store_dir=store_dir,
                      enable_cache=False) as service:
            result = service.predict(job)
            assert result.metadata["service_cache"] == "disabled"
            assert service.store.counters["gets"] == 0

    def test_store_stats_surface_on_the_service(self, tmp_path, tiny_model,
                                                v100_cluster):
        store_dir = str(tmp_path / "store")
        with _service(v100_cluster, store_dir=store_dir) as service:
            assert service.store_stats()["entries"] == 0
            service.predict(make_job(tiny_model, v100_cluster,
                                     _recipes(1)[0]))
            stats = service.store_stats()
            assert stats["entries"] == 1
            assert stats["total_bytes"] > 0
        with _service(v100_cluster) as service:
            assert service.store_stats() is None

    def test_server_stats_payload_includes_tiers_and_store(
            self, tmp_path, tiny_model, v100_cluster):
        from repro.service.server import PredictionServer

        store_dir = str(tmp_path / "store")
        with _service(v100_cluster, store_dir=store_dir) as service:
            service.predict(make_job(tiny_model, v100_cluster,
                                     _recipes(1)[0]))
            payload = PredictionServer(service).stats_payload()
            assert payload["cache"]["memory_hits"] == 0
            assert payload["cache"]["store_hits"] == 0
            assert payload["store"]["entries"] == 1
        with _service(v100_cluster) as service:
            assert PredictionServer(service).stats_payload()["store"] is None


class TestCrossProcessSharing:
    def _run_in_subprocess(self, store_dir, recipes_spec, out_path):
        """Run a search-like predict batch in a fresh process."""
        script = textwrap.dedent(f"""
            import json, sys
            sys.path.insert(0, {SRC_ROOT!r})
            sys.path.insert(0, {str(Path(__file__).parent)!r})
            from repro.hardware.cluster import get_cluster
            from repro.workloads.models import get_transformer
            from repro.service import PredictionService
            from test_store import _recipes, make_job

            cluster = get_cluster("v100-8")
            model = get_transformer("gpt-tiny")
            jobs = [make_job(model, cluster, recipe)
                    for recipe in _recipes({recipes_spec})]
            with PredictionService(cluster=cluster,
                                   estimator_mode="analytical",
                                   store_dir={str(store_dir)!r}) as service:
                results = service.predict_many(jobs)
                payload = {{
                    "iteration_times": [r.iteration_time for r in results],
                    "tiers": [r.metadata.get("artifact_tier")
                              for r in results],
                    "cache_stats": service.cache_stats(),
                    "store_counters": dict(service.store.counters),
                }}
            with open({str(out_path)!r}, "w") as handle:
                json.dump(payload, handle)
        """)
        subprocess.run([sys.executable, "-c", script], check=True,
                       timeout=240)
        return json.loads(Path(out_path).read_text())

    def test_second_process_warm_starts_from_store(self, tmp_path,
                                                   tiny_model, v100_cluster):
        store_dir = tmp_path / "store"
        first = self._run_in_subprocess(store_dir, 3, tmp_path / "one.json")
        assert first["cache_stats"]["store_hits"] == 0
        second = self._run_in_subprocess(store_dir, 3, tmp_path / "two.json")
        assert second["cache_stats"]["store_hits"] == 3
        assert second["tiers"] == ["store"] * 3
        assert second["iteration_times"] == first["iteration_times"]
        assert second["store_counters"]["puts"] == 0

    def test_interleaved_writers_never_corrupt_the_store(self, tmp_path,
                                                         tiny_model,
                                                         v100_cluster):
        # Two processes writing overlapping entry sets concurrently: every
        # write is atomic-rename, so the union must verify clean and a
        # third (in-process) service must warm-start from all of it.
        store_dir = tmp_path / "store"
        script = textwrap.dedent(f"""
            import sys
            sys.path.insert(0, {SRC_ROOT!r})
            sys.path.insert(0, {str(Path(__file__).parent)!r})
            from repro.hardware.cluster import get_cluster
            from repro.workloads.models import get_transformer
            from repro.service import PredictionService
            from test_store import _recipes, make_job

            lo, hi = int(sys.argv[1]), int(sys.argv[2])
            cluster = get_cluster("v100-8")
            model = get_transformer("gpt-tiny")
            jobs = [make_job(model, cluster, recipe)
                    for recipe in _recipes(6)[lo:hi]]
            with PredictionService(cluster=cluster,
                                   estimator_mode="analytical",
                                   store_dir={str(store_dir)!r}) as service:
                service.predict_many(jobs)
        """)
        writers = [
            subprocess.Popen([sys.executable, "-c", script, "0", "4"]),
            subprocess.Popen([sys.executable, "-c", script, "2", "6"]),
        ]
        for writer in writers:
            assert writer.wait(timeout=240) == 0

        store = ArtifactStore(store_dir)
        report = store.verify()
        assert report["corrupt"] == []
        assert report["checked"] == 6
        with _service(v100_cluster, store_dir=str(store_dir)) as service:
            jobs = [make_job(tiny_model, v100_cluster, recipe)
                    for recipe in _recipes(6)]
            results = service.predict_many(jobs)
            assert all(result.metadata["artifact_tier"] == "store"
                       for result in results)

    def test_crash_mid_write_leaves_a_recoverable_store(self, tmp_path,
                                                        tiny_model,
                                                        v100_cluster):
        # Simulate the observable outcome of a writer dying mid-write: an
        # orphaned temp file next to healthy entries.  Readers never see
        # it, `repro cache gc` sweeps it, and the entry it was meant to
        # publish is simply re-emulated and re-put by the next run.
        store_dir = str(tmp_path / "store")
        jobs = [make_job(tiny_model, v100_cluster, recipe)
                for recipe in _recipes(2)]
        with _service(v100_cluster, store_dir=store_dir) as service:
            service.predict(jobs[0])
        store = ArtifactStore(store_dir)
        victim_key_path = store._entry_path(("unpublished",))
        victim_key_path.parent.mkdir(parents=True, exist_ok=True)
        tmp_file = victim_key_path.parent / ".tmp-1234-1-crash.art"
        tmp_file.write_bytes(b"\x00" * 128)

        with _service(v100_cluster, store_dir=store_dir) as service:
            results = service.predict_many(jobs)
            assert results[0].metadata["artifact_tier"] == "store"
            assert results[1].metadata["service_cache"] == "miss"
            assert service.store.counters["corrupt"] == 0
        swept = ArtifactStore(store_dir).gc()
        assert swept["removed"] == 1
        assert not tmp_file.exists()
        assert ArtifactStore(store_dir).stats()["entries"] == 2


class TestStoreRefProtocol:
    def test_storeref_is_tiny_and_pickles(self):
        ref = StoreRef(("sig", ("tp", 2)))
        clone = pickle.loads(pickle.dumps(ref))
        assert clone.key == ref.key

    def test_persistent_pool_ships_storerefs_not_payloads(
            self, tmp_path, tiny_model, v100_cluster):
        store_dir = str(tmp_path / "store")
        jobs = [make_job(tiny_model, v100_cluster, recipe)
                for recipe in _recipes(6)]
        with _service(v100_cluster, store_dir=store_dir) as service:
            serial = service.predict_many(jobs)

        with _service(v100_cluster, store_dir=store_dir,
                      backend="persistent", max_workers=2) as service:
            service.predict_many(jobs[:4])   # workers store-hit, parent
            pooled = service.predict_many(jobs)  # ... hydrates; sync ships
            sync = service.backend_impl.sync_stats
            assert sync["store_refs_shipped"] > 0
            assert sync["full_syncs"] == 0
            for expected, actual in zip(serial, pooled):
                assert actual.iteration_time == expected.iteration_time
                assert actual.peak_memory_bytes == expected.peak_memory_bytes

    def test_sync_miss_reships_payloads_inline(self, tmp_path, tiny_model,
                                               v100_cluster):
        # A StoreRef the worker cannot resolve (entry gc'd between the
        # parent's contains() and the worker's get()) must degrade to an
        # inline re-ship at the same epoch, not an error or a wrong result.
        store_dir = str(tmp_path / "store")
        jobs = [make_job(tiny_model, v100_cluster, recipe)
                for recipe in _recipes(6)]
        with _service(v100_cluster, store_dir=store_dir) as service:
            serial = service.predict_many(jobs)

        with _service(v100_cluster, store_dir=store_dir,
                      backend="persistent", max_workers=2) as service:
            service.predict_many(jobs[:4])
            shutil.rmtree(Path(store_dir) / "objects")
            service.store.contains = lambda key: True  # force the race
            pooled = service.predict_many(jobs)
            sync = service.backend_impl.sync_stats
            assert sync["store_ref_fallbacks"] > 0
            for expected, actual in zip(serial, pooled):
                assert actual.iteration_time == expected.iteration_time

    def test_socket_workers_never_receive_storerefs(self, tmp_path):
        # The parent cannot know a remote host mounts the same filesystem,
        # so only forked workers opt into StoreRef shipping.
        from repro.service.backends import _PersistentWorker, _SocketWorker

        assert _PersistentWorker.shares_store
        assert not _SocketWorker.shares_store

    def test_resolve_store_refs_reports_missing_keys(self, tmp_path):
        from repro.service.backends import _resolve_store_refs

        class _CacheOnly:
            def __init__(self, store):
                self.cache = ArtifactCache(store=store)

        store = _store(tmp_path)
        store.put(("held",), "payload")
        service = _CacheOnly(store)
        entries = [(("held",), StoreRef(("held",))),
                   (("gone",), StoreRef(("gone",))),
                   (("inline",), "inline-payload")]
        resolved, missing = _resolve_store_refs(service, entries)
        assert dict(resolved) == {("held",): "payload",
                                  ("inline",): "inline-payload"}
        assert missing == [("gone",)]


class TestPickleSafety:
    def test_store_refuses_to_pickle(self, tmp_path):
        store = _store(tmp_path)
        with pytest.raises(TypeError, match="attach its own store"):
            pickle.dumps(store)

    def test_cache_pickle_drops_the_store(self, tmp_path):
        cache = ArtifactCache(store=_store(tmp_path))
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.store is None

    def test_service_pickle_drops_store_and_dir(self, tmp_path, tiny_model,
                                                v100_cluster):
        store_dir = str(tmp_path / "store")
        with _service(v100_cluster, store_dir=store_dir) as service:
            service.predict(make_job(tiny_model, v100_cluster,
                                     _recipes(1)[0]))
            assert service.store is not None
            clone = pickle.loads(pickle.dumps(service))
            assert clone.store is None
            assert clone.store_dir is None
            # The unpickled copy still predicts (memory tier only) ...
            result = clone.predict(make_job(tiny_model, v100_cluster,
                                            _recipes(1)[0]))
            assert result.iteration_time > 0
            # ... and can attach its own store afterwards.
            clone.attach_store(store_dir)
            assert clone.store is not None
            clone.close()
