"""Tests for the prediction-service layer: structural signatures, the
artifact cache, parallel batch evaluation and search integration."""

from __future__ import annotations

import pytest

from backend_conformance import assert_results_identical
from repro.framework.recipe import STRUCTURAL_KNOBS, TrainingRecipe
from repro.search import MayaSearch, MayaTrialEvaluator, TrialStatus
from repro.search.space import default_search_space
from repro.service import ArtifactCache, PredictionService
from repro.workloads.job import TransformerTrainingJob
from repro.workloads.models import get_transformer


@pytest.fixture()
def service(v100_cluster):
    return PredictionService(cluster=v100_cluster,
                             estimator_mode="analytical")


def _job(model, cluster, recipe, batch=16):
    return TransformerTrainingJob(model, recipe, cluster,
                                  global_batch_size=batch)


class TestStructuralSignatures:
    def test_compiled_is_non_structural(self, basic_recipe):
        variant = basic_recipe.replace(compiled=True)
        assert basic_recipe.structural_signature() == variant.structural_signature()
        assert basic_recipe.signature() != variant.signature()

    @pytest.mark.parametrize("knob,value", [
        ("tensor_parallel", 4),
        ("pipeline_parallel", 4),
        ("microbatch_multiplier", 4),
        ("activation_recomputation", True),
        ("sequence_parallelism", True),
        ("distributed_optimizer", True),
        ("zero_stage", 2),
        ("offload", True),
        ("dtype", "bfloat16"),
    ])
    def test_structural_knobs_change_signature(self, basic_recipe, knob, value):
        variant = basic_recipe.replace(**{knob: value})
        assert basic_recipe.structural_signature() != variant.structural_signature()

    def test_structural_knobs_cover_all_but_compiled(self):
        data = TrainingRecipe().to_dict()
        assert set(STRUCTURAL_KNOBS) == set(data) - {"compiled"}

    def test_job_signature_includes_workload_shape(self, tiny_model,
                                                   v100_cluster, basic_recipe):
        job_a = _job(tiny_model, v100_cluster, basic_recipe, batch=16)
        job_b = _job(tiny_model, v100_cluster, basic_recipe, batch=32)
        assert job_a.structural_signature() != job_b.structural_signature()
        other_model = get_transformer("gpt-small")
        job_c = _job(other_model, v100_cluster, basic_recipe, batch=16)
        assert job_a.structural_signature() != job_c.structural_signature()
        job_d = _job(tiny_model, v100_cluster, basic_recipe, batch=16)
        assert job_a.structural_signature() == job_d.structural_signature()

    def test_structurally_equal_jobs_collate_identically(self, tiny_model,
                                                         v100_cluster,
                                                         basic_recipe,
                                                         service):
        job_a = _job(tiny_model, v100_cluster, basic_recipe)
        job_b = _job(tiny_model, v100_cluster,
                     basic_recipe.replace(compiled=True))
        content_a = service.pipeline.emulate(job_a).collated.content_signature()
        content_b = service.pipeline.emulate(job_b).collated.content_signature()
        assert content_a == content_b


class TestArtifactCache:
    def test_prediction_hit_and_miss_counts(self, tiny_model, v100_cluster,
                                            basic_recipe, service):
        job = _job(tiny_model, v100_cluster, basic_recipe)
        first = service.predict(job)
        assert first.metadata["service_cache"] == "miss"
        assert service.stats.prediction_misses == 1
        assert service.stats.artifact_misses == 1

        again = service.predict(_job(tiny_model, v100_cluster, basic_recipe))
        assert again.metadata["service_cache"] == "prediction"
        assert service.stats.prediction_hits == 1
        # 3 lookups total (prediction miss + artifact miss, then prediction
        # hit), one of them served from the cache.
        assert service.stats.hit_rate == pytest.approx(1 / 3)
        assert 0.0 <= service.stats.hit_rate <= 1.0

    def test_structural_hit_skips_emulation_only(self, tiny_model,
                                                 v100_cluster, basic_recipe,
                                                 service):
        cold = service.predict(_job(tiny_model, v100_cluster, basic_recipe))
        variant = service.predict(
            _job(tiny_model, v100_cluster, basic_recipe.replace(compiled=True)))
        assert variant.metadata["service_cache"] == "artifacts"
        assert service.stats.artifact_hits == 1
        # Emulation + collation were reused (zero cost), estimation and
        # simulation re-ran.
        assert variant.stage_times["emulation"] == 0.0
        assert variant.stage_times["collation"] == 0.0
        assert variant.stage_times["simulation"] > 0.0
        # The non-structural knob cannot change the prediction.
        assert variant.iteration_time == cold.iteration_time
        assert variant.peak_memory_bytes == cold.peak_memory_bytes

    def test_cached_prediction_identical_to_cold(self, tiny_model,
                                                 v100_cluster, basic_recipe):
        cold_service = PredictionService(cluster=v100_cluster,
                                         estimator_mode="analytical",
                                         enable_cache=False,
                                         share_provider=False)
        warm_service = PredictionService(cluster=v100_cluster,
                                         estimator_mode="analytical")
        job = lambda: _job(tiny_model, v100_cluster, basic_recipe)  # noqa: E731
        cold = cold_service.predict(job())
        warm_first = warm_service.predict(job())
        warm_cached = warm_service.predict(job())
        for result in (warm_first, warm_cached):
            assert result.iteration_time == cold.iteration_time
            assert result.peak_memory_bytes == cold.peak_memory_bytes
            assert result.oom == cold.oom

    def test_cached_results_are_isolated_copies(self, tiny_model, v100_cluster,
                                                basic_recipe, service):
        job = _job(tiny_model, v100_cluster, basic_recipe)
        first = service.predict(job)
        first.stage_times["simulation"] = -1.0
        first.metadata["tampered"] = True
        again = service.predict(_job(tiny_model, v100_cluster, basic_recipe))
        # A prediction-level hit ran no stages, so it reports none -- and in
        # particular not the tampered copy of the first caller's dict.
        assert again.stage_times == {}
        assert "tampered" not in again.metadata

    def test_eviction_keeps_cache_bounded(self, tiny_model, v100_cluster):
        cache = ArtifactCache(max_entries=2)
        service = PredictionService(cluster=v100_cluster,
                                    estimator_mode="analytical", cache=cache)
        recipes = [TrainingRecipe(tensor_parallel=tp, pipeline_parallel=pp,
                                  dtype="float16")
                   for tp, pp in ((1, 1), (2, 1), (1, 2), (2, 2))]
        for recipe in recipes:
            service.predict(_job(tiny_model, v100_cluster, recipe))
        assert len(cache) <= 4  # two entries per level

    def test_invalid_jobs_bypass_cache(self, tiny_model, v100_cluster, service):
        bad = TrainingRecipe(tensor_parallel=3, dtype="float16")
        result = service.predict(_job(tiny_model, v100_cluster, bad))
        assert not result.succeeded
        assert service.stats.lookups == 0

    def test_oom_verdict_cached(self, v100_cluster, service):
        # A model far too large for a single V100 OOMs during emulation;
        # the verdict must be identical when served from the cache.
        huge = get_transformer("gpt3-18.4b")
        recipe = TrainingRecipe(dtype="float16")
        cold = service.predict(_job(huge, v100_cluster, recipe, batch=8))
        cached = service.predict(_job(huge, v100_cluster, recipe, batch=8))
        assert cold.oom and cached.oom
        assert cached.metadata["service_cache"] == "prediction"


class TestSyncJournal:
    """Artifact-cache sync journal used by the persistent backend."""

    def test_delta_since_tracks_puts(self):
        cache = ArtifactCache(max_entries=8)
        cache.put_artifacts(("k1",), "a1")
        cache.put_artifacts(("k2",), "a2")
        assert cache.sync_epoch == 2
        epoch, entries = cache.delta_since(0)
        assert epoch == 2
        assert [key for key, _ in entries] == [("k1",), ("k2",)]
        _, tail = cache.delta_since(1)
        assert [key for key, _ in tail] == [("k2",)]
        assert cache.delta_since(2) == (2, [])

    def test_unserviceable_epochs_refused(self):
        cache = ArtifactCache()
        cache.put_artifacts(("k",), "a")
        assert cache.delta_since(-1) is None
        assert cache.delta_since(99) is None

    def test_eviction_boundary_forces_resync(self):
        # A worker synced at the exact pre-eviction epoch saw the evicted
        # entry, so its delta request must be refused too (regression for
        # an off-by-one that served it a delta).
        cache = ArtifactCache(max_entries=2)
        cache.put_artifacts(("k1",), "a1")
        cache.put_artifacts(("k2",), "a2")
        assert cache.delta_since(2) == (2, [])
        cache.put_artifacts(("k3",), "a3")  # evicts k1
        assert cache.delta_since(2) is None
        assert cache.delta_since(3) == (3, [])
        epoch, snapshot = cache.snapshot()
        assert epoch == 3
        assert [key for key, _ in snapshot] == [("k2",), ("k3",)]

    def test_reput_of_live_key_at_capacity_evicts_nothing(self):
        # Re-putting a key that is already live replaces its value in
        # place.  At capacity the old code ran eviction anyway, dropping an
        # unrelated victim and bumping the eviction epoch -- which forced
        # every pooled worker into a needless full-snapshot resync
        # (regression for an unconditional _evict_artifacts on re-put).
        cache = ArtifactCache(max_entries=2)
        cache.put_artifacts(("k1",), "a1")
        cache.put_artifacts(("k2",), "a2")
        cache.put_artifacts(("k1",), "a1-prime")  # re-put at capacity
        assert cache.peek_artifacts(("k1",)) == "a1-prime"
        assert cache.peek_artifacts(("k2",)) == "a2"  # not evicted
        # A worker synced before the re-put still gets a delta, not a
        # refused epoch: no full resync is forced.
        epoch, entries = cache.delta_since(2)
        assert epoch == 3
        assert [key for key, _ in entries] == [("k1",)]
        # A genuinely new key at capacity still evicts (FIFO victim by
        # insertion order, which a re-put does not refresh: k1).
        cache.put_artifacts(("k3",), "a3")
        assert cache.peek_artifacts(("k1",)) is None
        assert cache.delta_since(3) is None

    def test_clear_refuses_all_prior_epochs(self):
        cache = ArtifactCache()
        cache.put_artifacts(("k",), "a")
        cache.clear()
        assert cache.delta_since(1) is None
        assert cache.delta_since(cache.sync_epoch) is None

    def test_apply_full_replaces_table_without_touching_stats(self):
        cache = ArtifactCache()
        cache.put_artifacts(("stale",), "s")
        cache.apply_artifact_delta([(("fresh",), "f")], full=True)
        assert cache.peek_artifacts(("stale",)) is None
        assert cache.peek_artifacts(("fresh",)) == "f"
        assert cache.stats.lookups == 0

    def test_apply_delta_mirrors_parent_without_local_eviction(self):
        # Worker-side capacity eviction could pick a different victim than
        # the parent (insertion order vs. put order), turning a serial-run
        # hit into a worker miss near max_entries.  Applying a delta must
        # mirror the parent's table verbatim; the parent alone polices
        # capacity (regression for an _evict_artifacts call here).
        cache = ArtifactCache(max_entries=2)
        cache.apply_artifact_delta(
            [(("k1",), "a1"), (("k2",), "a2"), (("k3",), "a3")])
        assert cache.peek_artifacts(("k1",)) == "a1"
        assert cache.peek_artifacts(("k2",)) == "a2"
        assert cache.peek_artifacts(("k3",)) == "a3"

    def test_drop_predictions_clears_only_prediction_level(self):
        cache = ArtifactCache()
        cache.put_artifacts(("art",), "a")
        cache.put_prediction(("pred",), "p")
        cache.drop_predictions()
        assert cache.peek_prediction(("pred",)) is None
        assert cache.peek_artifacts(("art",)) == "a"
        assert cache.stats.lookups == 0


class TestParallelEvaluation:
    def test_predict_many_matches_serial(self, tiny_model, v100_cluster):
        recipes = [
            TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                           microbatch_multiplier=2, dtype="float16"),
            TrainingRecipe(tensor_parallel=1, pipeline_parallel=2,
                           microbatch_multiplier=2, dtype="float16"),
            TrainingRecipe(tensor_parallel=2, pipeline_parallel=1,
                           microbatch_multiplier=2, dtype="float16"),
        ]
        serial = PredictionService(cluster=v100_cluster,
                                   estimator_mode="analytical",
                                   enable_cache=False, share_provider=False)
        parallel = PredictionService(cluster=v100_cluster,
                                     estimator_mode="analytical",
                                     max_workers=2)
        serial_results = [serial.predict(_job(tiny_model, v100_cluster, r))
                          for r in recipes]
        parallel_results = parallel.predict_many(
            [_job(tiny_model, v100_cluster, r) for r in recipes])
        assert len(parallel_results) == len(serial_results)
        for cold, batched in zip(serial_results, parallel_results):
            assert batched.iteration_time == cold.iteration_time
            assert batched.peak_memory_bytes == cold.peak_memory_bytes
            assert batched.oom == cold.oom

    def test_predict_many_deduplicates_in_flight(self, tiny_model,
                                                 v100_cluster, basic_recipe):
        service = PredictionService(cluster=v100_cluster,
                                    estimator_mode="analytical",
                                    max_workers=2)
        jobs = [_job(tiny_model, v100_cluster, basic_recipe)
                for _ in range(4)]
        results = service.predict_many(jobs)
        assert service.stats.prediction_misses == 1
        assert service.stats.prediction_hits == 3
        assert len({result.iteration_time for result in results}) == 1


class TestSearchIntegration:
    def _evaluator(self, cluster, **kwargs):
        return MayaTrialEvaluator(get_transformer("gpt-small"), cluster,
                                  global_batch_size=32,
                                  estimator_mode="analytical", **kwargs)

    def test_search_reuses_service_cache(self, v100_cluster):
        evaluator = self._evaluator(v100_cluster)
        space = default_search_space(
            tensor_parallel=(1, 2), pipeline_parallel=(1, 2),
            microbatch_multiplier=(1, 2), virtual_stages=(1,),
            activation_recomputation=(False,),
            sequence_parallelism=(False,),
            distributed_optimizer=(False,), dtype="float16")
        search = MayaSearch(evaluator, space=space, algorithm="random",
                            world_size=8, global_batch_size=32, num_layers=4,
                            num_heads=8, gpus_per_node=8,
                            early_stop_patience=10_000, seed=1)
        result = search.run(budget=60)
        # 60 random samples over an 8-point space must re-propose configs;
        # the service resolves the duplicates from its cross-trial cache.
        assert result.cache_stats["prediction_hits"] > 0
        assert result.status_counts["cached"] > 0
        assert (result.status_counts["executed"]
                == result.cache_stats["prediction_misses"])
        statuses = {trial.status for trial in result.history}
        assert statuses <= {TrialStatus.EXECUTED, TrialStatus.SKIPPED}

    def test_cold_and_warm_searches_agree(self, v100_cluster):
        space = default_search_space(
            tensor_parallel=(1, 2), pipeline_parallel=(1, 2),
            microbatch_multiplier=(1, 2), virtual_stages=(1,),
            activation_recomputation=(True, False),
            sequence_parallelism=(False,),
            distributed_optimizer=(False,), dtype="float16")

        def run(**kwargs):
            evaluator = self._evaluator(v100_cluster, **kwargs)
            search = MayaSearch(evaluator, space=space, algorithm="cma",
                                world_size=8, global_batch_size=32,
                                num_layers=4, num_heads=8, gpus_per_node=8,
                                seed=7)
            return search.run(budget=40)

        warm = run(enable_cache=True, max_workers=2)
        cold = run(enable_cache=False, share_provider=False, max_workers=1)
        assert warm.best is not None and cold.best is not None
        assert warm.best.recipe == cold.best.recipe
        assert warm.best.iteration_time == cold.best.iteration_time


class TestEvaluationBackends:
    """Backend-specific regression tests (the full interchangeability
    contract lives in tests/test_backend_conformance.py, built on the
    shared harness in tests/backend_conformance.py)."""

    RECIPES = [
        TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                       microbatch_multiplier=2, dtype="float16"),
        TrainingRecipe(tensor_parallel=1, pipeline_parallel=2,
                       microbatch_multiplier=2, dtype="float16"),
        TrainingRecipe(tensor_parallel=2, pipeline_parallel=1,
                       microbatch_multiplier=2, dtype="float16"),
        TrainingRecipe(tensor_parallel=1, pipeline_parallel=1,
                       microbatch_multiplier=1, dtype="float16"),
    ]

    def _jobs(self, model, cluster):
        return [_job(model, cluster, recipe) for recipe in self.RECIPES]

    def _run(self, model, cluster, backend, workers=2):
        service = PredictionService(cluster=cluster,
                                    estimator_mode="analytical",
                                    backend=backend, max_workers=workers)
        return service, service.predict_many(self._jobs(model, cluster))

    def test_unknown_backend_rejected(self, v100_cluster):
        with pytest.raises(ValueError):
            PredictionService(cluster=v100_cluster, backend="mpi")
        service = PredictionService(cluster=v100_cluster,
                                    estimator_mode="analytical")
        with pytest.raises(ValueError):
            service.backend = "mpi"

    @pytest.mark.parametrize("backend", ["thread", "process", "persistent"])
    def test_backend_results_byte_identical_to_serial(self, tiny_model,
                                                      v100_cluster, backend):
        _, reference = self._run(tiny_model, v100_cluster, "serial",
                                 workers=1)
        service, results = self._run(tiny_model, v100_cluster, backend)
        service.close()
        assert_results_identical(reference, results, backend=backend)
        assert service.throughput_stats()["trials"] == len(self.RECIPES)

    def test_process_backend_replays_serial_cache_accounting(self, tiny_model,
                                                             v100_cluster):
        serial_service, _ = self._run(tiny_model, v100_cluster, "serial",
                                      workers=1)
        process_service, _ = self._run(tiny_model, v100_cluster, "process")
        assert process_service.cache_stats() == serial_service.cache_stats()

    def test_process_backend_merges_worker_artifacts(self, tiny_model,
                                                     v100_cluster):
        service, results = self._run(tiny_model, v100_cluster, "process")
        assert all(r.metadata["service_cache"] == "miss" for r in results)
        # Freshly emulated artifacts were shipped back as JSON traces and
        # merged: every artifact and prediction key now resolves locally.
        for job in self._jobs(tiny_model, v100_cluster):
            assert service.cache.peek_artifacts(
                service._artifact_key(job)) is not None
            assert service.cache.peek_prediction(
                service._prediction_key(job)) is not None
        # A second batch is served entirely from the parent cache.
        again = service.predict_many(self._jobs(tiny_model, v100_cluster))
        assert all(r.metadata["service_cache"] == "prediction" for r in again)
        for first, second in zip(results, again):
            assert second.iteration_time == first.iteration_time

    def test_process_backend_defers_structural_siblings(self, tiny_model,
                                                        v100_cluster):
        # Two jobs differing only in a non-structural knob share emulation
        # artifacts.  Forked workers can't share in-flight work, so the
        # sibling must be held back and resolved on the parent from the
        # merged artifacts -- matching the serial backend's accounting
        # (one miss + one artifact hit, not two cold emulations).
        def batch(cluster):
            base = self.RECIPES[0]
            return [_job(tiny_model, cluster, base),
                    _job(tiny_model, cluster, base.replace(compiled=True))]

        serial = PredictionService(cluster=v100_cluster,
                                   estimator_mode="analytical",
                                   backend="serial")
        process = PredictionService(cluster=v100_cluster,
                                    estimator_mode="analytical",
                                    backend="process", max_workers=2)
        serial_results = serial.predict_many(batch(v100_cluster))
        process_results = process.predict_many(batch(v100_cluster))
        assert process.cache_stats() == serial.cache_stats()
        assert process.stats.artifact_hits == 1
        for a, b in zip(serial_results, process_results):
            assert b.iteration_time == a.iteration_time
            assert b.metadata["service_cache"] == a.metadata["service_cache"]

    def test_merged_artifacts_replay_identically(self, tiny_model,
                                                 v100_cluster):
        # Artifacts rebuilt from a worker's JSON trace must predict exactly
        # like locally emulated ones (estimation + simulation re-run on the
        # merged artifacts for a structural sibling).
        service, _ = self._run(tiny_model, v100_cluster, "process")
        local = PredictionService(cluster=v100_cluster,
                                  estimator_mode="analytical")
        sibling = self.RECIPES[0].replace(compiled=True)
        merged = service.predict(_job(tiny_model, v100_cluster, sibling))
        reference = local.predict(_job(tiny_model, v100_cluster,
                                       self.RECIPES[0]))
        assert merged.metadata["service_cache"] == "artifacts"
        assert merged.iteration_time == reference.iteration_time
        assert merged.peak_memory_bytes == reference.peak_memory_bytes

    def test_jittered_testbed_identical_across_backends(self, v100_cluster):
        # evaluate_setup routes testbed measurements (jittered ground-truth
        # provider) through the shared service cache; parallel process
        # evaluation must not change a single measured number.
        from repro.analysis.experiments import candidate_recipes, evaluate_setup

        model = get_transformer("gpt-tiny")
        recipes = candidate_recipes(model, v100_cluster, 16, limit=3)
        serial = evaluate_setup("serial", model, v100_cluster, 16, recipes,
                                estimator_mode="analytical",
                                include_baselines=False)
        for backend in ("process", "persistent"):
            parallel = evaluate_setup(backend, model, v100_cluster, 16,
                                      recipes, estimator_mode="analytical",
                                      include_baselines=False,
                                      backend=backend, jobs=2)
            assert len(parallel.evaluations) == len(serial.evaluations)
            for a, b in zip(serial.evaluations, parallel.evaluations):
                assert b.actual.iteration_time == a.actual.iteration_time
                assert b.actual.total_time == a.actual.total_time
                assert b.maya.iteration_time == a.maya.iteration_time
                assert b.maya.peak_memory_bytes == a.maya.peak_memory_bytes

    def test_search_identical_across_backends(self, v100_cluster):
        space = default_search_space(
            tensor_parallel=(1, 2), pipeline_parallel=(1, 2),
            microbatch_multiplier=(1, 2), virtual_stages=(1,),
            activation_recomputation=(False,),
            sequence_parallelism=(False,),
            distributed_optimizer=(False,), dtype="float16")

        def run(backend):
            with self._evaluator(v100_cluster, backend=backend,
                                 max_workers=2) as evaluator:
                search = MayaSearch(evaluator, space=space, algorithm="cma",
                                    world_size=8, global_batch_size=32,
                                    num_layers=4, num_heads=8,
                                    gpus_per_node=8, seed=11)
                return search.run(budget=40)

        serial = run("serial")
        assert serial.best is not None
        for backend in ("process", "thread", "persistent"):
            other = run(backend)
            assert other.best.recipe == serial.best.recipe
            assert other.best.iteration_time == serial.best.iteration_time
            assert (len(other.history) == len(serial.history))

    def _evaluator(self, cluster, **kwargs):
        return MayaTrialEvaluator(get_transformer("gpt-small"), cluster,
                                  global_batch_size=32,
                                  estimator_mode="analytical", **kwargs)
