"""Shared fixtures for the test suite.

Tests use tiny models and small clusters so the full suite runs in a couple
of minutes on a CPU-only machine; the benchmark suite exercises the
paper-scale configurations.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import MayaPipeline
from repro.framework.recipe import TrainingRecipe
from repro.hardware.cluster import get_cluster
from repro.testbed import Testbed
from repro.workloads.job import TransformerTrainingJob, VisionTrainingJob
from repro.workloads.models import get_convnet, get_transformer


@pytest.fixture(scope="session")
def v100_cluster():
    return get_cluster("v100-8")


@pytest.fixture(scope="session")
def h100_cluster():
    return get_cluster("h100-16")


@pytest.fixture(scope="session")
def a40_cluster():
    return get_cluster("a40-8")


@pytest.fixture(scope="session")
def tiny_model():
    return get_transformer("gpt-tiny")


@pytest.fixture(scope="session")
def small_model():
    return get_transformer("gpt-small")


@pytest.fixture(scope="session")
def tiny_convnet():
    return get_convnet("convnet-tiny")


@pytest.fixture()
def basic_recipe():
    return TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                          microbatch_multiplier=2, dtype="float16")


@pytest.fixture()
def tiny_job(tiny_model, v100_cluster, basic_recipe):
    return TransformerTrainingJob(tiny_model, basic_recipe, v100_cluster,
                                  global_batch_size=16)


@pytest.fixture(scope="session")
def analytical_pipeline(v100_cluster):
    return MayaPipeline(v100_cluster, estimator_mode="analytical")


@pytest.fixture(scope="session")
def oracle_pipeline(v100_cluster):
    return MayaPipeline(v100_cluster, estimator_mode="oracle")


@pytest.fixture(scope="session")
def testbed(v100_cluster):
    return Testbed(v100_cluster)


def make_job(model, cluster, recipe, global_batch_size=16, iterations=1):
    """Helper used across test modules to build transformer jobs."""
    return TransformerTrainingJob(model, recipe, cluster,
                                  global_batch_size=global_batch_size,
                                  iterations=iterations)
