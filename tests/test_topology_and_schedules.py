"""Tests for the 3D parallel topology and pipeline schedules."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework.schedules import (
    PipelineAction,
    build_schedule,
    count_compute_actions,
    gpipe_schedule,
    interleaved_1f1b_schedule,
    max_in_flight_microbatches,
    one_f_one_b_schedule,
)
from repro.framework.topology import ParallelTopology


def _topology_strategy():
    return st.tuples(
        st.sampled_from([1, 2, 4, 8]),
        st.sampled_from([1, 2, 4]),
        st.sampled_from([1, 2, 4]),
    ).map(lambda tpl: ParallelTopology(
        world_size=tpl[0] * tpl[1] * tpl[2] * 2,
        tensor_parallel=tpl[0],
        pipeline_parallel=tpl[1],
    ))


class TestParallelTopology:
    def test_megatron_rank_ordering(self):
        topo = ParallelTopology(world_size=16, tensor_parallel=2,
                                pipeline_parallel=2)
        assert topo.data_parallel == 4
        assert topo.coords_of(0) == (0, 0, 0)
        assert topo.coords_of(1) == (0, 0, 1)
        assert topo.coords_of(2) == (0, 1, 0)
        assert topo.coords_of(4) == (1, 0, 0)

    def test_invalid_world_size_rejected(self):
        with pytest.raises(ValueError):
            ParallelTopology(world_size=10, tensor_parallel=4,
                             pipeline_parallel=1)

    def test_groups_have_expected_sizes(self):
        topo = ParallelTopology(world_size=32, tensor_parallel=4,
                                pipeline_parallel=2)
        assert len(topo.tensor_parallel_group(0)) == 4
        assert len(topo.pipeline_parallel_group(0)) == 2
        assert len(topo.data_parallel_group(0)) == 4

    def test_tp_groups_are_contiguous(self):
        topo = ParallelTopology(world_size=16, tensor_parallel=4,
                                pipeline_parallel=2)
        assert topo.tensor_parallel_group(5) == [4, 5, 6, 7]

    def test_pipeline_neighbours(self):
        topo = ParallelTopology(world_size=8, tensor_parallel=2,
                                pipeline_parallel=2)
        assert topo.is_first_stage(0)
        assert topo.is_last_stage(2)
        assert topo.next_stage_rank(0) == 2
        assert topo.prev_stage_rank(2) == 0

    def test_unique_ranks_one_per_stage(self):
        topo = ParallelTopology(world_size=64, tensor_parallel=8,
                                pipeline_parallel=8)
        assert topo.unique_ranks() == [topo.rank_of(0, pp, 0)
                                       for pp in range(8)]
        assert len(topo.unique_ranks()) == 8

    def test_representative_preserves_stage(self):
        topo = ParallelTopology(world_size=32, tensor_parallel=2,
                                pipeline_parallel=4)
        for rank in range(32):
            rep = topo.representative_of(rank)
            assert topo.coords_of(rep)[1] == topo.coords_of(rank)[1]

    @given(_topology_strategy())
    @settings(max_examples=30, deadline=None)
    def test_rank_coordinate_bijection(self, topo):
        seen = set()
        for rank in range(topo.world_size):
            coords = topo.coords_of(rank)
            assert topo.rank_of(*coords) == rank
            seen.add(coords)
        assert len(seen) == topo.world_size

    @given(_topology_strategy())
    @settings(max_examples=30, deadline=None)
    def test_groups_partition_the_world(self, topo):
        for groups in (topo.all_tensor_parallel_groups(),
                       topo.all_pipeline_parallel_groups(),
                       topo.all_data_parallel_groups()):
            flat = [rank for group in groups for rank in group]
            assert sorted(flat) == list(range(topo.world_size))


def _assert_schedule_well_formed(actions, num_microbatches, num_chunks=1):
    counts = count_compute_actions(actions)
    assert counts["forward"] == num_microbatches * num_chunks
    assert counts["backward"] == num_microbatches * num_chunks
    # Every (chunk, microbatch) backward must come after its forward.
    done_forward = set()
    for action in actions:
        if action.kind == "forward":
            done_forward.add((action.chunk, action.microbatch))
        elif action.kind == "backward":
            assert (action.chunk, action.microbatch) in done_forward


class TestSchedules:
    def test_single_stage_1f1b_alternates(self):
        actions = one_f_one_b_schedule(0, 1, 4)
        kinds = [action.kind for action in actions]
        assert kinds == ["forward", "backward"] * 4

    def test_1f1b_warmup_depth(self):
        actions = one_f_one_b_schedule(0, 4, 8)
        assert max_in_flight_microbatches(actions) == 4
        last_stage = one_f_one_b_schedule(3, 4, 8)
        assert max_in_flight_microbatches(last_stage) == 1

    def test_gpipe_keeps_all_microbatches_in_flight(self):
        actions = gpipe_schedule(1, 4, 8)
        assert max_in_flight_microbatches(actions) == 8

    def test_first_stage_has_no_forward_recv(self):
        actions = one_f_one_b_schedule(0, 4, 4)
        assert all(action.kind != "recv_fwd" for action in actions)

    def test_last_stage_has_no_forward_send(self):
        actions = one_f_one_b_schedule(3, 4, 4)
        assert all(action.kind != "send_fwd" for action in actions)

    def test_middle_stage_transfer_counts(self):
        actions = one_f_one_b_schedule(1, 4, 6)
        kinds = [action.kind for action in actions]
        assert kinds.count("recv_fwd") == 6
        assert kinds.count("send_fwd") == 6
        assert kinds.count("recv_bwd") == 6
        assert kinds.count("send_bwd") == 6

    def test_interleaved_reduces_to_1f1b_for_one_chunk(self):
        assert interleaved_1f1b_schedule(1, 4, 8, 1) == \
            one_f_one_b_schedule(1, 4, 8)

    def test_interleaved_covers_all_chunks(self):
        actions = interleaved_1f1b_schedule(0, 2, 4, num_chunks=2)
        _assert_schedule_well_formed(actions, num_microbatches=4, num_chunks=2)
        chunks = {action.chunk for action in actions if action.kind == "forward"}
        assert chunks == {0, 1}

    def test_interleaved_wraps_around_pipeline(self):
        actions = interleaved_1f1b_schedule(0, 2, 2, num_chunks=2)
        wrap_recv = [action for action in actions
                     if action.kind == "recv_fwd" and action.chunk == 1]
        assert wrap_recv and all(action.peer == 1 for action in wrap_recv)

    def test_build_schedule_dispatch(self):
        assert build_schedule(0, 2, 4, kind="gpipe") == gpipe_schedule(0, 2, 4)
        assert build_schedule(0, 2, 4, virtual_stages=2) == \
            interleaved_1f1b_schedule(0, 2, 4, 2)
        with pytest.raises(ValueError):
            build_schedule(0, 2, 4, kind="dualpipe-unknown")

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            one_f_one_b_schedule(4, 4, 2)
        with pytest.raises(ValueError):
            one_f_one_b_schedule(0, 0, 2)
        with pytest.raises(ValueError):
            one_f_one_b_schedule(0, 2, 0)

    @given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_1f1b_well_formed_for_any_rank(self, pp, microbatches, chunks):
        pp = max(pp, 1)
        for rank in range(pp):
            if chunks > 1 and pp > 1:
                actions = interleaved_1f1b_schedule(rank, pp, microbatches * pp,
                                                    chunks)
                _assert_schedule_well_formed(actions, microbatches * pp, chunks)
            else:
                actions = one_f_one_b_schedule(rank, pp, microbatches)
                _assert_schedule_well_formed(actions, microbatches)

    @given(st.integers(2, 8), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_later_stages_hold_fewer_microbatches(self, pp, mult):
        microbatches = mult * pp
        peaks = [max_in_flight_microbatches(one_f_one_b_schedule(rank, pp,
                                                                 microbatches))
                 for rank in range(pp)]
        assert peaks == sorted(peaks, reverse=True)
