"""Structured host-delay model: base/jitter split, sim-time materialization,
fold engagement on default jittered traces, and legacy-trace compatibility."""

from __future__ import annotations

import copy

import pytest

from repro.core.collator import (
    TraceCollator,
    find_iteration_windows,
    windows_are_periodic,
)
from repro.core.emulator import DeviceEmulator, EmulationSession
from repro.core.pipeline import MayaPipeline
from repro.core.simulator.engine import ClusterSimulator, SimulationConfig
from repro.core.trace import JobTrace, TraceEvent, TraceEventKind, WorkerTrace
from repro.cuda.cublas import CublasHandle
from repro.framework.recipe import TrainingRecipe
from repro.hardware.cluster import get_cluster
from repro.hardware.gpu_specs import get_gpu
from repro.hardware.host_model import (
    HOST_MODEL_METADATA_KEY,
    HostModel,
    host_delay_materializer,
)
from repro.workloads.job import TransformerTrainingJob
from repro.workloads.models import get_transformer


def _emulate(cluster, iterations, host_model=None, batch=16):
    job = TransformerTrainingJob(
        get_transformer("gpt-tiny"),
        TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                       microbatch_multiplier=2, dtype="float16"),
        cluster, global_batch_size=batch, iterations=iterations)
    session = EmulationSession(cluster, host_model=host_model)
    emulated = session.run(job.worker_fn, ranks=job.unique_ranks(),
                           world_size=job.world_size)
    collated = TraceCollator().collate(emulated.job_trace,
                                       topology=job.topology())
    return job, emulated.job_trace, collated


def _legacy_job_trace(job_trace: JobTrace, host: HostModel) -> JobTrace:
    """Pre-refactor rendering of ``job_trace``: jitter baked into durations."""
    legacy = copy.deepcopy(job_trace)
    for trace in legacy.workers.values():
        trace.metadata.pop(HOST_MODEL_METADATA_KEY, None)
        for event in trace.events:
            if event.kind is TraceEventKind.HOST_DELAY:
                seq = event.params.pop("seq")
                event.duration = host.dispatch_cost(
                    event.params["call_class"], seq)
                event.__dict__.pop("_signature_cache", None)
    return legacy


class TestHostModelSplit:
    def test_dispatch_cost_is_base_times_jitter(self):
        host = HostModel()
        for call_class in ("gemm", "collective", "sync", "dataloader"):
            for seq in (1, 17, 40_001):
                assert host.dispatch_cost(call_class, seq) == \
                    host.base_cost(call_class) * host.jitter_factor(call_class,
                                                                    seq)

    def test_base_cost_is_deterministic_and_scaled(self):
        slow = HostModel(name="x", speed_factor=2.0)
        fast = HostModel(name="x", speed_factor=1.0)
        assert slow.base_cost("gemm") == pytest.approx(
            2.0 * fast.base_cost("gemm"))

    def test_custom_costs_without_misc_fall_back(self):
        # Regression: this used to raise KeyError("misc").
        host = HostModel(dispatch_costs={"kernel_launch": 1.0e-6})
        assert host.base_cost("query") > 0.0
        assert host.dispatch_cost("query", 3) > 0.0
        # A custom "misc" entry still wins for unknown classes.
        custom = HostModel(dispatch_costs={"misc": 7.0e-6}, jitter=0.0,
                           name="custom-misc")
        assert custom.dispatch_cost("query", 3) == pytest.approx(7.0e-6)

    def test_python_overhead_removed(self):
        # Dead API deleted rather than left untested (no call sites).
        assert not hasattr(HostModel, "python_overhead")


class TestStructuredTraceSchema:
    def _trace(self, host_model=None):
        emulator = DeviceEmulator(rank=0, device=0, gpu=get_gpu("V100"),
                                  host_model=host_model)
        cublas = CublasHandle(emulator.runtime)
        cublas.hgemm(128, 128, 128)
        emulator.runtime.launch_kernel("k", "softmax", {"bytes": 64.0})
        return emulator.finalize()

    def test_events_record_base_cost_class_and_seq(self):
        host = HostModel()
        trace = self._trace(host_model=host)
        delays = [e for e in trace.events
                  if e.kind is TraceEventKind.HOST_DELAY]
        assert delays
        for event in delays:
            assert "seq" in event.params
            assert event.duration == host.base_cost(
                event.params["call_class"])
        seqs = [event.params["seq"] for event in delays]
        assert seqs == sorted(seqs)
        assert trace.metadata[HOST_MODEL_METADATA_KEY] == {
            "name": host.name, "jitter": host.jitter}

    def test_materializer_reproduces_dispatch_cost(self):
        host = HostModel()
        trace = self._trace(host_model=host)
        materialize = host_delay_materializer(trace.metadata)
        for event in trace.events:
            if event.kind is TraceEventKind.HOST_DELAY:
                assert materialize(event) == host.dispatch_cost(
                    event.params["call_class"], event.params["seq"])

    def test_host_delay_total_matches_materialized_time(self):
        host = HostModel()
        trace = self._trace(host_model=host)
        expected = sum(host.dispatch_cost(e.params["call_class"],
                                          e.params["seq"])
                       for e in trace.events
                       if e.kind is TraceEventKind.HOST_DELAY)
        assert trace.host_delay_total() == pytest.approx(expected)

    def test_legacy_events_materialize_by_value(self):
        trace = WorkerTrace(rank=0, device=0)
        trace.append(TraceEvent(kind=TraceEventKind.HOST_DELAY,
                                api="hostDelay", device=0, duration=0.5))
        materialize = host_delay_materializer(trace.metadata)
        assert materialize(trace.events[0]) == 0.5
        assert trace.host_delay_total() == pytest.approx(0.5)

    def test_json_roundtrip_preserves_structured_schema(self):
        trace = self._trace()
        restored = WorkerTrace.from_json(trace.to_json())
        assert restored.metadata[HOST_MODEL_METADATA_KEY] == \
            trace.metadata[HOST_MODEL_METADATA_KEY]
        assert [e.to_dict() for e in restored.events] == \
            [e.to_dict() for e in trace.events]
        assert restored.host_delay_total() == trace.host_delay_total()


class TestSimTimeJitterBitIdentity:
    """Sim-time jitter must reproduce pre-refactor replay bit for bit."""

    @pytest.fixture(scope="class")
    def artifacts(self, v100_cluster):
        host = HostModel()  # default jittered profile
        job, job_trace, collated = _emulate(v100_cluster, iterations=2,
                                            host_model=host)
        legacy = TraceCollator().collate(_legacy_job_trace(job_trace, host),
                                         topology=job.topology())
        pipeline = MayaPipeline(v100_cluster, estimator_mode="analytical")
        return pipeline, job, job_trace, collated, legacy

    @pytest.mark.parametrize("use_annotations", [True, False])
    def test_structured_replay_matches_prejittered_legacy(
            self, v100_cluster, artifacts, use_annotations):
        pipeline, job, _, structured, legacy = artifacts
        ranks = pipeline._simulation_ranks(job)
        config = dict(simulate_ranks=ranks, fold_iterations=False,
                      use_annotations=use_annotations)
        a = ClusterSimulator(v100_cluster, pipeline.make_provider(),
                             SimulationConfig(**config)).simulate(
                                 structured, iterations=2)
        b = ClusterSimulator(v100_cluster, pipeline.make_provider(),
                             SimulationConfig(**config)).simulate(
                                 legacy, iterations=2)
        assert a.total_time == b.total_time
        assert a.markers == b.markers
        for rank in a.rank_reports:
            assert a.rank_reports[rank].host_time == \
                b.rank_reports[rank].host_time
            assert a.rank_reports[rank].finish_time == \
                b.rank_reports[rank].finish_time

    def test_roundtripped_artifacts_replay_identically(self, v100_cluster,
                                                       artifacts):
        # The evaluation backends ship artifacts as JSON traces; the
        # structured schema must survive that round-trip byte-for-byte.
        pipeline, job, job_trace, structured, _ = artifacts
        restored = TraceCollator().collate(
            JobTrace.from_json(job_trace.to_json()),
            topology=job.topology())
        ranks = pipeline._simulation_ranks(job)
        a = ClusterSimulator(v100_cluster, pipeline.make_provider(),
                             SimulationConfig(simulate_ranks=ranks)).simulate(
                                 structured, iterations=2)
        b = ClusterSimulator(v100_cluster, pipeline.make_provider(),
                             SimulationConfig(simulate_ranks=ranks)).simulate(
                                 restored, iterations=2)
        assert a.total_time == b.total_time
        assert a.markers == b.markers


class TestSharedProviderAcrossHostModels:
    def test_annotation_memo_distinguishes_host_models(self, v100_cluster):
        # Regression: rolling signatures skip HOST_DELAY events, so two
        # traces with identical op streams but different host models used
        # to collide in the provider annotation memo once host durations
        # became part of the annotations -- a shared provider would replay
        # the first trace's host delays for the second.
        job_a, _, fast_host = _emulate(v100_cluster, iterations=2,
                                       host_model=HostModel(jitter=0.0))
        _, _, slow_host = _emulate(
            v100_cluster, iterations=2,
            host_model=HostModel(jitter=0.0, speed_factor=2.0))
        assert fast_host.content_signature() != slow_host.content_signature()
        pipeline = MayaPipeline(v100_cluster, estimator_mode="analytical")
        shared = pipeline.make_provider()
        ranks = pipeline._simulation_ranks(job_a)
        config = SimulationConfig(simulate_ranks=ranks, fold_iterations=False)
        reports = {}
        for name, collated in (("fast", fast_host), ("slow", slow_host)):
            reports[name] = ClusterSimulator(
                v100_cluster, shared, config).simulate(collated, iterations=2)
        fresh_slow = ClusterSimulator(
            v100_cluster, pipeline.make_provider(), config).simulate(
                slow_host, iterations=2)
        assert reports["slow"].total_time == fresh_slow.total_time
        assert reports["slow"].total_time != reports["fast"].total_time
        for rank in fresh_slow.rank_reports:
            assert (reports["slow"].rank_reports[rank].host_time
                    == fresh_slow.rank_reports[rank].host_time)


class TestFoldingOnJitteredHost:
    """Folding must engage end-to-end on a default-HostModel trace."""

    ITERATIONS = 8

    @pytest.fixture(scope="class")
    def artifacts(self, v100_cluster):
        job, job_trace, collated = _emulate(v100_cluster,
                                            iterations=self.ITERATIONS)
        pipeline = MayaPipeline(v100_cluster, estimator_mode="analytical")
        return pipeline, job, job_trace, collated

    def test_default_jittered_windows_are_periodic(self, artifacts):
        _, _, _, collated = artifacts
        for trace in collated.traces.values():
            windows = find_iteration_windows(trace)
            assert windows is not None and windows.count == self.ITERATIONS
            assert windows_are_periodic(trace, windows)

    def test_fold_engages_and_stays_within_jitter_bound(self, v100_cluster,
                                                        artifacts):
        pipeline, job, _, collated = artifacts
        provider = pipeline.make_provider()
        ranks = pipeline._simulation_ranks(job)
        folded = ClusterSimulator(
            v100_cluster, provider,
            SimulationConfig(simulate_ranks=ranks)).simulate(
                collated, iterations=self.ITERATIONS)
        full = ClusterSimulator(
            v100_cluster, provider,
            SimulationConfig(simulate_ranks=ranks, use_annotations=False,
                             fold_iterations=False)).simulate(
                collated, iterations=self.ITERATIONS)
        info = folded.metadata.get("iteration_folding")
        assert info is not None, \
            "fold must engage on the default jittered host model"
        assert info["folded_iterations"] == self.ITERATIONS - 4
        assert info["host_jitter_scale"] == HostModel().jitter
        assert folded.metadata["processed_events"] < \
            full.metadata["processed_events"]
        # Documented analytic bound: sqrt(3) * jitter * total base host time.
        bound = info["host_jitter_bound_s"]
        assert bound > 0.0
        assert abs(folded.total_time - full.total_time) <= bound
        assert abs(folded.iteration_time - full.iteration_time) <= bound
        for rank in full.rank_reports:
            assert (full.rank_reports[rank].kernel_count
                    == folded.rank_reports[rank].kernel_count)
            assert (full.rank_reports[rank].collective_count
                    == folded.rank_reports[rank].collective_count)

    def test_legacy_jittered_trace_does_not_fold(self, v100_cluster,
                                                 artifacts):
        # Pre-refactor traces bake per-call jitter into every window, so
        # they must keep replaying event-by-event, exactly as before.
        pipeline, job, job_trace, _ = artifacts
        legacy = TraceCollator().collate(
            _legacy_job_trace(job_trace, HostModel()),
            topology=job.topology())
        for trace in legacy.traces.values():
            windows = find_iteration_windows(trace)
            assert windows is not None
            assert not windows_are_periodic(trace, windows)
        report = ClusterSimulator(
            v100_cluster, pipeline.make_provider(),
            SimulationConfig(
                simulate_ranks=pipeline._simulation_ranks(job))).simulate(
                legacy, iterations=self.ITERATIONS)
        assert "iteration_folding" not in report.metadata


class _FoldableConstantProvider:
    supports_iteration_folding = True

    def kernel_duration(self, rank, event):
        return 1.0

    def collective_duration(self, rank, event, resolution, group):
        return 2.0


class TestFoldVetoMemo:
    def _uncommittable_job(self):
        # Periodic windows whose boundaries are never quiescent (no sync
        # before the end marker): plan_iteration_fold accepts the trace but
        # commit_fold must refuse, producing a veto memo entry.
        trace = WorkerTrace(rank=0, device=0)
        for index in range(8):
            trace.append(TraceEvent(
                kind=TraceEventKind.MARKER, api="marker", device=0,
                params={"label": f"iteration-{index}-start"}))
            trace.append(TraceEvent(
                kind=TraceEventKind.KERNEL, api="k", device=0, stream=0,
                kernel_class="elementwise", params={"bytes": 1.0}))
            trace.append(TraceEvent(
                kind=TraceEventKind.MARKER, api="marker", device=0,
                params={"label": f"iteration-{index}-end"}))
        job = JobTrace(world_size=1)
        job.add_worker(trace)
        return job

    def test_veto_memo_evicts_oldest_first(self):
        from repro.core.simulator import engine as engine_module

        collated = TraceCollator(deduplicate=False).collate(
            self._uncommittable_job())
        provider = _FoldableConstantProvider()
        limit = engine_module._FOLD_VETO_LIMIT
        provider._fold_vetoes = {("dummy", i): True for i in range(limit)}
        simulator = ClusterSimulator(get_cluster("v100-8"), provider,
                                     SimulationConfig())
        report = simulator.simulate(collated)
        assert "iteration_folding" not in report.metadata
        vetoes = provider._fold_vetoes
        # The full memo is no longer wiped: exactly one oldest entry made
        # room for the new veto, every other hot entry survived.
        assert len(vetoes) == limit
        assert ("dummy", 0) not in vetoes
        assert all(("dummy", i) in vetoes for i in range(1, limit))
        new_keys = [key for key in vetoes if key[0] != "dummy"]
        assert len(new_keys) == 1
        assert list(vetoes)[-1] == new_keys[0]
