"""Tests for the virtual CUDA runtime: memory, streams, events, libraries."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuda.api_records import ApiCallRecord, ApiKind
from repro.cuda.cublas import CublasHandle
from repro.cuda.cudnn import ConvolutionDescriptor, CudnnHandle
from repro.cuda.errors import (
    CudaInvalidHandleError,
    CudaInvalidValueError,
    CudaOutOfMemoryError,
    NcclError,
)
from repro.cuda.memory import DeviceMemoryManager
from repro.cuda.nccl import NcclUniqueId, comm_init_rank
from repro.cuda.runtime import CudaRuntime
from repro.hardware.gpu_specs import get_gpu


@pytest.fixture()
def runtime():
    records = []
    rt = CudaRuntime(device=0, gpu=get_gpu("V100"), interceptor=records.append,
                     reserved_bytes=0)
    rt.records = records  # type: ignore[attr-defined]
    return rt


class TestDeviceMemoryManager:
    def test_malloc_and_free_roundtrip(self):
        manager = DeviceMemoryManager(device=0, capacity_bytes=1 << 20)
        pointer = manager.malloc(1000)
        assert manager.owns(pointer)
        assert manager.allocated >= 1000
        manager.free(pointer)
        assert manager.allocated == 0
        assert not manager.owns(pointer)

    def test_oom_raised_when_capacity_exceeded(self):
        manager = DeviceMemoryManager(device=0, capacity_bytes=4096)
        with pytest.raises(CudaOutOfMemoryError):
            manager.malloc(8192)

    def test_reserved_bytes_reduce_capacity(self):
        manager = DeviceMemoryManager(device=0, capacity_bytes=10_000,
                                      reserved_bytes=9_000)
        with pytest.raises(CudaOutOfMemoryError):
            manager.malloc(2_000)

    def test_double_free_rejected(self):
        manager = DeviceMemoryManager(device=0, capacity_bytes=1 << 20)
        pointer = manager.malloc(128)
        manager.free(pointer)
        with pytest.raises(CudaInvalidValueError):
            manager.free(pointer)

    def test_negative_allocation_rejected(self):
        manager = DeviceMemoryManager(device=0, capacity_bytes=1 << 20)
        with pytest.raises(CudaInvalidValueError):
            manager.malloc(-1)

    def test_peak_tracks_high_watermark(self):
        manager = DeviceMemoryManager(device=0, capacity_bytes=1 << 20)
        a = manager.malloc(4096)
        b = manager.malloc(4096)
        manager.free(a)
        manager.free(b)
        assert manager.peak_allocated >= 8192
        manager.reset_peak()
        assert manager.peak_allocated == 0

    def test_mem_get_info_shape(self):
        manager = DeviceMemoryManager(device=0, capacity_bytes=1 << 20)
        free, total = manager.mem_get_info()
        assert total == 1 << 20
        assert free <= total

    @given(st.lists(st.integers(min_value=1, max_value=64 * 1024), min_size=1,
                    max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_alloc_free_accounting_invariant(self, sizes):
        manager = DeviceMemoryManager(device=0, capacity_bytes=1 << 30)
        pointers = [manager.malloc(size) for size in sizes]
        assert manager.allocated == sum(p.size for p in pointers)
        for pointer in pointers:
            manager.free(pointer)
        assert manager.allocated == 0
        assert manager.stats().num_frees == len(sizes)


class TestCudaRuntime:
    def test_malloc_emits_record_and_tracks_memory(self, runtime):
        pointer = runtime.cuda_malloc(1 << 20)
        assert runtime.memory.allocated >= 1 << 20
        assert runtime.records[-1].api == "cudaMalloc"
        runtime.cuda_free(pointer)
        assert runtime.records[-1].api == "cudaFree"

    def test_mem_get_info_reflects_allocations(self, runtime):
        free_before, total = runtime.cuda_mem_get_info()
        runtime.cuda_malloc(1 << 24)
        free_after, _ = runtime.cuda_mem_get_info()
        assert free_after < free_before
        assert total == runtime.gpu.memory_bytes

    def test_kernel_launch_records_metadata(self, runtime):
        runtime.launch_kernel("myKernel", "elementwise",
                              {"elements": 10.0, "bytes": 40.0})
        record = runtime.records[-1]
        assert record.kind is ApiKind.KERNEL
        assert record.kernel_class == "elementwise"
        assert record.params["elements"] == 10.0
        assert runtime.kernel_count == 1

    def test_memcpy_validates_kind(self, runtime):
        with pytest.raises(CudaInvalidValueError):
            runtime.cuda_memcpy_async(10, "x2y")

    def test_stream_lifecycle(self, runtime):
        stream = runtime.cuda_stream_create()
        assert stream.stream_id != 0
        runtime.launch_kernel("k", "elementwise", {"bytes": 1.0},
                              stream=stream.stream_id)
        runtime.cuda_stream_destroy(stream)
        with pytest.raises(CudaInvalidHandleError):
            runtime.launch_kernel("k", "elementwise", {"bytes": 1.0},
                                  stream=stream.stream_id)

    def test_unknown_stream_rejected(self, runtime):
        with pytest.raises(CudaInvalidHandleError):
            runtime.cuda_stream_synchronize(999)

    def test_event_record_and_wait_sequence(self, runtime):
        stream = runtime.cuda_stream_create()
        event = runtime.cuda_event_create()
        runtime.cuda_event_record(event, stream=stream.stream_id)
        runtime.cuda_stream_wait_event(0, event)
        kinds = [record.kind for record in runtime.records]
        assert ApiKind.EVENT_RECORD in kinds
        assert ApiKind.STREAM_WAIT_EVENT in kinds
        wait = runtime.records[-1]
        assert wait.params["version"] == 1

    def test_event_version_increments_per_record(self, runtime):
        event = runtime.cuda_event_create()
        runtime.cuda_event_record(event)
        runtime.cuda_event_record(event)
        assert runtime.records[-1].params["version"] == 2

    def test_destroyed_event_rejected(self, runtime):
        event = runtime.cuda_event_create()
        runtime.cuda_event_destroy(event)
        with pytest.raises(CudaInvalidHandleError):
            runtime.cuda_event_record(event)

    def test_device_synchronize_emits_record(self, runtime):
        runtime.cuda_device_synchronize()
        assert runtime.records[-1].kind is ApiKind.DEVICE_SYNCHRONIZE


class TestCublas:
    def test_gemm_metadata(self, runtime):
        handle = CublasHandle(runtime)
        handle.set_stream(0)
        handle.gemm_ex(128, 256, 512, dtype="float16")
        record = runtime.records[-1]
        assert record.kernel_class == "gemm"
        assert record.params["flops"] == pytest.approx(2.0 * 128 * 256 * 512)

    def test_batched_gemm_uses_batched_class(self, runtime):
        handle = CublasHandle(runtime)
        handle.hgemm(64, 64, 64, batch=12)
        assert runtime.records[-1].kernel_class == "batched_gemm"
        assert runtime.records[-1].params["batch"] == 12

    def test_sgemm_uses_fp32(self, runtime):
        handle = CublasHandle(runtime)
        handle.sgemm(32, 32, 32)
        assert runtime.records[-1].params["dtype"] == "float32"
        assert runtime.records[-1].api == "cublasSgemm_v2"

    def test_invalid_shape_rejected(self, runtime):
        handle = CublasHandle(runtime)
        with pytest.raises(CudaInvalidValueError):
            handle.gemm_ex(0, 4, 4)

    def test_destroyed_handle_rejected(self, runtime):
        handle = CublasHandle(runtime)
        handle.destroy()
        with pytest.raises(CudaInvalidHandleError):
            handle.gemm_ex(4, 4, 4)


class TestCudnn:
    def test_convolution_requires_descriptor(self, runtime):
        handle = CudnnHandle(runtime)
        with pytest.raises(CudaInvalidHandleError):
            handle.convolution_forward(1, 32, 32)

    def test_convolution_forward_metadata(self, runtime):
        handle = CudnnHandle(runtime)
        handle.set_convolution_descriptor(ConvolutionDescriptor(
            in_channels=64, out_channels=128, kernel_size=3, padding=1))
        handle.convolution_forward(8, 56, 56)
        record = runtime.records[-1]
        assert record.api == "cudnnConvolutionForward"
        assert record.kernel_class == "conv_forward"
        assert record.params["flops"] > 0

    def test_backward_kernels_have_distinct_classes(self, runtime):
        handle = CudnnHandle(runtime)
        handle.set_convolution_descriptor(ConvolutionDescriptor(
            in_channels=16, out_channels=16, kernel_size=3, padding=1))
        handle.convolution_backward_data(2, 14, 14)
        handle.convolution_backward_filter(2, 14, 14)
        classes = [record.kernel_class for record in runtime.records[-2:]]
        assert classes == ["conv_backward_data", "conv_backward_filter"]

    def test_invalid_descriptor_rejected(self, runtime):
        handle = CudnnHandle(runtime)
        with pytest.raises(CudaInvalidValueError):
            handle.set_convolution_descriptor(ConvolutionDescriptor(
                in_channels=4, out_channels=4, kernel_size=0))


class TestNccl:
    def test_collective_carries_comm_identity(self, runtime):
        unique = NcclUniqueId.generate(tag="dp")
        comm = comm_init_rank(runtime, unique, rank=0, world_ranks=[0, 1, 2, 3])
        comm.all_reduce(1024, dtype="float16")
        record = runtime.records[-1]
        assert record.kind is ApiKind.COLLECTIVE
        assert record.collective["comm_id"] == unique.value
        assert record.collective["nranks"] == 4
        assert record.collective["seq"] == 1
        assert record.params["bytes"] == pytest.approx(2048.0)

    def test_sequence_numbers_increment(self, runtime):
        comm = comm_init_rank(runtime, NcclUniqueId.generate("tp"), 0, [0, 1])
        comm.all_gather(10)
        comm.reduce_scatter(10)
        assert runtime.records[-1].collective["seq"] == 2

    def test_rank_must_belong_to_group(self, runtime):
        with pytest.raises(NcclError):
            comm_init_rank(runtime, NcclUniqueId.generate(), 5, [0, 1])

    def test_duplicate_ranks_rejected(self, runtime):
        with pytest.raises(NcclError):
            comm_init_rank(runtime, NcclUniqueId.generate(), 0, [0, 0, 1])

    def test_send_requires_member_peer(self, runtime):
        comm = comm_init_rank(runtime, NcclUniqueId.generate("pp"), 0, [0, 4])
        with pytest.raises(NcclError):
            comm.send(16, peer=2)
        comm.send(16, peer=4)
        assert runtime.records[-1].collective["peer"] == 4

    def test_destroyed_communicator_rejected(self, runtime):
        comm = comm_init_rank(runtime, NcclUniqueId.generate(), 0, [0, 1])
        comm.destroy()
        with pytest.raises(NcclError):
            comm.all_reduce(4)

    def test_unique_ids_are_unique(self):
        assert NcclUniqueId.generate().value != NcclUniqueId.generate().value
