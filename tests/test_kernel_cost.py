"""Tests for the ground-truth kernel and collective cost models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.gpu_specs import get_gpu
from repro.hardware.kernel_cost import (
    CollectiveCostModel,
    KernelCostModel,
    dtype_size,
)


@pytest.fixture(scope="module")
def cost_model():
    return KernelCostModel()


def gemm_params(m, n, k, dtype="float16", batch=1):
    return {"m": m, "n": n, "k": k, "batch": batch,
            "flops": 2.0 * m * n * k * batch,
            "bytes": dtype_size(dtype) * batch * (m * k + k * n + m * n),
            "dtype": dtype}


class TestDtypeSize:
    def test_known_widths(self):
        assert dtype_size("float32") == 4
        assert dtype_size("bfloat16") == 2
        assert dtype_size("int8") == 1

    def test_unknown_defaults_to_four(self):
        assert dtype_size("mystery") == 4


class TestKernelCostModel:
    def test_min_kernel_time_floor(self, cost_model):
        gpu = get_gpu("H100")
        tiny = cost_model.kernel_time(gpu, "elementwise",
                                      {"elements": 8, "bytes": 64.0})
        assert tiny >= cost_model.min_kernel_time

    def test_larger_gemm_takes_longer(self, cost_model):
        gpu = get_gpu("H100")
        small = cost_model.expected_kernel_time(gpu, "gemm",
                                                gemm_params(1024, 1024, 1024))
        large = cost_model.expected_kernel_time(gpu, "gemm",
                                                gemm_params(8192, 8192, 8192))
        assert large > small * 10

    def test_h100_faster_than_v100_on_fp16_gemm(self, cost_model):
        params = gemm_params(8192, 8192, 8192)
        v100 = cost_model.expected_kernel_time(get_gpu("V100"), "gemm", params)
        h100 = cost_model.expected_kernel_time(get_gpu("H100"), "gemm", params)
        assert h100 < v100

    def test_bf16_slow_on_volta(self, cost_model):
        fp16 = cost_model.expected_kernel_time(
            get_gpu("V100"), "gemm", gemm_params(4096, 4096, 4096, "float16"))
        bf16 = cost_model.expected_kernel_time(
            get_gpu("V100"), "gemm", gemm_params(4096, 4096, 4096, "bfloat16"))
        assert bf16 > 3 * fp16

    def test_memcpy_uses_pcie(self, cost_model):
        gpu = get_gpu("A40")
        h2d = cost_model.expected_kernel_time(gpu, "memcpy_h2d",
                                              {"bytes": 1e9})
        d2d = cost_model.expected_kernel_time(gpu, "memcpy_d2d",
                                              {"bytes": 1e9})
        assert h2d > d2d

    def test_invocation_jitter_is_small_and_deterministic(self, cost_model):
        gpu = get_gpu("H100")
        params = gemm_params(4096, 4096, 4096)
        expected = cost_model.expected_kernel_time(gpu, "gemm", params)
        jittered = cost_model.kernel_time(gpu, "gemm", params, invocation=5)
        assert jittered == cost_model.kernel_time(gpu, "gemm", params,
                                                  invocation=5)
        assert abs(jittered - expected) / expected < 0.1

    def test_shape_noise_varies_across_shapes(self, cost_model):
        gpu = get_gpu("H100")
        ratios = set()
        for m in (1024, 1536, 2048, 3072, 4096):
            params = gemm_params(m, 4096, 4096)
            analytic = params["flops"] / gpu.peak_flops_for("float16")
            ratios.add(round(cost_model.expected_kernel_time(gpu, "gemm", params)
                             / analytic, 4))
        assert len(ratios) > 1

    @given(st.floats(min_value=1e3, max_value=1e12))
    @settings(max_examples=40, deadline=None)
    def test_memory_bound_time_positive_and_monotone(self, nbytes):
        model = KernelCostModel()
        gpu = get_gpu("V100")
        smaller = model.expected_kernel_time(gpu, "elementwise",
                                             {"bytes": nbytes})
        larger = model.expected_kernel_time(gpu, "elementwise",
                                            {"bytes": nbytes * 4.0})
        assert smaller > 0
        assert larger >= smaller

    @given(st.integers(min_value=16, max_value=4096),
           st.integers(min_value=16, max_value=4096),
           st.integers(min_value=16, max_value=4096))
    @settings(max_examples=40, deadline=None)
    def test_gemm_time_positive(self, m, n, k):
        model = KernelCostModel()
        time = model.expected_kernel_time(get_gpu("A100"), "gemm",
                                          gemm_params(m, n, k))
        assert time > 0


class TestCollectiveCostModel:
    def test_allreduce_scales_with_bytes(self):
        model = CollectiveCostModel()
        small = model.collective_time("all_reduce", 1e6, 8, 100e9, 2e-6)
        large = model.collective_time("all_reduce", 1e9, 8, 100e9, 2e-6)
        assert large > small * 100

    def test_single_rank_collective_is_overhead_only(self):
        model = CollectiveCostModel()
        assert model.collective_time("all_reduce", 1e9, 1, 100e9, 2e-6) == \
            pytest.approx(model.launch_overhead)

    def test_allreduce_costs_twice_reduce_scatter(self):
        model = CollectiveCostModel(shape_noise=0.0, run_noise=0.0,
                                    launch_overhead=0.0)
        ar = model.collective_time("all_reduce", 1e9, 8, 100e9, 0.0)
        rs = model.collective_time("reduce_scatter", 1e9, 8, 100e9, 0.0)
        assert ar == pytest.approx(2.0 * rs, rel=1e-6)

    def test_send_recv_is_point_to_point(self):
        model = CollectiveCostModel(shape_noise=0.0, run_noise=0.0,
                                    launch_overhead=0.0)
        time = model.collective_time("send", 1e9, 2, 100e9, 1e-6)
        assert time == pytest.approx(1e-6 + 1e9 / 100e9, rel=1e-6)

    def test_barrier_has_no_bandwidth_term(self):
        model = CollectiveCostModel(shape_noise=0.0, run_noise=0.0)
        barrier = model.collective_time("barrier", 0.0, 16, 100e9, 1e-6)
        assert barrier < 1e-3

    @given(st.integers(min_value=2, max_value=128))
    @settings(max_examples=30, deadline=None)
    def test_more_ranks_never_cheaper_for_allreduce(self, ranks):
        model = CollectiveCostModel(shape_noise=0.0, run_noise=0.0)
        fewer = model.collective_time("all_reduce", 1e8, ranks, 100e9, 1e-6)
        more = model.collective_time("all_reduce", 1e8, ranks * 2, 100e9, 1e-6)
        assert more >= fewer * 0.99
