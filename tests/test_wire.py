"""Unit tests for the socket backend's wire framing and handshake."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.service import wire


def _pair():
    left, right = socket.socketpair()
    return wire.WireConnection(left), wire.WireConnection(right)


class TestFraming:
    def test_roundtrip_python_objects(self):
        a, b = _pair()
        try:
            payloads = [("job", 3, {"knob": 1.5}), [1, 2, 3], "text", None,
                        ("sync", 7, False, [(("k",), b"\x00" * 100)], [], [])]
            for payload in payloads:
                a.send(payload)
                assert b.recv() == payload
            # And the other direction on the same pair.
            b.send(("result", 0))
            assert a.recv() == ("result", 0)
        finally:
            a.close()
            b.close()

    def test_large_payload_crosses_in_one_frame(self):
        a, b = _pair()
        try:
            blob = b"\xab" * (2 * 1024 * 1024)
            thread = threading.Thread(target=a.send, args=(("big", blob),))
            thread.start()  # socketpair buffers are small: send concurrently
            kind, received = b.recv()
            thread.join()
            assert kind == "big" and received == blob
        finally:
            a.close()
            b.close()

    def test_poll_times_out_then_sees_data(self):
        a, b = _pair()
        try:
            assert b.poll(0.01) is False
            a.send("ping")
            assert b.poll(5.0) is True
            assert b.recv() == "ping"
        finally:
            a.close()
            b.close()

    def test_closed_peer_raises_eoferror(self):
        a, b = _pair()
        a.close()
        try:
            with pytest.raises(EOFError):
                b.recv()
        finally:
            b.close()

    def test_garbage_magic_is_rejected_with_protocol_error(self):
        left, right = socket.socketpair()
        conn = wire.WireConnection(right)
        try:
            left.sendall(b"GET / HTTP/1.1\r\n\r\n")
            with pytest.raises(wire.WireProtocolError, match="magic"):
                conn.recv()
        finally:
            left.close()
            conn.close()


class TestHandshake:
    def test_matching_versions_succeed(self):
        a, b = _pair()
        try:
            server = threading.Thread(target=wire.handshake, args=(b,))
            server.start()
            wire.handshake(a)
            server.join()
        finally:
            a.close()
            b.close()

    def test_version_mismatch_names_both_versions(self, monkeypatch):
        a, b = _pair()
        try:
            # The peer answers with a future protocol version; this side
            # must refuse with a message naming both numbers.
            b.send_json({"magic": wire.HANDSHAKE_MAGIC, "protocol": 999})
            with pytest.raises(wire.WireProtocolError) as excinfo:
                wire.handshake(a)
            message = str(excinfo.value)
            assert str(wire.PROTOCOL) in message and "999" in message
        finally:
            a.close()
            b.close()

    def test_silent_peer_times_out_instead_of_stalling(self):
        # A listener that accepts (at the TCP level) but never answers the
        # hello must not hang connect(): the handshake read times out with
        # an OSError, which the socket backend treats as a failed address.
        listener = socket.socket()
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen()
            port = listener.getsockname()[1]
            with pytest.raises(OSError):
                wire.connect(f"127.0.0.1:{port}", timeout=0.3)
        finally:
            listener.close()

    def test_non_handshake_first_frame_is_refused(self):
        a, b = _pair()
        try:
            b.send(("job", 0, None))  # pickle frame instead of a hello
            with pytest.raises(wire.WireProtocolError, match="handshake"):
                wire.handshake(a)
        finally:
            a.close()
            b.close()


class TestAddresses:
    def test_parse_address(self):
        assert wire.parse_address("127.0.0.1:8123") == ("127.0.0.1", 8123)
        assert wire.parse_address("worker-3.cluster:99") == \
            ("worker-3.cluster", 99)

    @pytest.mark.parametrize("bad", ["localhost", ":80", "host:", "host:abc"])
    def test_invalid_addresses_rejected(self, bad):
        with pytest.raises(ValueError, match="host:port"):
            wire.parse_address(bad)
