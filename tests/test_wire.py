"""Unit tests for the socket backend's wire framing and handshake."""

from __future__ import annotations

import os
import socket
import threading

import pytest

from repro.service import wire


def _pair():
    left, right = socket.socketpair()
    return wire.WireConnection(left), wire.WireConnection(right)


class TestFraming:
    def test_roundtrip_python_objects(self):
        a, b = _pair()
        try:
            payloads = [("job", 3, {"knob": 1.5}), [1, 2, 3], "text", None,
                        ("sync", 7, False, [(("k",), b"\x00" * 100)], [], [])]
            for payload in payloads:
                a.send(payload)
                assert b.recv() == payload
            # And the other direction on the same pair.
            b.send(("result", 0))
            assert a.recv() == ("result", 0)
        finally:
            a.close()
            b.close()

    def test_large_payload_crosses_in_one_frame(self):
        a, b = _pair()
        try:
            blob = b"\xab" * (2 * 1024 * 1024)
            thread = threading.Thread(target=a.send, args=(("big", blob),))
            thread.start()  # socketpair buffers are small: send concurrently
            kind, received = b.recv()
            thread.join()
            assert kind == "big" and received == blob
        finally:
            a.close()
            b.close()

    def test_poll_times_out_then_sees_data(self):
        a, b = _pair()
        try:
            assert b.poll(0.01) is False
            a.send("ping")
            assert b.poll(5.0) is True
            assert b.recv() == "ping"
        finally:
            a.close()
            b.close()

    def test_closed_peer_raises_eoferror(self):
        a, b = _pair()
        a.close()
        try:
            with pytest.raises(EOFError):
                b.recv()
        finally:
            b.close()

    def test_garbage_magic_is_rejected_with_protocol_error(self):
        left, right = socket.socketpair()
        conn = wire.WireConnection(right)
        try:
            left.sendall(b"GET / HTTP/1.1\r\n\r\n")
            with pytest.raises(wire.WireProtocolError, match="magic"):
                conn.recv()
        finally:
            left.close()
            conn.close()

    def test_poll_works_on_fd_above_select_fd_setsize(self):
        # ``select.select`` raises ValueError on fds >= 1024 (FD_SETSIZE);
        # a server holding hundreds of client + worker sockets crosses
        # that line in normal operation, so poll() must use selectors.
        resource = pytest.importorskip("resource")
        target_fd = 1200
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft <= target_fd:
            if hard != resource.RLIM_INFINITY and hard <= target_fd:
                pytest.skip("process fd limit too low to mint an fd >= 1024")
            resource.setrlimit(resource.RLIMIT_NOFILE,
                               (target_fd + 64, hard))
        try:
            left, right = socket.socketpair()
            os.dup2(right.fileno(), target_fd)
            right.close()
            conn = wire.WireConnection(socket.socket(fileno=target_fd))
            sender = wire.WireConnection(left)
            try:
                assert conn.fileno() == target_fd >= 1024
                assert conn.poll(0.01) is False
                sender.send("ping")
                assert conn.poll(5.0) is True
                assert conn.recv() == "ping"
            finally:
                sender.close()
                conn.close()
        finally:
            resource.setrlimit(resource.RLIMIT_NOFILE, (soft, hard))


class TestHandshake:
    def test_matching_versions_succeed(self):
        a, b = _pair()
        try:
            server = threading.Thread(target=wire.handshake, args=(b,))
            server.start()
            wire.handshake(a)
            server.join()
        finally:
            a.close()
            b.close()

    def test_version_mismatch_names_both_versions(self, monkeypatch):
        a, b = _pair()
        try:
            # The peer answers with a future protocol version; this side
            # must refuse with a message naming both numbers.
            b.send_json({"magic": wire.HANDSHAKE_MAGIC, "protocol": 999})
            with pytest.raises(wire.WireProtocolError) as excinfo:
                wire.handshake(a)
            message = str(excinfo.value)
            assert str(wire.PROTOCOL) in message and "999" in message
        finally:
            a.close()
            b.close()

    def test_silent_peer_times_out_instead_of_stalling(self):
        # A listener that accepts (at the TCP level) but never answers the
        # hello must not hang connect(): the handshake read times out with
        # an OSError, which the socket backend treats as a failed address.
        listener = socket.socket()
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen()
            port = listener.getsockname()[1]
            with pytest.raises(OSError):
                wire.connect(f"127.0.0.1:{port}", timeout=0.3)
        finally:
            listener.close()

    def test_non_handshake_first_frame_is_refused(self):
        a, b = _pair()
        try:
            b.send(("job", 0, None))  # pickle frame instead of a hello
            with pytest.raises(wire.WireProtocolError, match="handshake"):
                wire.handshake(a)
        finally:
            a.close()
            b.close()

    def test_pickle_first_peer_is_refused_without_unpickling(self, tmp_path):
        # A hostile (or confused) peer whose first frame is a pickle must
        # be rejected before any byte of it is deserialised: unpickling
        # pre-handshake data is arbitrary code execution.  The payload
        # touches a marker file when unpickled; the file must not exist.
        marker = tmp_path / "unpickled-before-handshake"
        a, b = _pair()
        try:
            b.send(_TouchOnUnpickle(str(marker)))
            with pytest.raises(wire.WireProtocolError, match="JSON"):
                wire.handshake(a)
            assert not marker.exists()
        finally:
            a.close()
            b.close()


def _touch_marker(path):
    open(path, "w").close()
    return path


class _TouchOnUnpickle:
    """Pickles to a ``_touch_marker`` call -- proof that loads() ran."""

    def __init__(self, path: str) -> None:
        self.path = path

    def __reduce__(self):
        return (_touch_marker, (self.path,))


def _handshaken_pair():
    a, b = _pair()
    server = threading.Thread(target=wire.handshake, args=(b,))
    server.start()
    wire.handshake(a)
    server.join()
    return a, b


def _example_trace(seed=0, steps=40):
    from test_simulator import build_random_job

    job = build_random_job(seed, steps=steps)
    return next(iter(job.workers.values()))


class TestColumnarNegotiation:
    """Feature negotiation and the format-3 (columnar pickle) frames."""

    def test_features_exchanged_symmetrically(self):
        numpy = pytest.importorskip("numpy")
        del numpy
        a, b = _handshaken_pair()
        try:
            assert wire.FEATURE_COLUMNAR in a.peer_features
            assert wire.FEATURE_COLUMNAR in b.peer_features
        finally:
            a.close()
            b.close()

    def test_worker_trace_rides_format_3_and_round_trips(self):
        pytest.importorskip("numpy")
        trace = _example_trace()
        a, b = _handshaken_pair()
        try:
            a.send(("artifact", 4, trace))
            kind, index, received = b.recv()
            assert (kind, index) == ("artifact", 4)
            assert received.to_json() == trace.to_json()
            assert a.frames_sent.get(wire._FORMAT_PICKLE_COLUMNAR) == 1
        finally:
            a.close()
            b.close()

    def test_columnar_payload_is_smaller_on_steady_state_trace(self):
        pytest.importorskip("numpy")
        from test_simulator import build_random_periodic_job

        job = build_random_periodic_job(0, iterations=16)
        trace = next(iter(job.workers.values()))
        plain = wire.dumps(("artifact", trace))
        columnar = wire.dumps_columnar(("artifact", trace))
        assert len(columnar) < len(plain)

    def test_empty_trace_round_trips_columnar(self):
        pytest.importorskip("numpy")
        from repro.core.trace import WorkerTrace

        trace = WorkerTrace(rank=2, device=0)
        a, b = _handshaken_pair()
        try:
            a.send(("artifact", trace))
            _, received = b.recv()
            assert received.to_json() == trace.to_json()
            assert a.frames_sent.get(wire._FORMAT_PICKLE_COLUMNAR) == 1
        finally:
            a.close()
            b.close()

    def test_non_columnar_peer_falls_back_to_pickle(self, monkeypatch):
        # Version skew: the peer predates (or disabled) the columnar
        # format.  Its hello omits the feature, so this side must ship a
        # plain pickle -- same objects, no error.
        trace = _example_trace()
        a, b = _pair()
        try:
            b.send_json({"magic": wire.HANDSHAKE_MAGIC,
                         "protocol": wire.PROTOCOL})  # old peer: no features
            server = threading.Thread(target=b.recv)  # drain our hello
            server.start()
            wire.handshake(a)
            server.join()
            assert a.peer_features == frozenset()
            a.send(("artifact", trace))
            _, received = b.recv()
            assert received.to_json() == trace.to_json()
            assert wire._FORMAT_PICKLE_COLUMNAR not in a.frames_sent
            assert a.frames_sent.get(wire._FORMAT_PICKLE) == 1
        finally:
            a.close()
            b.close()

    def test_env_var_disables_columnar_shipping(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE_COLUMNAR", "0")
        # Only the columnar feature is gated off; liveness pings are
        # always advertised.
        assert wire.FEATURE_COLUMNAR not in wire.local_features()
        assert wire.FEATURE_PING in wire.local_features()
        a, b = _handshaken_pair()
        try:
            assert wire.FEATURE_COLUMNAR not in a.peer_features
            assert wire.FEATURE_COLUMNAR not in b.peer_features
            a.send(("job", 1))
            assert b.recv() == ("job", 1)
            assert wire._FORMAT_PICKLE_COLUMNAR not in a.frames_sent
        finally:
            a.close()
            b.close()

    def test_format_3_decodes_on_a_plain_recv_path(self):
        # A format-3 frame is a standard pickle: send_bytes with the
        # columnar format must decode identically on any current peer.
        pytest.importorskip("numpy")
        trace = _example_trace()
        a, b = _pair()
        try:
            payload = wire.dumps_columnar(("artifact", trace))
            a.send_bytes(payload, wire._FORMAT_PICKLE_COLUMNAR)
            _, received = b.recv()
            assert received.to_json() == trace.to_json()
        finally:
            a.close()
            b.close()


class TestAddresses:
    def test_parse_address(self):
        assert wire.parse_address("127.0.0.1:8123") == ("127.0.0.1", 8123)
        assert wire.parse_address("worker-3.cluster:99") == \
            ("worker-3.cluster", 99)

    @pytest.mark.parametrize("bad", ["localhost", ":80", "host:", "host:abc"])
    def test_invalid_addresses_rejected(self, bad):
        with pytest.raises(ValueError, match="host:port"):
            wire.parse_address(bad)
