"""Property tests for the pure placement policies.

Fifty seeded random scenarios (worker counts, outstanding loads, acked
epochs, held artifact keys, store sharing, job mixes) drive each policy
directly -- no backend, no service -- and check the invariants the
docstrings promise:

* structural: every job placed exactly once, shares parallel to the
  worker list, dispatch order preserved inside each share;
* ``round_robin``: byte-for-byte the pre-refactor striping
  (job *p* on worker ``p % min(workers, jobs)``), loads ignored;
* ``least_loaded``: every placement lands on a worker whose outstanding
  load is the minimum at that step, so no worker ever ends more than
  one job above the minimum;
* ``locality``: every placement minimises load + ship penalty, and an
  artifact-holding job is never shipped to a needs-ship worker while an
  equally-loaded zero-ship worker exists.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

import pytest

from repro.service.scheduling import (
    SCHEDULER_NAMES,
    JobSpec,
    LocalityPolicy,
    WorkerSnapshot,
    get_scheduler,
)

SEEDS = range(50)

#: Small shared key universe so held/required keys actually collide.
KEY_UNIVERSE = [("recipe", index) for index in range(8)]


def random_workers(rng: random.Random) -> List[WorkerSnapshot]:
    count = rng.randint(1, 6)
    workers = []
    for slot in range(count):
        held = frozenset(key for key in KEY_UNIVERSE if rng.random() < 0.3)
        workers.append(WorkerSnapshot(
            slot=slot,
            load=rng.randint(0, 5),
            acked_epoch=rng.randint(0, 4),
            shares_store=rng.random() < 0.3,
            held_keys=held,
        ))
    return workers


def random_jobs(rng: random.Random) -> List[JobSpec]:
    count = rng.randint(1, 12)
    jobs = []
    for index in range(count):
        key = rng.choice(KEY_UNIVERSE) if rng.random() < 0.8 else None
        jobs.append(JobSpec(
            index=index,
            artifact_key=key,
            artifact_cached=key is not None and rng.random() < 0.6,
            in_store=key is not None and rng.random() < 0.4,
            ship_bytes=rng.choice([0, 1024, 1 << 20, 5 << 20]),
        ))
    return jobs


def replay_order(jobs: Sequence[JobSpec],
                 shares: Sequence[Sequence[int]]) -> List[int]:
    """Map each job (in dispatch order) to the slot its share sits in.

    Also verifies the structural contract: every index appears in exactly
    one share, and each share preserves dispatch order.
    """
    cursors = [0] * len(shares)
    slots = []
    for job in jobs:
        owner: Optional[int] = None
        for slot, share in enumerate(shares):
            if cursors[slot] < len(share) and share[cursors[slot]] == job.index:
                owner = slot
                cursors[slot] += 1
                break
        assert owner is not None, \
            f"job {job.index} missing or out of order in shares {shares}"
        slots.append(owner)
    assert all(cursors[slot] == len(share)
               for slot, share in enumerate(shares)), \
        f"shares contain surplus indices: {shares}"
    return slots


class TestStructuralInvariants:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_job_placed_exactly_once_in_order(self, name, seed):
        rng = random.Random(seed)
        jobs, workers = random_jobs(rng), random_workers(rng)
        policy = get_scheduler(name)
        shares = policy.assign(jobs, workers)
        assert len(shares) == len(workers)
        replay_order(jobs, shares)
        assert policy.stats["placements"] == len(jobs)

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_empty_inputs_produce_empty_shares(self, name):
        policy = get_scheduler(name)
        workers = random_workers(random.Random(0))
        assert policy.assign([], workers) == [[] for _ in workers]
        assert policy.assign([JobSpec(index=0)], []) == []
        assert policy.stats["placements"] == 0


class TestRoundRobin:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_pre_refactor_striping_exactly(self, seed):
        rng = random.Random(seed)
        jobs, workers = random_jobs(rng), random_workers(rng)
        shares = get_scheduler("round_robin").assign(jobs, workers)
        width = min(len(workers), len(jobs))
        expected: List[List[int]] = [[] for _ in workers]
        for position, job in enumerate(jobs):
            expected[position % width].append(job.index)
        assert shares == expected, \
            "round_robin must reproduce the historical striping " \
            "byte-for-byte regardless of loads or locality"


class TestLeastLoaded:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_placement_lands_on_a_minimum_load_worker(self, seed):
        rng = random.Random(seed)
        jobs, workers = random_jobs(rng), random_workers(rng)
        shares = get_scheduler("least_loaded").assign(jobs, workers)
        loads = [worker.load for worker in workers]
        for job, slot in zip(jobs, replay_order(jobs, shares)):
            floor = min(loads)
            assert loads[slot] == floor, \
                f"job {job.index} placed on slot {slot} (load " \
                f"{loads[slot]}) while a worker sat at {floor}"
            # Lowest slot wins ties -- determinism the conformance
            # matrix relies on.
            assert slot == min(s for s in range(len(workers))
                               if loads[s] == floor)
            loads[slot] += 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_equal_start_never_exceeds_min_outstanding_plus_one(self, seed):
        # From a level start the greedy keeps the pool level: no worker
        # ever ends more than one job above the minimum.
        rng = random.Random(seed)
        workers = [WorkerSnapshot(slot=slot)
                   for slot in range(rng.randint(1, 6))]
        jobs = [JobSpec(index=index) for index in range(rng.randint(1, 12))]
        shares = get_scheduler("least_loaded").assign(jobs, workers)
        sizes = [len(share) for share in shares]
        assert max(sizes) <= min(sizes) + 1


class TestLocality:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_placement_minimises_load_plus_ship_penalty(self, seed):
        rng = random.Random(seed)
        jobs, workers = random_jobs(rng), random_workers(rng)
        policy = get_scheduler("locality")
        shares = policy.assign(jobs, workers)
        loads = [worker.load for worker in workers]
        for job, slot in zip(jobs, replay_order(jobs, shares)):
            scores = [loads[s] + policy._ship_penalty(job, workers[s])
                      for s in range(len(workers))]
            assert scores[slot] == min(scores)
            assert slot == min(s for s in range(len(workers))
                               if scores[s] == min(scores))
            loads[slot] += 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_never_ships_past_an_equally_loaded_holder(self, seed):
        # The headline invariant: an artifact-holding job never lands on
        # a worker that needs the artifact shipped while some zero-ship
        # worker is no more loaded.
        rng = random.Random(seed)
        jobs, workers = random_jobs(rng), random_workers(rng)
        policy = get_scheduler("locality")
        shares = policy.assign(jobs, workers)
        loads = [worker.load for worker in workers]
        for job, slot in zip(jobs, replay_order(jobs, shares)):
            if job.artifact_cached and not policy.zero_ship(
                    job, workers[slot]):
                cheaper = [s for s in range(len(workers))
                           if policy.zero_ship(job, workers[s])
                           and loads[s] <= loads[slot]]
                assert not cheaper, \
                    f"job {job.index} shipped to slot {slot} while " \
                    f"zero-ship slots {cheaper} were no more loaded"
            loads[slot] += 1

    def test_counters_credit_only_zero_ship_placements(self):
        holder = WorkerSnapshot(slot=0, held_keys=frozenset({("recipe", 0)}))
        stranger = WorkerSnapshot(slot=1)
        policy = get_scheduler("locality")
        policy.assign([JobSpec(index=0, artifact_key=("recipe", 0),
                               artifact_cached=True, ship_bytes=2048)],
                      [holder, stranger])
        assert policy.stats["locality_hits"] == 1
        assert policy.stats["ship_bytes_avoided"] == 2048
        # A cold job saves nothing even on the holder.
        policy.assign([JobSpec(index=0, artifact_key=("recipe", 1))],
                      [holder, stranger])
        assert policy.stats["locality_hits"] == 1
        assert policy.stats["ship_bytes_avoided"] == 2048

    def test_store_shared_worker_is_zero_ship_for_store_held_keys(self):
        sharer = WorkerSnapshot(slot=0, shares_store=True)
        policy = get_scheduler("locality")
        job = JobSpec(index=0, artifact_key=("recipe", 3),
                      artifact_cached=True, in_store=True, ship_bytes=512)
        assert policy.zero_ship(job, sharer)
        assert policy._ship_penalty(job, sharer) == 0.0

    def test_large_artifacts_tolerate_longer_queues(self):
        # A 5 MiB artifact costs 1 + 5 job-units of penalty: the holder
        # wins even carrying six more outstanding jobs, but loses once
        # the gap exceeds the penalty.
        holder = WorkerSnapshot(slot=0, load=6,
                                held_keys=frozenset({("recipe", 0)}))
        idle = WorkerSnapshot(slot=1, load=0)
        job = JobSpec(index=0, artifact_key=("recipe", 0),
                      artifact_cached=True, ship_bytes=5 << 20)
        assert get_scheduler("locality").assign(
            [job], [holder, idle]) == [[0], []]
        far = WorkerSnapshot(slot=0, load=7,
                             held_keys=frozenset({("recipe", 0)}))
        assert get_scheduler("locality").assign(
            [job], [far, idle]) == [[], [0]]


class TestSelectTarget:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_redispatch_targets_the_least_loaded_candidate(self, name, seed):
        # Every built-in policy re-dispatches exactly like the
        # pre-refactor drain loop: least-loaded candidate, first wins.
        rng = random.Random(seed)
        workers = random_workers(rng)
        policy = get_scheduler(name)
        slot = policy.select_target(JobSpec(index=0), workers)
        floor = min(worker.load for worker in workers)
        assert slot == next(worker.slot for worker in workers
                            if worker.load == floor)

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_no_candidates_means_no_target(self, name):
        assert get_scheduler(name).select_target(JobSpec(index=0), []) is None


class TestMembershipNotifications:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_membership_changes_are_counted(self, name):
        policy = get_scheduler(name)
        policy.on_membership_change(joined=["w1"])
        policy.on_membership_change(left=["w0", "w2"])
        assert policy.stats["membership_changes"] == 3


def test_locality_penalty_scales_with_ship_bytes():
    policy = LocalityPolicy()
    stranger = WorkerSnapshot(slot=0)
    small = JobSpec(index=0, artifact_key=("recipe", 0),
                    artifact_cached=True, ship_bytes=0)
    large = JobSpec(index=1, artifact_key=("recipe", 0),
                    artifact_cached=True,
                    ship_bytes=2 * LocalityPolicy.BYTES_PER_JOB_UNIT)
    assert policy._ship_penalty(small, stranger) \
        == LocalityPolicy.MIN_SHIP_PENALTY
    assert policy._ship_penalty(large, stranger) \
        == LocalityPolicy.MIN_SHIP_PENALTY + 2.0
