"""Deterministic chaos matrix for the resilient pooled backends.

Every scenario runs the standard two-batch conformance workload while a
seeded :class:`~repro.service.FaultPlan` injects exactly one failure at a
well-defined protocol point -- a worker killed before a specific job, a
straggler slowed past its lease, a corrupted wire frame, a dropped
connection, a worker host restarted between batches -- and then asserts
the full conformance contract: results byte-identical to serial, cache
accounting replayed exactly, and no leaked worker processes.  The
resilience counters additionally pin down *how* the run survived (leased
jobs re-dispatched to live workers, never whole-batch parent fallback).

CI runs this module as the ``chaos`` job with
``REPRO_CONFORMANCE_BACKENDS=persistent,socket``.
"""

from __future__ import annotations

import multiprocessing
import socket as socket_module
import time

import pytest

from backend_conformance import (
    assert_conformant,
    assert_results_identical,
    conformance_backends,
    default_batches,
    make_jobs,
    run_conformance,
)
from repro.service import (
    FaultPlan,
    FaultRule,
    PredictionService,
    install_fault_plan,
)
from repro.service.faults import FAULT_PLAN_ENV, FAULT_WORKER_ENV
from repro.service.worker_host import (
    spawn_local_worker_hosts,
    start_local_worker_host,
    stop_local_worker_host,
)

BACKENDS = conformance_backends()

needs_persistent = pytest.mark.skipif(
    "persistent" not in BACKENDS,
    reason="persistent backend excluded by REPRO_CONFORMANCE_BACKENDS")
needs_socket = pytest.mark.skipif(
    "socket" not in BACKENDS,
    reason="socket backend excluded by REPRO_CONFORMANCE_BACKENDS")


@pytest.fixture(autouse=True)
def _clear_fault_plan():
    """No chaos scenario may leak its plan into the next test."""
    yield
    install_fault_plan(None)


@pytest.fixture(scope="module")
def reference(tiny_model, v100_cluster):
    """Serial reference run every chaos scenario is compared against."""
    return run_conformance(tiny_model, v100_cluster, "serial", workers=1)


def _free_port() -> int:
    with socket_module.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_no_extra_children(before, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        extra = set(multiprocessing.active_children()) - set(before)
        if not extra:
            return []
        time.sleep(0.05)
    return sorted(p.pid for p in extra)


def _socket_service(cluster, addresses, **kwargs):
    return PredictionService(cluster=cluster, estimator_mode="analytical",
                             backend="socket", max_workers=2,
                             workers=list(addresses), **kwargs)


def _host_env(plan: FaultPlan, worker: int) -> dict:
    return {FAULT_PLAN_ENV: plan.to_json(), FAULT_WORKER_ENV: str(worker)}


class TestFaultPlan:
    def test_rules_validate_eagerly(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(action="explode", job=0)
        with pytest.raises(ValueError, match="needs a trigger"):
            FaultRule(action="kill")
        with pytest.raises(ValueError, match="'when'"):
            FaultRule(action="kill", job=0, when="sometime")
        with pytest.raises(ValueError, match="delays"):
            FaultRule(action="slow", job=0, delay_s=-1.0)

    def test_json_roundtrip_preserves_triggers(self):
        plan = FaultPlan([FaultRule(action="kill", job=2, worker=0),
                          FaultRule(action="drop", epoch=3, once=False)],
                         seed=7)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == 7
        assert [(r.action, r.job, r.epoch, r.worker, r.once)
                for r in clone.rules] == [("kill", 2, None, 0, True),
                                          ("drop", None, 3, None, False)]

    def test_worker_scoped_rules_ignore_other_workers(self):
        plan = FaultPlan([FaultRule(action="slow", job=1, worker=0,
                                    delay_s=0.0)], worker_id=1)
        plan.before_job(1)  # would sleep/fire on worker 0; worker 1 is inert
        assert plan.stats["faults_fired"] == 0
        plan.worker_id = 0
        plan.before_job(1)
        assert plan.stats["faults_fired"] == 1
        plan.before_job(1)  # one-shot: spent rules never re-fire
        assert plan.stats["faults_fired"] == 1


@needs_persistent
class TestPersistentChaos:
    def test_kill_mid_batch_redispatches_without_batch_fallback(
            self, tiny_model, v100_cluster, reference):
        # Worker 0 (fork spawn order) dies just before evaluating job 2 of
        # batch 1.  The victim's leased jobs must re-dispatch to the
        # surviving worker -- never degrade the whole batch to the parent
        # -- and everything stays byte-identical to serial.
        before = multiprocessing.active_children()
        install_fault_plan(FaultPlan([
            FaultRule(action="kill", job=2, when="before", worker=0)]))
        run = run_conformance(tiny_model, v100_cluster, "persistent")
        install_fault_plan(None)
        assert_conformant(reference, run)
        stats = run.resilience_stats
        assert stats["worker_deaths"] >= 1
        assert stats["redispatched_jobs"] >= 1
        tagged = [result for result in run.flat_results
                  if "backend_fallback" in result.metadata]
        assert 1 <= len(tagged) < len(run.flat_results), \
            "only the victim's jobs may degrade, never the whole batch"
        assert _wait_no_extra_children(before) == []

    def test_straggler_past_lease_is_speculatively_redispatched(
            self, tiny_model, v100_cluster, reference):
        # Worker 0 sleeps far past the lease on one job: the parent must
        # re-dispatch that job to the other worker, take the first result,
        # and discard the straggler instead of gating the batch on it.
        before = multiprocessing.active_children()
        install_fault_plan(FaultPlan([
            FaultRule(action="slow", job=2, when="before", delay_s=6.0,
                      worker=0)]))
        service = PredictionService(cluster=v100_cluster,
                                    estimator_mode="analytical",
                                    backend="persistent", max_workers=2,
                                    lease_timeout=1.0)
        started = time.monotonic()
        run = run_conformance(tiny_model, v100_cluster, "persistent",
                              service=service)
        elapsed = time.monotonic() - started
        install_fault_plan(None)
        assert_conformant(reference, run)
        stats = run.resilience_stats
        assert stats["lease_expirations"] >= 1
        assert stats["redispatched_jobs"] >= 1
        assert stats["stragglers_discarded"] >= 1
        assert elapsed < 6.0, \
            "the batch waited out the straggler instead of re-dispatching"
        assert _wait_no_extra_children(before) == []


@needs_socket
class TestSocketChaos:
    def test_kill_mid_batch_redispatches_to_surviving_host(
            self, tiny_model, v100_cluster, reference):
        # Worker host 0 exits (simulated crash) just before job 2; its
        # leased jobs re-dispatch to host 1 and results stay serial-exact.
        plan = FaultPlan([
            FaultRule(action="kill", job=2, when="before", worker=0)])
        with spawn_local_worker_hosts(
                2, env_per_host=[_host_env(plan, 0),
                                 _host_env(plan, 1)]) as hosts:
            run = run_conformance(tiny_model, v100_cluster, "socket",
                                  service=_socket_service(v100_cluster,
                                                          hosts))
        assert_conformant(reference, run)
        stats = run.resilience_stats
        assert stats["worker_deaths"] >= 1
        assert stats["redispatched_jobs"] >= 1
        tagged = [result for result in run.flat_results
                  if "backend_fallback" in result.metadata]
        assert 1 <= len(tagged) < len(run.flat_results)

    def test_corrupted_frame_drops_one_worker_not_the_batch(
            self, tiny_model, v100_cluster, reference):
        # The parent corrupts the wire frame dispatching job 1.  The
        # receiving host must reject the stream and hang up; the parent
        # treats that as a dead worker, re-dispatches, and -- because the
        # host itself survives -- reconnects to it for batch 2.
        install_fault_plan(FaultPlan([FaultRule(action="corrupt", job=1)]))
        with spawn_local_worker_hosts(2) as hosts:
            run = run_conformance(tiny_model, v100_cluster, "socket",
                                  service=_socket_service(v100_cluster,
                                                          hosts))
        install_fault_plan(None)
        assert_conformant(reference, run)
        stats = run.resilience_stats
        assert stats["worker_deaths"] >= 1
        assert stats["reconnects"] >= 1

    def test_dropped_connection_reconnects_next_batch(
            self, tiny_model, v100_cluster, reference):
        # Host 0 drops the connection right after answering job 0 (a lost
        # network path; the host stays up).  Batch 1 survives via
        # re-dispatch; batch 2's warm reconnects to the same host.
        plan = FaultPlan([
            FaultRule(action="drop", job=0, when="after", worker=0)])
        with spawn_local_worker_hosts(
                2, env_per_host=[_host_env(plan, 0),
                                 _host_env(plan, 1)]) as hosts:
            run = run_conformance(tiny_model, v100_cluster, "socket",
                                  service=_socket_service(v100_cluster,
                                                          hosts))
        assert_conformant(reference, run)
        stats = run.resilience_stats
        assert stats["worker_deaths"] >= 1
        assert stats["reconnects"] >= 1

    def test_restarted_worker_host_rejoins_same_run(
            self, tiny_model, v100_cluster, reference):
        # Elastic rejoin: the only worker host is killed between batches
        # and a fresh one comes up on the same port.  The next batch's
        # warm must prune the dead worker, reconnect with backoff, re-warm
        # the newcomer through the ordinary bootstrap/sync path, and serve
        # jobs on it -- all inside one service lifetime.
        port = _free_port()
        batches = default_batches()
        host = start_local_worker_host(port=port)
        try:
            address = host.worker_address
            with _socket_service(v100_cluster, [address]) as service:
                first = service.predict_many(
                    make_jobs(tiny_model, v100_cluster, batches[0]))
                stop_local_worker_host(host)
                host = start_local_worker_host(port=port)
                second = service.predict_many(
                    make_jobs(tiny_model, v100_cluster, batches[1]))
                backend = service.backend_impl
                assert backend.resilience_stats["worker_deaths"] >= 1
                assert backend.resilience_stats["reconnects"] >= 1
                assert [worker.address
                        for worker in backend._workers] == [address], \
                    "the restarted host must be serving again"
                cache_stats = service.cache_stats()
        finally:
            stop_local_worker_host(host)
        assert_results_identical(reference.flat_results, first + second,
                                 backend="socket-rejoin")
        assert cache_stats == reference.cache_stats


def _wide_batch():
    """Six structurally distinct cold configurations in one batch.

    The membership scenarios need a queue of never-sent jobs at the
    moment a join/leave fires (the drain loop only moves *unsent* jobs,
    preserving exactly-once), so they run one wide batch with the
    in-flight window pinned to 1 instead of the standard two-batch
    workload.
    """
    from repro.framework.recipe import TrainingRecipe
    return [
        TrainingRecipe(tensor_parallel=2, pipeline_parallel=2,
                       microbatch_multiplier=2, dtype="float16"),
        TrainingRecipe(tensor_parallel=1, pipeline_parallel=2,
                       microbatch_multiplier=2, dtype="float16"),
        TrainingRecipe(tensor_parallel=2, pipeline_parallel=1,
                       microbatch_multiplier=2, dtype="float16"),
        TrainingRecipe(tensor_parallel=1, pipeline_parallel=1,
                       microbatch_multiplier=1, dtype="float16"),
        TrainingRecipe(tensor_parallel=4, pipeline_parallel=1,
                       microbatch_multiplier=2, dtype="float16"),
        TrainingRecipe(tensor_parallel=4, pipeline_parallel=2,
                       microbatch_multiplier=2, dtype="float16"),
    ]


@needs_socket
class TestMembershipChaos:
    """Elastic membership under chaos: joins and departures mid-batch.

    Every scenario stays byte-identical to a serial run of the same
    batch -- membership only moves never-sent jobs, so placement churn
    cannot change results or cache accounting.
    """

    def _serial_reference(self, tiny_model, v100_cluster):
        return run_conformance(tiny_model, v100_cluster, "serial",
                               workers=1, batches=[_wide_batch()])

    def test_join_mid_batch_is_admitted_and_serves_jobs(
            self, tiny_model, v100_cluster):
        # The pool starts with one host; a second host is already
        # listening when a fault-plan join rule fires on job 0's result.
        # The joiner must bootstrap through the ordinary warm/sync path,
        # steal part of the unsent queue, and serve it -- cleanly enough
        # that the run records no deaths and no parent fallbacks.
        before = multiprocessing.active_children()
        reference = self._serial_reference(tiny_model, v100_cluster)
        initial = start_local_worker_host()
        joiner = start_local_worker_host(port=_free_port())
        try:
            install_fault_plan(FaultPlan([
                FaultRule(action="join", job=0,
                          address=joiner.worker_address)]))
            with _socket_service(v100_cluster,
                                 [initial.worker_address]) as service:
                service.backend_impl.max_inflight = 1
                results = service.predict_many(
                    make_jobs(tiny_model, v100_cluster, _wide_batch()))
                backend = service.backend_impl
                stats = dict(backend.resilience_stats)
                addresses = sorted(worker.address
                                   for worker in backend._workers)
                cache_stats = service.cache_stats()
            install_fault_plan(None)
        finally:
            stop_local_worker_host(initial)
            stop_local_worker_host(joiner)
        assert stats["joins"] >= 1
        assert stats["rebalanced_jobs"] >= 1, \
            "the joiner must take over part of the unsent queue"
        assert stats["worker_deaths"] == 0
        assert stats["parent_evaluations"] == 0
        assert addresses == sorted([initial.worker_address,
                                    joiner.worker_address]), \
            "the joiner must still be a pool member after the batch"
        assert_results_identical(reference.flat_results, results,
                                 backend="socket-join")
        assert cache_stats == reference.cache_stats
        assert _wait_no_extra_children(before) == []

    def test_leave_mid_batch_moves_unsent_jobs_to_survivors(
            self, tiny_model, v100_cluster):
        # Host 0 departs cleanly after job 0's result: its in-flight job
        # may still answer, its unsent queue re-dispatches to host 1,
        # and its address is forgotten -- no deaths, no parent fallback.
        before = multiprocessing.active_children()
        reference = self._serial_reference(tiny_model, v100_cluster)
        with spawn_local_worker_hosts(2) as hosts:
            install_fault_plan(FaultPlan([
                FaultRule(action="leave", job=0, address=hosts[0])]))
            with _socket_service(v100_cluster, hosts) as service:
                service.backend_impl.max_inflight = 1
                results = service.predict_many(
                    make_jobs(tiny_model, v100_cluster, _wide_batch()))
                backend = service.backend_impl
                stats = dict(backend.resilience_stats)
                addresses = [worker.address for worker in backend._workers]
                remembered = list(backend._addresses)
                cache_stats = service.cache_stats()
            install_fault_plan(None)
        assert stats["leaves"] >= 1
        assert stats["worker_deaths"] == 0
        assert stats["parent_evaluations"] == 0
        assert addresses == [hosts[1]], \
            "the departed host must be out of the pool"
        assert hosts[0] not in remembered, \
            "a departed address must not be re-warmed next batch"
        assert_results_identical(reference.flat_results, results,
                                 backend="socket-leave")
        assert cache_stats == reference.cache_stats
        assert _wait_no_extra_children(before) == []

    def test_joiner_that_immediately_dies_is_survived(
            self, tiny_model, v100_cluster):
        # The worst admission: a host joins mid-batch, takes rebalanced
        # jobs, and crashes on the first one it evaluates.  The ordinary
        # death machinery must reclaim its share (re-dispatch, parent as
        # last resort) and the run still ends serial-exact.
        before = multiprocessing.active_children()
        reference = self._serial_reference(tiny_model, v100_cluster)
        suicide = FaultPlan([
            FaultRule(action="kill", job=job, when="before", worker=1)
            for job in range(1, len(_wide_batch()))])
        initial = start_local_worker_host()
        joiner = start_local_worker_host(port=_free_port(),
                                         extra_env=_host_env(suicide, 1))
        try:
            install_fault_plan(FaultPlan([
                FaultRule(action="join", job=0,
                          address=joiner.worker_address)]))
            with _socket_service(v100_cluster,
                                 [initial.worker_address]) as service:
                service.backend_impl.max_inflight = 1
                results = service.predict_many(
                    make_jobs(tiny_model, v100_cluster, _wide_batch()))
                backend = service.backend_impl
                stats = dict(backend.resilience_stats)
                cache_stats = service.cache_stats()
            install_fault_plan(None)
        finally:
            stop_local_worker_host(initial)
            stop_local_worker_host(joiner)
        assert stats["joins"] >= 1
        assert stats["rebalanced_jobs"] >= 1
        assert stats["worker_deaths"] >= 1, \
            "the joiner's crash must be detected as an ordinary death"
        assert stats["redispatched_jobs"] >= 1
        assert_results_identical(reference.flat_results, results,
                                 backend="socket-join-then-die")
        assert cache_stats == reference.cache_stats
        assert _wait_no_extra_children(before) == []
