"""Failure-mode and protocol tests for the multi-host socket backend.

The happy path (byte-identical results + accounting vs. serial) lives in
the cross-backend conformance suite; this module pins down what happens
when worker hosts are missing, die mid-batch, hold stale sync cursors, or
speak the wrong protocol version.  Localhost worker hosts are spawned as
real ``python -m repro worker-host`` subprocesses, so everything here
exercises the genuine wire path (handshake, pickled warm bootstrap, sync
deltas, scatter/gather) -- only the network hop is loopback.
"""

from __future__ import annotations

import os
import socket
from pathlib import Path

import pytest

from backend_conformance import (
    assert_accounting_matches,
    assert_results_identical,
    default_batches,
    make_jobs,
    run_conformance,
)
from repro.core.pipeline import PredictionResult
from repro.service import (
    ArtifactCache,
    BackendWorkerError,
    PredictionService,
    get_backend,
)
from repro.service import wire
from repro.service.worker_host import (
    WORKER_HOST_ENV,
    spawn_local_worker_hosts,
)

TESTS_DIR = Path(__file__).resolve().parent


def _free_port() -> int:
    """A port that was just free (and so refuses connections)."""
    probe = socket.socket()
    try:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


@pytest.fixture(scope="module")
def worker_hosts():
    """Two localhost worker hosts shared by this module's happy paths."""
    with spawn_local_worker_hosts(2, extra_pythonpath=(TESTS_DIR,)) as hosts:
        yield hosts


@pytest.fixture(scope="module")
def reference(tiny_model, v100_cluster):
    return run_conformance(tiny_model, v100_cluster, "serial", workers=1)


class _FlowJob:
    """Picklable job evaluated by :class:`_FlowService` on a worker host."""

    def __init__(self, index: int, boom: bool = False) -> None:
        self.index = index
        self.name = f"flow-{index}"
        #: When True, kills the evaluating process -- but only on a worker
        #: host (``REPRO_WORKER_HOST`` is set there), so the parent's
        #: recovery path can re-evaluate the share locally.
        self.boom = boom


class _FlowService:
    """Minimal picklable service driving the backend protocol directly."""

    def __init__(self, worker_hosts=None) -> None:
        self.max_workers = 2
        self.enable_cache = True
        self.share_provider = False
        self.cache = ArtifactCache()
        self.worker_hosts = worker_hosts

    @property
    def stats(self):
        return self.cache.stats

    def provider(self):
        return None

    def _warm_pipeline(self) -> None:
        pass

    def _artifact_key(self, job):
        return ("flow", job.index)

    def _prediction_key(self, job):
        return ("flow-pred", job.index)

    def predict(self, job):
        if job.boom and os.environ.get(WORKER_HOST_ENV):
            os._exit(17)
        return PredictionResult(
            job_name=job.name, iteration_time=float(job.index),
            total_time=0.0, communication_time=0.0, peak_memory_bytes=0,
            oom=False, metadata={})


class TestWarmFailures:
    def test_refused_connection_at_warm_raises_clearly(self, v100_cluster):
        address = f"127.0.0.1:{_free_port()}"
        with PredictionService(cluster=v100_cluster,
                               estimator_mode="analytical",
                               backend="socket",
                               workers=[address]) as service:
            with pytest.raises(BackendWorkerError,
                               match="could not reach any worker host"):
                service.warm()

    def test_no_configured_hosts_raises_with_guidance(self, v100_cluster,
                                                      monkeypatch):
        monkeypatch.delenv("REPRO_WORKER_HOSTS", raising=False)
        with PredictionService(cluster=v100_cluster,
                               estimator_mode="analytical",
                               backend="socket") as service:
            with pytest.raises(ValueError, match="worker-host|worker hosts"):
                service.warm()

    def test_partial_availability_uses_the_reachable_worker(
            self, tiny_model, v100_cluster, reference, worker_hosts):
        # One live address + one refused one: the pool comes up with the
        # reachable worker, records the failure, and results stay
        # byte-identical to serial.
        addresses = [worker_hosts[0], f"127.0.0.1:{_free_port()}"]
        with PredictionService(cluster=v100_cluster,
                               estimator_mode="analytical",
                               backend="socket",
                               workers=addresses) as service:
            results = service.predict_many(
                make_jobs(tiny_model, v100_cluster, default_batches()[0]))
            backend = service.backend_impl
            assert len(backend._workers) == 1
            assert backend.connect_errors \
                and backend.connect_errors[0][0] == addresses[1]
        assert_results_identical(reference.results[0], results,
                                 backend="socket-partial")

    def test_worker_host_survives_unpicklable_bootstrap(self):
        # These hosts do NOT get the tests directory on their PYTHONPATH,
        # so unpickling a test-module class fails remotely (the shape of a
        # parent/worker version skew).  The host must log, drop only that
        # connection, and keep serving new parents.
        with spawn_local_worker_hosts(1) as hosts:
            conn = wire.connect(hosts[0])
            try:
                conn.send(("warm", _FlowService()))
                with pytest.raises((EOFError, OSError)):
                    conn.recv()  # remote unpickle failed; connection closed
            finally:
                conn.close()
            retry = wire.connect(hosts[0])  # still accepting + handshaking
            retry.close()

    def test_version_mismatch_raises_wire_protocol_error(
            self, v100_cluster, worker_hosts, monkeypatch):
        monkeypatch.setattr(wire, "PROTOCOL", 999)
        with PredictionService(cluster=v100_cluster,
                               estimator_mode="analytical",
                               backend="socket",
                               workers=list(worker_hosts)) as service:
            with pytest.raises(wire.WireProtocolError, match="999"):
                service.warm()


class TestWorkerDeath:
    def test_worker_dying_mid_batch_reevaluates_share_on_parent(self):
        # Private worker hosts: the boom job kills one of them for good
        # (a crashed host, not just a dropped connection), which must not
        # starve the other tests' shared pool.
        with spawn_local_worker_hosts(2,
                                      extra_pythonpath=(TESTS_DIR,)) as hosts:
            backend = get_backend("socket")
            service = _FlowService(worker_hosts=list(hosts))
            try:
                backend.warm(service)
                assert len(backend._workers) == 2
                jobs = [_FlowJob(index) for index in range(8)]
                jobs[3].boom = True  # kills whichever worker host draws it
                results = backend.evaluate(service, jobs)
                assert [result.iteration_time for result in results] == \
                    [float(index) for index in range(8)]
                # The poison job cascades: it is re-dispatched to (and
                # kills) the surviving host too, then lands on the parent
                # -- where boom is inert -- as last resort.  Both deaths
                # are recorded and every worker was discarded.
                assert backend.resilience_stats["worker_deaths"] == 2
                assert backend.resilience_stats["parent_evaluations"] >= 1
                assert len(backend._workers) == 0
            finally:
                backend.close()

    def test_pool_reconnects_after_host_returns(self, worker_hosts):
        # A worker-host outlives its parents: after one parent's batch (and
        # close), a new service can warm against the same addresses.
        for _ in range(2):
            backend = get_backend("socket")
            service = _FlowService(worker_hosts=list(worker_hosts))
            try:
                results = backend.evaluate(service,
                                           [_FlowJob(i) for i in range(4)])
                assert [r.iteration_time for r in results] == \
                    [0.0, 1.0, 2.0, 3.0]
            finally:
                backend.close()


class TestSyncProtocol:
    def test_stale_epoch_forces_full_snapshot_resync(
            self, tiny_model, v100_cluster, reference, worker_hosts):
        batches = default_batches()
        with PredictionService(cluster=v100_cluster,
                               estimator_mode="analytical",
                               backend="socket",
                               workers=list(worker_hosts)) as service:
            first = service.predict_many(
                make_jobs(tiny_model, v100_cluster, batches[0]))
            # Corrupt every worker's sync cursor: the journal cannot serve
            # an epoch it never issued, so the next sync must replace the
            # remote caches wholesale instead of trusting them.
            for worker in service.backend_impl._workers:
                worker.epoch = 10 ** 9
            second = service.predict_many(
                make_jobs(tiny_model, v100_cluster, batches[1]))
            assert service.backend_impl.sync_stats["full_syncs"] >= 1
            assert_results_identical(reference.flat_results, first + second,
                                     backend="socket-resync")

    def test_cross_batch_sync_ships_deltas_not_snapshots(
            self, tiny_model, v100_cluster, reference, worker_hosts,
            monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_HOSTS", ",".join(worker_hosts))
        run = run_conformance(tiny_model, v100_cluster, "socket")
        assert run.sync_stats["batches"] >= 2
        assert run.sync_stats["delta_syncs"] >= 1
        assert run.sync_stats["full_syncs"] == 0
        assert_accounting_matches(reference, run)
