"""Scheduler x backend conformance matrix.

Runs the two-batch conformance workload through every covered placement
policy under every covered pooled backend and asserts the full contract
(byte-identical results, serial-exact cache accounting, placement
counters surfaced) -- both on a clean pool and while a seeded fault plan
kills worker 0 mid-batch.  ``REPRO_CONFORMANCE_SCHEDULERS`` and
``REPRO_CONFORMANCE_BACKENDS`` narrow the matrix; CI's ``scheduler`` job
runs the full one.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from backend_conformance import assert_conformant, run_conformance
from repro.service import (
    FaultPlan,
    FaultRule,
    install_fault_plan,
)
from repro.service.faults import FAULT_PLAN_ENV, FAULT_WORKER_ENV
from repro.service.scheduling import get_scheduler, validate_scheduler
from scheduler_conformance import (
    assert_placement_counters,
    conformance_schedulers,
    run_scheduler_conformance,
    scheduler_backends,
)
from repro.service.worker_host import spawn_local_worker_hosts

SCHEDULERS = conformance_schedulers()
BACKENDS = scheduler_backends()


@pytest.fixture(autouse=True)
def _clear_fault_plan():
    yield
    install_fault_plan(None)


@pytest.fixture(scope="module", autouse=True)
def socket_worker_hosts():
    """Clean-pool socket runs share one pair of localhost worker hosts."""
    if "socket" not in BACKENDS:
        yield None
        return
    with spawn_local_worker_hosts(2) as addresses:
        previous = os.environ.get("REPRO_WORKER_HOSTS")
        os.environ["REPRO_WORKER_HOSTS"] = ",".join(addresses)
        try:
            yield addresses
        finally:
            if previous is None:
                os.environ.pop("REPRO_WORKER_HOSTS", None)
            else:
                os.environ["REPRO_WORKER_HOSTS"] = previous


@pytest.fixture(scope="module")
def reference(tiny_model, v100_cluster):
    """Serial reference run every policy is compared against."""
    return run_conformance(tiny_model, v100_cluster, "serial", workers=1)


def _wait_no_extra_children(before, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        extra = set(multiprocessing.active_children()) - set(before)
        if not extra:
            return []
        time.sleep(0.05)
    return sorted(p.pid for p in extra)


class TestSchedulerRegistry:
    def test_every_registered_policy_is_covered_by_default(self, monkeypatch):
        from repro.service import SCHEDULER_NAMES
        monkeypatch.delenv("REPRO_CONFORMANCE_SCHEDULERS", raising=False)
        assert conformance_schedulers() == SCHEDULER_NAMES
        assert set(SCHEDULER_NAMES) == {"round_robin", "least_loaded",
                                        "locality"}

    def test_unknown_scheduler_filter_is_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONFORMANCE_SCHEDULERS", "rond_robin")
        with pytest.raises(ValueError, match="unknown policies"):
            conformance_schedulers()

    def test_validate_and_get_agree_with_registry(self):
        for name in SCHEDULERS:
            assert validate_scheduler(name) == name
            assert get_scheduler(name).name == name
        with pytest.raises(ValueError, match="unknown scheduler"):
            validate_scheduler("first_fit")


class TestSchedulerConformance:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_policy_conformant_with_serial(self, tiny_model, v100_cluster,
                                           reference, backend, scheduler):
        run = run_scheduler_conformance(tiny_model, v100_cluster, backend,
                                        scheduler)
        assert_conformant(reference, run)
        assert_placement_counters(run, scheduler)

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_policy_conformant_under_worker_death(
            self, tiny_model, v100_cluster, reference, backend, scheduler):
        # Worker 0 dies just before evaluating job 2 of batch 1 -- the
        # policy's placement must not leak into results even while the
        # drain loop re-dispatches the victim's leased jobs.
        before = multiprocessing.active_children()
        plan = FaultPlan([
            FaultRule(action="kill", job=2, when="before", worker=0)])
        if backend == "socket":
            env = [{FAULT_PLAN_ENV: plan.to_json(), FAULT_WORKER_ENV: "0"},
                   {FAULT_PLAN_ENV: plan.to_json(), FAULT_WORKER_ENV: "1"}]
            with spawn_local_worker_hosts(2, env_per_host=env) as hosts:
                run = run_scheduler_conformance(
                    tiny_model, v100_cluster, backend, scheduler,
                    worker_hosts=hosts)
        else:
            install_fault_plan(plan)
            run = run_scheduler_conformance(tiny_model, v100_cluster,
                                            backend, scheduler)
            install_fault_plan(None)
        assert_conformant(reference, run)
        assert_placement_counters(run, scheduler)
        assert run.resilience_stats["worker_deaths"] >= 1
        assert run.resilience_stats["redispatched_jobs"] >= 1
        assert _wait_no_extra_children(before) == []
