"""Integration tests for the long-lived prediction server.

The contract under test: one warm server multiplexing many concurrent
clients is indistinguishable (result-wise) from each client running its
own serial service -- plus the server-only behaviours: cross-client
request coalescing, admission control, round-robin fairness, reconnect
after restart, and graceful shutdown that leaves nothing running.
"""

from __future__ import annotations

import multiprocessing
import subprocess
import threading
import time
from pathlib import Path
from typing import List

import pytest

from backend_conformance import (
    assert_results_identical,
    default_batches,
    make_jobs,
)
from repro.service import (
    PredictionClient,
    PredictionService,
    ServerBusyError,
)
from repro.service import wire
from repro.service.server import (
    REPLY_KINDS,
    REQUEST_KINDS,
    start_local_server,
    start_server_thread,
    stop_local_server,
)


def _serial_service(cluster) -> PredictionService:
    return PredictionService(cluster=cluster, estimator_mode="analytical",
                             backend="serial")


def _wait_until(predicate, timeout: float = 30.0, interval: float = 0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise TimeoutError("condition not reached in time")


class GatedService(PredictionService):
    """A service whose first ``predict_many`` blocks until released.

    Lets tests pin a batch in flight deterministically: the server's
    executor thread parks on ``gate`` while the event loop keeps
    accepting and queueing requests.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.entered = threading.Event()
        self.gate = threading.Event()
        self._gate_used = False

    def predict_many(self, jobs):
        if not self._gate_used:
            self._gate_used = True
            self.entered.set()
            assert self.gate.wait(timeout=60.0), "gate never released"
        return super().predict_many(jobs)

    def __reduce__(self):  # pragma: no cover - safety: never ship this
        raise NotImplementedError("GatedService is test-local")


class TestConcurrentClients:
    def test_eight_concurrent_clients_byte_identical_to_serial(
            self, tiny_model, v100_cluster):
        server = start_server_thread(_serial_service(v100_cluster))
        n_clients = 8
        batches = default_batches()
        # Distinct global batch sizes make each client's workload disjoint
        # from the others', so per-client cache accounting (and therefore
        # every result's service_cache tag) matches a private serial run.
        served: List[List] = [None] * n_clients
        errors: List[BaseException] = []

        def run_client(position: int) -> None:
            try:
                with PredictionClient(server.address) as client:
                    flat = []
                    for recipes in batches:
                        jobs = make_jobs(tiny_model, v100_cluster, recipes,
                                         global_batch_size=16 * (position + 1))
                        flat.extend(client.predict_many(jobs))
                    served[position] = flat
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        try:
            threads = [threading.Thread(target=run_client, args=(position,))
                       for position in range(n_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            assert not errors, errors
            for position in range(n_clients):
                with _serial_service(v100_cluster) as reference:
                    expected = []
                    for recipes in batches:
                        jobs = make_jobs(tiny_model, v100_cluster, recipes,
                                         global_batch_size=16 * (position + 1))
                        expected.extend(reference.predict_many(jobs))
                assert_results_identical(expected, served[position],
                                         backend=f"server-client-{position}")
            with PredictionClient(server.address) as client:
                stats = client.stats()
            assert stats["server"]["requests"] == n_clients * len(batches)
            assert stats["server"]["jobs"] == \
                n_clients * sum(len(recipes) for recipes in batches)
            assert stats["throughput"]["trials_per_sec"] > 0.0
        finally:
            server.stop_threadsafe()

    def test_evaluator_runs_search_batches_through_server(
            self, tiny_model, v100_cluster):
        from repro.search import MayaTrialEvaluator

        server = start_server_thread(_serial_service(v100_cluster))
        recipes = default_batches()[0]
        try:
            with MayaTrialEvaluator(tiny_model, v100_cluster, 16,
                                    server=server.address) as remote:
                trials = remote.evaluate_many(recipes)
                remote_cache = remote.cache_stats()
            with MayaTrialEvaluator(tiny_model, v100_cluster, 16,
                                    estimator_mode="analytical",
                                    backend="serial") as local:
                expected = local.evaluate_many(recipes)
            assert [trial.iteration_time for trial in trials] == \
                [trial.iteration_time for trial in expected]
            assert [trial.cache for trial in trials] == \
                [trial.cache for trial in expected]
            assert remote_cache["lookups"] > 0
        finally:
            server.stop_threadsafe()


class TestCoalescing:
    def test_cross_client_requests_for_same_job_coalesce(
            self, tiny_model, v100_cluster, basic_recipe):
        service = GatedService(cluster=v100_cluster,
                               estimator_mode="analytical", backend="serial")
        server = start_server_thread(service)
        job = lambda: make_jobs(tiny_model, v100_cluster, [basic_recipe])  # noqa: E731
        outcomes: dict = {}

        def run_client(name: str) -> None:
            with PredictionClient(server.address) as client:
                outcomes[name] = client.predict_many(job())

        try:
            # Client A's batch enters evaluation and parks on the gate ...
            first = threading.Thread(target=run_client, args=("a",))
            first.start()
            assert service.entered.wait(timeout=60.0)
            # ... while B and C queue requests for the *same* job signature.
            others = [threading.Thread(target=run_client, args=(name,))
                      for name in ("b", "c")]
            for thread in others:
                thread.start()
            _wait_until(lambda: server.queue_depth == 2)
            service.gate.set()
            first.join(timeout=60)
            for thread in others:
                thread.join(timeout=60)
            fingerprints = {name: results[0].iteration_time
                            for name, results in outcomes.items()}
            assert len(outcomes) == 3
            assert len(set(fingerprints.values())) == 1
            with PredictionClient(server.address) as client:
                counters = client.server_stats()
            # B and C landed in one merged round: one of them contributed
            # the key, the other coalesced onto it cross-client.
            assert counters["coalesced_jobs"] >= 1
            assert counters["cross_client_coalesced"] >= 1
        finally:
            service.gate.set()
            server.stop_threadsafe()


class TestAdmissionControl:
    def test_queue_full_returns_structured_busy(
            self, tiny_model, v100_cluster, basic_recipe):
        service = GatedService(cluster=v100_cluster,
                               estimator_mode="analytical", backend="serial")
        server = start_server_thread(service, max_pending=2)
        jobs = make_jobs(tiny_model, v100_cluster, [basic_recipe])
        filler = None
        try:
            # Occupy the evaluation slot, then fill the queue to its bound
            # with raw wire requests (sent, not yet awaited).
            filler = wire.connect(server.address)
            filler.send(("predict", 1, jobs))
            assert service.entered.wait(timeout=60.0)
            filler.send(("predict", 2, jobs))
            filler.send(("predict", 3, jobs))
            _wait_until(lambda: server.queue_depth == 2)
            with PredictionClient(server.address, busy_retries=0) as client:
                with pytest.raises(ServerBusyError) as excinfo:
                    client.predict_many(jobs)
            info = excinfo.value.info
            assert info["reason"] == "queue-full"
            assert info["queue_depth"] == 2
            assert info["max_pending"] == 2
            assert info["retry_after_s"] > 0
            # Releasing the gate drains the queue; every accepted request
            # still gets its results.
            service.gate.set()
            replies = {}
            while len(replies) < 3:
                reply = filler.recv()
                assert reply[0] == "results", reply
                replies[reply[1]] = reply[2]
            assert set(replies) == {1, 2, 3}
            # A client retrying busy replies (the default) now succeeds.
            with PredictionClient(server.address) as client:
                assert len(client.predict_many(jobs)) == 1
        finally:
            service.gate.set()
            if filler is not None:
                filler.close()
            server.stop_threadsafe()


class TestRestartAndShutdown:
    def test_client_reconnects_after_server_restart(self, tiny_model,
                                                    v100_cluster):
        recipes = default_batches()[0][:2]
        jobs = make_jobs(tiny_model, v100_cluster, recipes)
        first = start_local_server()
        address = first.server_address
        port = int(address.rsplit(":", 1)[1])
        second = None
        try:
            client = PredictionClient(address, reconnect_attempts=12)
            before = client.predict_many(jobs)
            stop_local_server(first)
            assert first.poll() is not None  # no leaked process
            second = start_local_server(port=port)
            after = client.predict_many(jobs)
            client.close()
            assert client.reconnect_count >= 1
            assert_results_identical(before, after, backend="server-restart")
        finally:
            if first.poll() is None:
                stop_local_server(first)
            if second is not None:
                stop_local_server(second)

    def test_shutdown_drains_queued_requests_then_refuses(
            self, tiny_model, v100_cluster, basic_recipe):
        service = GatedService(cluster=v100_cluster,
                               estimator_mode="analytical", backend="serial")
        server = start_server_thread(service)
        jobs = make_jobs(tiny_model, v100_cluster, [basic_recipe])
        in_flight: List = []
        queued = None
        try:
            def run_first() -> None:
                with PredictionClient(server.address) as client:
                    in_flight.extend(client.predict_many(jobs))

            first = threading.Thread(target=run_first)
            first.start()
            assert service.entered.wait(timeout=60.0)
            queued = wire.connect(server.address)
            queued.send(("predict", 7, jobs))
            _wait_until(lambda: server.queue_depth == 1)

            # Connect (and handshake) before the shutdown begins: the
            # listener closes immediately, but established connections
            # are answered until the drain finishes.
            late = PredictionClient(server.address, reconnect_attempts=0)
            late.stats()

            stopper = threading.Thread(target=server.stop_threadsafe)
            stopper.start()
            _wait_until(lambda: server._shutting_down)
            # New predict requests are refused while draining ...
            with late:
                with pytest.raises(ConnectionError, match="shutting down"):
                    late.predict_many(jobs)
            # ... but everything already queued is still evaluated.
            service.gate.set()
            first.join(timeout=60)
            reply = queued.recv()
            assert reply[0] == "results" and reply[1] == 7
            assert len(reply[2]) == 1
            stopper.join(timeout=60)
            assert in_flight and len(in_flight) == 1
        finally:
            service.gate.set()
            if queued is not None:
                queued.close()
            server.stop_threadsafe()

    def test_shutdown_closes_pooled_backend_without_leaks(
            self, tiny_model, v100_cluster):
        service = PredictionService(cluster=v100_cluster,
                                    estimator_mode="analytical",
                                    backend="persistent", max_workers=2)
        server = start_server_thread(service)
        try:
            recipes = default_batches()[0]
            with PredictionClient(server.address) as client:
                results = client.predict_many(
                    make_jobs(tiny_model, v100_cluster, recipes))
                assert len(results) == len(recipes)
                stats = client.stats()
                assert stats["server"]["pool_size"] == 2
                assert "worker_deaths" in stats["resilience"]
                client.shutdown_server()
        finally:
            server.stop_threadsafe()
        _wait_until(lambda: not multiprocessing.active_children(),
                    timeout=30.0)


class TestProtocolSurface:
    def test_unknown_request_kind_gets_error_reply(self, v100_cluster):
        server = start_server_thread(_serial_service(v100_cluster))
        try:
            conn = wire.connect(server.address)
            try:
                conn.send(("frobnicate", 5))
                reply = conn.recv()
                assert reply[0] == "error" and reply[1] == 5
                assert "frobnicate" in reply[2]
            finally:
                conn.close()
        finally:
            server.stop_threadsafe()

    def test_pickle_first_client_is_refused(self, v100_cluster):
        # The pre-handshake rule holds server-side too: a client whose
        # first frame is a pickle is disconnected, not deserialised.
        server = start_server_thread(_serial_service(v100_cluster))
        try:
            import socket as socket_module
            host, port = wire.parse_address(server.address)
            sock = socket_module.create_connection((host, port), timeout=10)
            conn = wire.WireConnection(sock)
            try:
                conn.recv_json_only()  # server hello arrives first
                conn.send(("predict", 1, []))  # pickle instead of a hello
                with pytest.raises((EOFError, OSError)):
                    conn.poll(10.0)
                    conn.recv()
            finally:
                conn.close()
        finally:
            server.stop_threadsafe()

    def test_vocabulary_constants_are_complete(self):
        assert set(REQUEST_KINDS) == {"predict", "stats", "shutdown"}
        assert set(REPLY_KINDS) == \
            {"results", "stats", "busy", "error", "shutting-down"}


class TestRepoHygiene:
    def test_no_tracked_bytecode(self):
        repo_root = Path(__file__).resolve().parents[1]
        tracked = subprocess.run(
            ["git", "ls-files"], cwd=repo_root, text=True,
            capture_output=True, check=True).stdout.splitlines()
        bytecode = [path for path in tracked
                    if path.endswith(".pyc") or "__pycache__" in path]
        assert bytecode == [], \
            f"bytecode files are tracked in git: {bytecode}"
