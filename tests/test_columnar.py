"""Tests for the structure-of-arrays trace representation.

Covers the column build itself (dtypes, memoization), the wire payload
round-trip (``encode_worker_trace`` / ``decode_worker_trace`` must be
``to_json``-exact), the vectorized host-delay materialization against the
scalar reference, and fingerprint *decision* agreement with the
per-object collator walk (values differ by design; equality semantics
must not).
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.collator import (  # noqa: E402
    _ITERATION_MARKER,
    _range_fingerprint_objects,
)
from repro.core.columnar import (  # noqa: E402
    COLUMN_DTYPES,
    F_HOST_SEQ,
    K_HOST_DELAY,
    KIND_CODES,
    columnar_worker_trace,
    decode_worker_trace,
    encode_worker_trace,
    materialize_host_delays,
    range_fingerprint,
)
from repro.core.trace import TraceEvent, TraceEventKind, WorkerTrace  # noqa: E402
from repro.hardware.host_model import (  # noqa: E402
    HOST_MODEL_METADATA_KEY,
    host_delay_materializer,
)

from test_simulator import (  # noqa: E402
    build_random_job,
    build_random_periodic_job,
    collective,
    event_record,
    host_delay,
    jitterize_host_delays,
    kernel,
    wait_event,
)


def one_of_every_kind_trace() -> WorkerTrace:
    """A trace exercising every event kind and every optional field shape."""
    trace = WorkerTrace(rank=0, device=0, peak_memory_bytes=123, oom=False,
                        metadata={"note": "fixture"})
    events = [
        kernel(stream=2, duration=3.0 / 64.0),
        TraceEvent(kind=TraceEventKind.MEMCPY, api="cudaMemcpyAsync",
                   device=0, stream=1, params={"duration": 0.25,
                                               "bytes": 4096.0}),
        TraceEvent(kind=TraceEventKind.MEMSET, api="cudaMemsetAsync",
                   device=0, stream=1, params={"duration": 0.125}),
        # None stream (host-side serialization of a device op).
        TraceEvent(kind=TraceEventKind.KERNEL, api="k2", device=0,
                   stream=None, kernel_class="gemm",
                   params={"duration": 1.0, "m": 64, "n": 64.0}),
        host_delay(0.5),                                     # legacy delay
        TraceEvent(kind=TraceEventKind.HOST_DELAY, api="hostDelay",
                   device=0, duration=0.25,
                   params={"call_class": "optimizer", "after": "k",
                           "seq": 5}),                       # structured
        TraceEvent(kind=TraceEventKind.EVENT_RECORD, api="cudaEventCreate",
                   device=0, event=9, params={"create": True}),
        event_record(9, version=1, stream=0),
        wait_event(9, version=1, stream=2),
        TraceEvent(kind=TraceEventKind.EVENT_SYNCHRONIZE,
                   api="cudaEventSynchronize", device=0, event=9,
                   params={"version": 1}),
        TraceEvent(kind=TraceEventKind.EVENT_RECORD, api="cudaEventDestroy",
                   device=0, event=9, params={"destroy": True}),
        collective("all_reduce", 0, [0, 1], seq=1, duration=2.0),
        collective("send", 0, [0, 1], seq=2, duration=1.0, peer=1),
        TraceEvent(kind=TraceEventKind.STREAM_SYNCHRONIZE,
                   api="cudaStreamSynchronize", device=0, stream=1),
        TraceEvent(kind=TraceEventKind.DEVICE_SYNCHRONIZE,
                   api="cudaDeviceSynchronize", device=0),
        TraceEvent(kind=TraceEventKind.MARKER, api="marker", device=0,
                   params={"label": "iteration-0-start"}),
    ]
    for event in events:
        trace.append(event)
    return trace


class TestColumnBuild:
    def test_kind_codes_follow_declaration_order(self):
        assert [KIND_CODES[kind] for kind in TraceEventKind] == \
            list(range(len(TraceEventKind)))

    def test_all_columns_little_endian(self):
        for name, dtype in COLUMN_DTYPES:
            assert dtype.startswith("<"), \
                f"column {name} dtype {dtype} must pin little-endian"

    def test_columns_memoized_per_trace(self):
        trace = one_of_every_kind_trace()
        first = columnar_worker_trace(trace)
        assert first is columnar_worker_trace(trace)
        assert first.n == len(trace.events)

    def test_template_pool_distinguishes_int_from_float(self):
        trace = WorkerTrace(rank=0, device=0)
        a = kernel(duration=1.0)
        a.params = {"duration": 1.0, "shape": 1}
        b = kernel(duration=1.0)
        b.params = {"duration": 1.0, "shape": 1.0}
        trace.append(a)
        trace.append(b)
        cols = columnar_worker_trace(trace)
        assert cols.template[0] != cols.template[1]
        decoded = decode_worker_trace(encode_worker_trace(trace))
        assert type(decoded.events[0].params["shape"]) is int
        assert type(decoded.events[1].params["shape"]) is float


class TestWirePayload:
    def test_round_trip_every_kind_to_json_exact(self):
        trace = one_of_every_kind_trace()
        payload = encode_worker_trace(trace)
        decoded = decode_worker_trace(payload)
        assert decoded.to_json() == trace.to_json()
        # The decoded trace arrives with its columnar memo installed.
        assert columnar_worker_trace(decoded) is not None

    def test_round_trip_empty_trace(self):
        trace = WorkerTrace(rank=3, device=1, metadata={"empty": True})
        decoded = decode_worker_trace(encode_worker_trace(trace))
        assert decoded.to_json() == trace.to_json()
        assert decoded.events == []

    @pytest.mark.parametrize("seed", range(8))
    def test_round_trip_random_traces(self, seed):
        job = build_random_job(seed, steps=60)
        for trace in job.workers.values():
            decoded = decode_worker_trace(encode_worker_trace(trace))
            assert decoded.to_json() == trace.to_json()

    def test_payload_smaller_than_pickle_on_steady_state_trace(self):
        # Steady-state traces repeat one window, so the template pool
        # dedups across iterations and the raw columns win.  (A trace of
        # all-distinct params has nothing to dedup; that shape is not what
        # artifact shipping carries.)
        import pickle

        job = build_random_periodic_job(0, iterations=16)
        trace = next(iter(job.workers.values()))
        payload = encode_worker_trace(trace)
        assert len(payload) < len(pickle.dumps(trace, protocol=5))

    def test_memo_does_not_ride_the_plain_pickle(self):
        import pickle

        job = build_random_job(0, steps=60)
        trace = next(iter(job.workers.values()))
        before = len(pickle.dumps(trace, protocol=5))
        assert columnar_worker_trace(trace) is not None
        assert len(pickle.dumps(trace, protocol=5)) == before


class TestHostDelayMaterialization:
    @pytest.mark.parametrize("seed", range(6))
    def test_vectorized_matches_scalar_reference(self, seed):
        job = jitterize_host_delays(build_random_job(seed, steps=80), seed)
        for trace in job.workers.values():
            cols = columnar_worker_trace(trace)
            vec = materialize_host_delays(cols, trace.metadata,
                                          len(trace.events))
            materialize = host_delay_materializer(trace.metadata)
            ref = [0.0] * len(trace.events)
            for event in trace.events:
                if event.kind is TraceEventKind.HOST_DELAY:
                    ref[event.seq] = materialize(event)
            assert vec == ref

    def test_legacy_delays_replay_by_value(self):
        trace = WorkerTrace(rank=0, device=0,
                            metadata={HOST_MODEL_METADATA_KEY:
                                      {"name": "h", "jitter": 0.2}})
        trace.append(host_delay(0.75))
        cols = columnar_worker_trace(trace)
        assert not (cols.flags[0] & F_HOST_SEQ)
        assert cols.kind[0] == K_HOST_DELAY
        assert materialize_host_delays(cols, trace.metadata, 1) == [0.75]


class TestFingerprintAgreement:
    """Columnar and per-object fingerprints: same decisions, any values."""

    @pytest.mark.parametrize("seed", range(10))
    def test_equality_decisions_match_object_walk(self, seed):
        job = build_random_periodic_job(seed, iterations=6)
        for trace in job.workers.values():
            cols = columnar_worker_trace(trace)
            n = len(trace.events)
            rng = random.Random(seed)
            ranges = [(0, n), (0, n // 2), (n // 2, n)]
            for _ in range(12):
                lo = rng.randrange(n)
                hi = rng.randrange(lo, n + 1)
                ranges.append((lo, hi))
            objects = [_range_fingerprint_objects(trace, lo, hi)
                       for lo, hi in ranges]
            columns = [range_fingerprint(cols, lo, hi, _ITERATION_MARKER)
                       for lo, hi in ranges]
            for i in range(len(ranges)):
                assert (objects[i] is None) == (columns[i] is None), \
                    f"range {ranges[i]}: periodicity verdicts diverge"
                for j in range(i + 1, len(ranges)):
                    if objects[i] is None or objects[j] is None:
                        continue
                    assert ((objects[i] == objects[j])
                            == (columns[i] == columns[j])), \
                        f"ranges {ranges[i]} vs {ranges[j]}: " \
                        f"equality decisions diverge"

    def test_cross_range_wait_is_not_periodic(self):
        trace = WorkerTrace(rank=0, device=0)
        trace.append(event_record(1, version=1, stream=0))
        trace.append(kernel())
        trace.append(wait_event(1, version=1, stream=1))
        cols = columnar_worker_trace(trace)
        # The wait's record lies outside [1, 3): both walks must say None.
        assert _range_fingerprint_objects(trace, 1, 3) is None
        assert range_fingerprint(cols, 1, 3, _ITERATION_MARKER) is None
        # Record inside the range: both walks fingerprint it.
        assert _range_fingerprint_objects(trace, 0, 3) is not None
        assert range_fingerprint(cols, 0, 3, _ITERATION_MARKER) is not None
