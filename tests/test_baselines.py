"""Tests for the Calculon / AMPeD / Proteus baseline re-implementations."""

from __future__ import annotations

import math

import pytest

from repro.baselines import ALL_BASELINES, all_baselines, get_baseline
from repro.baselines.amped import AMPeDBaseline
from repro.baselines.base import WorkloadShape
from repro.baselines.calculon import CalculonBaseline
from repro.baselines.proteus import ProteusBaseline
from repro.framework.recipe import TrainingRecipe
from repro.hardware.cluster import get_cluster
from repro.workloads.models import get_transformer


V100 = get_cluster("v100-8")
H100 = get_cluster("h100-64")
MODEL = get_transformer("gpt3-2.7b")
SMALL_MODEL = get_transformer("gpt3-1.3b")
BIG_MODEL = get_transformer("gpt3-18.4b")
BASIC = TrainingRecipe(tensor_parallel=4, pipeline_parallel=2,
                       microbatch_multiplier=2, dtype="float16")
#: A configuration every baseline supports and that fits in V100 memory
#: (small micro-batches, no recomputation / sequence parallelism).
FEASIBLE = TrainingRecipe(tensor_parallel=4, pipeline_parallel=2,
                          microbatch_multiplier=8, dtype="float16")
FEASIBLE_BATCH = 64


class TestRegistry:
    def test_all_baselines_instantiable(self):
        systems = all_baselines()
        assert {system.name for system in systems} == \
            {"Calculon", "AMPeD", "Proteus"}
        assert len(ALL_BASELINES) == 3

    def test_lookup_by_name(self):
        assert isinstance(get_baseline("calculon"), CalculonBaseline)
        assert isinstance(get_baseline("AMPeD"), AMPeDBaseline)
        assert isinstance(get_baseline("proteus"), ProteusBaseline)
        with pytest.raises(KeyError):
            get_baseline("daydream")


class TestWorkloadShape:
    def test_derived_quantities(self):
        shape = WorkloadShape(model=MODEL, recipe=BASIC, cluster=V100,
                              global_batch_size=256)
        assert shape.dp == 1
        assert shape.num_microbatches == 4
        assert shape.micro_batch_size == 64
        assert shape.microbatch_flops_per_stage() > 0
        assert shape.tp_collective_bytes_per_microbatch() > 0

    def test_bubble_fraction(self):
        no_pp = TrainingRecipe(tensor_parallel=8, pipeline_parallel=1)
        shape = WorkloadShape(MODEL, no_pp, V100, 256)
        assert shape.pipeline_bubble_fraction() == 0.0
        with_pp = TrainingRecipe(tensor_parallel=2, pipeline_parallel=4,
                                 microbatch_multiplier=2)
        shape_pp = WorkloadShape(MODEL, with_pp, V100, 256)
        assert shape_pp.pipeline_bubble_fraction() == pytest.approx(3 / 8)

    def test_interleaving_shrinks_bubble(self):
        base = TrainingRecipe(tensor_parallel=2, pipeline_parallel=4,
                              microbatch_multiplier=2)
        interleaved = base.replace(virtual_stages=2)
        assert WorkloadShape(MODEL, interleaved, V100, 256).pipeline_bubble_fraction() \
            < WorkloadShape(MODEL, base, V100, 256).pipeline_bubble_fraction()

    def test_memory_model_flags_oversized_configs(self):
        tight = TrainingRecipe(tensor_parallel=1, pipeline_parallel=1)
        shape = WorkloadShape(BIG_MODEL, tight, V100, 512)
        assert shape.predicts_oom()
        relaxed = TrainingRecipe(tensor_parallel=8, pipeline_parallel=8,
                                 microbatch_multiplier=4,
                                 activation_recomputation=True)
        shape_big = WorkloadShape(BIG_MODEL, relaxed, H100, 512)
        assert not shape_big.predicts_oom()


class TestFeatureCoverage:
    """Table 1: which knobs each system can express."""

    def test_amped_rejects_advanced_knobs(self):
        amped = AMPeDBaseline()
        assert not amped.supports(BASIC.replace(sequence_parallelism=True), V100)
        assert not amped.supports(BASIC.replace(activation_recomputation=True),
                                  V100)
        assert not amped.supports(BASIC.replace(virtual_stages=2), V100)
        assert not amped.supports(BASIC.replace(distributed_optimizer=True),
                                  V100)
        assert amped.supports(BASIC, V100)

    def test_proteus_rejects_sequence_parallel_and_grad_accum(self):
        proteus = ProteusBaseline()
        assert not proteus.supports(BASIC.replace(sequence_parallelism=True),
                                    V100)
        assert not proteus.supports(
            TrainingRecipe(tensor_parallel=4, pipeline_parallel=1,
                           microbatch_multiplier=4), V100)
        assert proteus.supports(BASIC.replace(activation_recomputation=True),
                                V100)

    def test_calculon_covers_most_knobs_but_not_bf16_on_volta(self):
        calculon = CalculonBaseline()
        assert calculon.supports(BASIC.replace(sequence_parallelism=True,
                                               activation_recomputation=True),
                                 H100)
        assert not calculon.supports(BASIC.replace(dtype="bfloat16"), V100)

    def test_maya_supports_everything_baselines_do_not(self):
        # The union of unsupported-by-some-baseline knobs is still valid for
        # the Maya pipeline (validated elsewhere end-to-end); here we check
        # the coverage metadata used to build Table 1.
        maya_features = {"data_parallel", "tensor_parallel", "pipeline_parallel",
                         "sequence_parallel", "pipeline_interleaving",
                         "distributed_optimizer", "activation_recomputation",
                         "gradient_accumulation"}
        for system in all_baselines():
            assert system.supported_features <= maya_features


class TestPredictionBehaviour:
    def test_all_baselines_positive_on_supported_config(self):
        for system in all_baselines():
            prediction = system.predict(SMALL_MODEL, FEASIBLE, V100,
                                        FEASIBLE_BATCH)
            assert prediction.usable
            assert prediction.iteration_time > 0
            assert prediction.breakdown["compute"] > 0

    def test_amped_overestimates_relative_to_calculon(self):
        amped = AMPeDBaseline().predict(SMALL_MODEL, FEASIBLE, V100,
                                        FEASIBLE_BATCH)
        calculon = CalculonBaseline().predict(SMALL_MODEL, FEASIBLE, V100,
                                              FEASIBLE_BATCH)
        assert amped.iteration_time > 1.5 * calculon.iteration_time

    def test_proteus_degrades_across_architectures(self):
        proteus = ProteusBaseline()
        recipe = TrainingRecipe(tensor_parallel=4, pipeline_parallel=2,
                                microbatch_multiplier=4, dtype="bfloat16",
                                activation_recomputation=True)
        v100_pred = proteus.predict(SMALL_MODEL,
                                    recipe.replace(dtype="float16"),
                                    V100, FEASIBLE_BATCH)
        h100_pred = proteus.predict(BIG_MODEL, recipe, H100, 512)
        assert v100_pred.usable and h100_pred.usable
        # The cross-architecture mis-calibration factor only applies off-Volta.
        assert proteus._cross_arch_factor(V100, "key") == 1.0
        assert proteus._cross_arch_factor(H100, "key") > 1.0

    def test_oom_configs_rejected_by_memory_model(self):
        tight = TrainingRecipe(tensor_parallel=1, pipeline_parallel=1,
                               dtype="float16")
        for system in all_baselines():
            prediction = system.predict(BIG_MODEL, tight, V100, 512)
            assert not prediction.usable

    def test_unsupported_config_is_flagged(self):
        prediction = AMPeDBaseline().predict(
            MODEL, BASIC.replace(activation_recomputation=True), V100, 256)
        assert not prediction.supported
        assert math.isinf(prediction.iteration_time)

    def test_more_gpus_reduce_predicted_time(self):
        recipe = TrainingRecipe(tensor_parallel=8, pipeline_parallel=2,
                                microbatch_multiplier=2, dtype="bfloat16",
                                activation_recomputation=True)
        small = CalculonBaseline().predict(BIG_MODEL, recipe,
                                           get_cluster("h100-32"), 512)
        large = CalculonBaseline().predict(BIG_MODEL, recipe,
                                           get_cluster("h100-64"), 512)
        assert large.iteration_time < small.iteration_time
