"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


def _run_json(capsys, argv):
    code = main(argv)
    return code, json.loads(capsys.readouterr().out)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_predict_defaults(self):
        args = build_parser().parse_args(["predict"])
        assert args.command == "predict"
        assert args.cluster == "v100-8"
        assert args.tensor_parallel == 1

    def test_recipe_flags_parsed(self):
        args = build_parser().parse_args([
            "predict", "-tp", "4", "-pp", "2", "-mb", "2",
            "--activation-recomputation", "--sequence-parallelism",
        ])
        assert args.tensor_parallel == 4
        assert args.pipeline_parallel == 2
        assert args.activation_recomputation
        assert args.sequence_parallelism


class TestCommands:
    def test_clusters_lists_presets(self, capsys):
        assert main(["clusters"]) == 0
        output = capsys.readouterr().out
        assert "h100-64" in output and "v100-8" in output

    def test_models_lists_presets(self, capsys):
        assert main(["models"]) == 0
        output = capsys.readouterr().out
        assert "gpt3-2.7b" in output and "resnet152" in output

    def test_predict_text_output(self, capsys):
        code = main([
            "predict", "--cluster", "v100-8", "--model", "gpt-tiny",
            "--global-batch-size", "16", "-tp", "2", "-pp", "2", "-mb", "2",
            "--estimator", "analytical", "--with-testbed",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "iteration time" in output
        assert "testbed reference" in output

    def test_predict_json_output(self, capsys):
        code = main([
            "predict", "--cluster", "v100-8", "--model", "gpt-tiny",
            "--global-batch-size", "16", "-tp", "2",
            "--estimator", "analytical", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["iteration_time_s"] > 0
        assert 0.0 <= payload["mfu"] <= 1.0

    def test_predict_invalid_recipe_exits_nonzero(self, capsys):
        code = main([
            "predict", "--cluster", "v100-8", "--model", "gpt-tiny",
            "-tp", "3", "--estimator", "analytical",
        ])
        assert code == 2
        assert "invalid configuration" in capsys.readouterr().err

    def test_predict_oom_reports_and_exits_one(self, capsys):
        code = main([
            "predict", "--cluster", "v100-8", "--model", "gpt3-6.7b",
            "--global-batch-size", "64", "--estimator", "analytical",
        ])
        assert code == 1
        assert "OUT OF MEMORY" in capsys.readouterr().out

    def test_compare_small_pool(self, capsys):
        code = main([
            "compare", "--cluster", "v100-8", "--model", "gpt-tiny",
            "--global-batch-size", "16", "--configs", "3",
            "--estimator", "analytical", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"]
        assert "maya" in payload["selection_cost"]

    def test_search_small_budget(self, capsys):
        code = main([
            "search", "--cluster", "v100-8", "--model", "gpt-tiny",
            "--global-batch-size", "16", "--budget", "30",
            "--estimator", "analytical", "--algorithm", "random", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["best"] is not None
        assert payload["samples_used"] <= 30

    def test_backend_choices_include_all_five(self):
        for command in ("compare", "search", "service"):
            for backend in ("serial", "thread", "process", "persistent",
                            "socket"):
                args = build_parser().parse_args([command, "--backend",
                                                  backend])
                assert args.backend == backend
        with pytest.raises(SystemExit):
            build_parser().parse_args(["service", "--backend", "mpi"])

    def test_backend_help_mentions_all_five_backends(self):
        for command in ("compare", "search", "service"):
            parser = build_parser()
            subparser = parser._subparsers._group_actions[0].choices[command]
            help_text = subparser.format_help()
            for backend in ("serial", "thread", "process", "persistent",
                            "socket"):
                assert backend in help_text, \
                    f"`repro {command} --help` does not mention {backend}"
            assert "--worker-hosts" in help_text

    def test_timeout_flags_parsed_and_validated(self):
        for command in ("compare", "search", "service"):
            args = build_parser().parse_args([
                command, "--sync-timeout", "7.5", "--lease-timeout", "0"])
            assert args.sync_timeout == 7.5
            assert args.lease_timeout == 0.0  # 0 disables re-dispatch
            args = build_parser().parse_args([command])
            assert args.sync_timeout is None  # env / class default applies
            assert args.lease_timeout is None
        for bad in (["--sync-timeout", "0"], ["--sync-timeout", "-1"],
                    ["--sync-timeout", "nan"], ["--lease-timeout", "-0.5"],
                    ["--lease-timeout", "forever"]):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["service"] + bad)

    def test_timeout_help_mentions_env_vars(self):
        parser = build_parser()
        subparser = parser._subparsers._group_actions[0].choices["service"]
        help_text = subparser.format_help()
        assert "--sync-timeout" in help_text
        assert "--lease-timeout" in help_text
        assert "REPRO_SYNC_TIMEOUT" in help_text
        assert "REPRO_LEASE_TIMEOUT" in help_text

    def test_worker_hosts_flag_parsed(self):
        args = build_parser().parse_args([
            "service", "--backend", "socket",
            "--worker-hosts", "10.0.0.1:7777, 10.0.0.2:7777",
        ])
        assert args.worker_hosts == "10.0.0.1:7777, 10.0.0.2:7777"
        from repro.cli import _worker_hosts
        assert _worker_hosts(args) == ["10.0.0.1:7777", "10.0.0.2:7777"]

    def test_worker_host_subcommand_registered(self):
        args = build_parser().parse_args(["worker-host", "--port", "0",
                                          "--once"])
        assert args.command == "worker-host"
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.once

    def test_top_level_help_lists_worker_host(self):
        help_text = build_parser().format_help()
        assert "worker-host" in help_text

    def test_service_persistent_backend(self, capsys):
        import multiprocessing

        before = multiprocessing.active_children()
        code = main([
            "service", "--cluster", "v100-8", "--model", "gpt-tiny",
            "--global-batch-size", "16", "--budget", "30",
            "--estimator", "analytical", "--algorithm", "random",
            "--backend", "persistent", "--jobs", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "persistent"
        assert payload["jobs"] == 2
        assert payload["best"] is not None
        assert payload["throughput"]["backend"] == "persistent"
        # The worker pool is closed before the command returns.
        assert set(multiprocessing.active_children()) <= set(before)


class TestStoreFlags:
    def test_store_dir_flag_on_every_evaluating_command(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        for command in ("compare", "search", "service", "serve",
                        "worker-host"):
            args = build_parser().parse_args([command, "--store-dir",
                                              "/tmp/artifacts"])
            assert args.store_dir == "/tmp/artifacts"
            args = build_parser().parse_args([command])
            assert args.store_dir is None

    def test_store_dir_defaults_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", "/shared/artifacts")
        args = build_parser().parse_args(["search"])
        assert args.store_dir == "/shared/artifacts"

    def test_store_help_mentions_env_var(self):
        parser = build_parser()
        subparser = parser._subparsers._group_actions[0].choices["search"]
        help_text = subparser.format_help()
        assert "--store-dir" in help_text
        assert "REPRO_STORE_DIR" in help_text


class TestCacheCommand:
    def test_cache_requires_store_dir(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "--store-dir" in capsys.readouterr().err

    def test_cache_on_missing_store_errors(self, capsys, tmp_path):
        code = main(["cache", "stats", "--store-dir",
                     str(tmp_path / "absent")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_cache_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "defrag"])

    def test_search_warm_starts_then_cache_maintains(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        argv = ["search", "--cluster", "v100-8", "--model", "gpt-tiny",
                "--global-batch-size", "16", "--budget", "8",
                "--estimator", "analytical", "--algorithm", "random",
                "--store-dir", store_dir, "--json"]
        code, cold = _run_json(capsys, argv)
        assert code == 0
        code, warm = _run_json(capsys, argv)
        assert code == 0
        # A second run against the populated store resolves identically.
        assert warm["best"] == cold["best"]

        # The service command surfaces nonzero store-tier hits against the
        # same populated store (same search space, algorithm and seed).
        code, service = _run_json(capsys, [
            "service", "--cluster", "v100-8", "--model", "gpt-tiny",
            "--global-batch-size", "16", "--budget", "8",
            "--estimator", "analytical", "--algorithm", "random",
            "--store-dir", store_dir, "--json"])
        assert code == 0
        assert service["cache_stats"]["store_hits"] > 0
        assert service["best"] == cold["best"]

        # stats -> verify -> gc roundtrip over the populated store.
        code, stats = _run_json(capsys, ["cache", "stats", "--store-dir",
                                         store_dir, "--json"])
        assert code == 0
        assert stats["entries"] > 0
        assert stats["total_bytes"] > 0
        code, verify = _run_json(capsys, ["cache", "verify", "--store-dir",
                                          store_dir, "--json"])
        assert code == 0
        assert verify["checked"] == stats["entries"]
        assert verify["corrupt"] == []
        code, swept = _run_json(capsys, ["cache", "gc", "--store-dir",
                                         store_dir, "--budget", "0",
                                         "--json"])
        assert code == 0
        assert swept["removed"] == stats["entries"]
        code, after = _run_json(capsys, ["cache", "stats", "--store-dir",
                                         store_dir, "--json"])
        assert code == 0
        assert after["entries"] == 0

    def test_verify_flags_and_quarantines_corruption(self, capsys, tmp_path):
        from repro.service import ArtifactStore

        store_dir = str(tmp_path / "store")
        store = ArtifactStore(store_dir)
        store.put(("good",), "payload")
        store.put(("bad",), "payload")
        bad_path = store._entry_path(("bad",))
        bad_path.write_bytes(b"garbage")

        code, report = _run_json(capsys, ["cache", "verify", "--store-dir",
                                          store_dir, "--json"])
        assert code == 1
        assert report["corrupt"] == [bad_path.name]
        assert report["quarantined"] == []

        code, report = _run_json(capsys, ["cache", "verify", "--store-dir",
                                          store_dir, "--quarantine",
                                          "--json"])
        assert code == 1
        assert report["quarantined"] == [bad_path.name]
        assert not bad_path.exists()

        code, report = _run_json(capsys, ["cache", "verify", "--store-dir",
                                          store_dir, "--json"])
        assert code == 0
        assert report == {"checked": 1, "corrupt": [], "quarantined": []}

    def test_cache_text_output(self, capsys, tmp_path):
        from repro.service import ArtifactStore

        store_dir = str(tmp_path / "store")
        ArtifactStore(store_dir).put(("k",), "v")
        assert main(["cache", "stats", "--store-dir", store_dir]) == 0
        output = capsys.readouterr().out
        assert "entries" in output
        assert store_dir in output

    def test_service_text_output_reports_tiers(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        code = main(["service", "--cluster", "v100-8", "--model", "gpt-tiny",
                     "--global-batch-size", "16", "--budget", "8",
                     "--estimator", "analytical", "--algorithm", "random",
                     "--store-dir", store_dir])
        assert code == 0
        output = capsys.readouterr().out
        assert "memory tier" in output
        assert "store tier" in output
