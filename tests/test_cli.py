"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_predict_defaults(self):
        args = build_parser().parse_args(["predict"])
        assert args.command == "predict"
        assert args.cluster == "v100-8"
        assert args.tensor_parallel == 1

    def test_recipe_flags_parsed(self):
        args = build_parser().parse_args([
            "predict", "-tp", "4", "-pp", "2", "-mb", "2",
            "--activation-recomputation", "--sequence-parallelism",
        ])
        assert args.tensor_parallel == 4
        assert args.pipeline_parallel == 2
        assert args.activation_recomputation
        assert args.sequence_parallelism


class TestCommands:
    def test_clusters_lists_presets(self, capsys):
        assert main(["clusters"]) == 0
        output = capsys.readouterr().out
        assert "h100-64" in output and "v100-8" in output

    def test_models_lists_presets(self, capsys):
        assert main(["models"]) == 0
        output = capsys.readouterr().out
        assert "gpt3-2.7b" in output and "resnet152" in output

    def test_predict_text_output(self, capsys):
        code = main([
            "predict", "--cluster", "v100-8", "--model", "gpt-tiny",
            "--global-batch-size", "16", "-tp", "2", "-pp", "2", "-mb", "2",
            "--estimator", "analytical", "--with-testbed",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "iteration time" in output
        assert "testbed reference" in output

    def test_predict_json_output(self, capsys):
        code = main([
            "predict", "--cluster", "v100-8", "--model", "gpt-tiny",
            "--global-batch-size", "16", "-tp", "2",
            "--estimator", "analytical", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["iteration_time_s"] > 0
        assert 0.0 <= payload["mfu"] <= 1.0

    def test_predict_invalid_recipe_exits_nonzero(self, capsys):
        code = main([
            "predict", "--cluster", "v100-8", "--model", "gpt-tiny",
            "-tp", "3", "--estimator", "analytical",
        ])
        assert code == 2
        assert "invalid configuration" in capsys.readouterr().err

    def test_predict_oom_reports_and_exits_one(self, capsys):
        code = main([
            "predict", "--cluster", "v100-8", "--model", "gpt3-6.7b",
            "--global-batch-size", "64", "--estimator", "analytical",
        ])
        assert code == 1
        assert "OUT OF MEMORY" in capsys.readouterr().out

    def test_compare_small_pool(self, capsys):
        code = main([
            "compare", "--cluster", "v100-8", "--model", "gpt-tiny",
            "--global-batch-size", "16", "--configs", "3",
            "--estimator", "analytical", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"]
        assert "maya" in payload["selection_cost"]

    def test_search_small_budget(self, capsys):
        code = main([
            "search", "--cluster", "v100-8", "--model", "gpt-tiny",
            "--global-batch-size", "16", "--budget", "30",
            "--estimator", "analytical", "--algorithm", "random", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["best"] is not None
        assert payload["samples_used"] <= 30

    def test_backend_choices_include_all_five(self):
        for command in ("compare", "search", "service"):
            for backend in ("serial", "thread", "process", "persistent",
                            "socket"):
                args = build_parser().parse_args([command, "--backend",
                                                  backend])
                assert args.backend == backend
        with pytest.raises(SystemExit):
            build_parser().parse_args(["service", "--backend", "mpi"])

    def test_backend_help_mentions_all_five_backends(self):
        for command in ("compare", "search", "service"):
            parser = build_parser()
            subparser = parser._subparsers._group_actions[0].choices[command]
            help_text = subparser.format_help()
            for backend in ("serial", "thread", "process", "persistent",
                            "socket"):
                assert backend in help_text, \
                    f"`repro {command} --help` does not mention {backend}"
            assert "--worker-hosts" in help_text

    def test_timeout_flags_parsed_and_validated(self):
        for command in ("compare", "search", "service"):
            args = build_parser().parse_args([
                command, "--sync-timeout", "7.5", "--lease-timeout", "0"])
            assert args.sync_timeout == 7.5
            assert args.lease_timeout == 0.0  # 0 disables re-dispatch
            args = build_parser().parse_args([command])
            assert args.sync_timeout is None  # env / class default applies
            assert args.lease_timeout is None
        for bad in (["--sync-timeout", "0"], ["--sync-timeout", "-1"],
                    ["--sync-timeout", "nan"], ["--lease-timeout", "-0.5"],
                    ["--lease-timeout", "forever"]):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["service"] + bad)

    def test_timeout_help_mentions_env_vars(self):
        parser = build_parser()
        subparser = parser._subparsers._group_actions[0].choices["service"]
        help_text = subparser.format_help()
        assert "--sync-timeout" in help_text
        assert "--lease-timeout" in help_text
        assert "REPRO_SYNC_TIMEOUT" in help_text
        assert "REPRO_LEASE_TIMEOUT" in help_text

    def test_worker_hosts_flag_parsed(self):
        args = build_parser().parse_args([
            "service", "--backend", "socket",
            "--worker-hosts", "10.0.0.1:7777, 10.0.0.2:7777",
        ])
        assert args.worker_hosts == "10.0.0.1:7777, 10.0.0.2:7777"
        from repro.cli import _worker_hosts
        assert _worker_hosts(args) == ["10.0.0.1:7777", "10.0.0.2:7777"]

    def test_worker_host_subcommand_registered(self):
        args = build_parser().parse_args(["worker-host", "--port", "0",
                                          "--once"])
        assert args.command == "worker-host"
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.once

    def test_top_level_help_lists_worker_host(self):
        help_text = build_parser().format_help()
        assert "worker-host" in help_text

    def test_service_persistent_backend(self, capsys):
        import multiprocessing

        before = multiprocessing.active_children()
        code = main([
            "service", "--cluster", "v100-8", "--model", "gpt-tiny",
            "--global-batch-size", "16", "--budget", "30",
            "--estimator", "analytical", "--algorithm", "random",
            "--backend", "persistent", "--jobs", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "persistent"
        assert payload["jobs"] == 2
        assert payload["best"] is not None
        assert payload["throughput"]["backend"] == "persistent"
        # The worker pool is closed before the command returns.
        assert set(multiprocessing.active_children()) <= set(before)
