"""Setup script for the Maya reproduction package."""

from setuptools import setup

setup()
