#!/usr/bin/env python3
"""Documentation drift gate: the front-door docs must match the code.

Checks (run by CI's ``conformance-socket`` job and usable locally)::

    PYTHONPATH=src python tools/check_docs.py

1. ``README.md`` exists and is non-trivial.
2. Every ``repro <subcommand>`` / ``python -m repro <subcommand>``
   invocation mentioned in README.md and ARCHITECTURE.md names a real CLI
   subcommand (parsed from ``repro.cli.build_parser``, so new subcommands
   never need this script updated).
3. The README's backend selection guide covers every registered
   evaluation backend (``repro.service.BACKEND_NAMES``).
4. Every ``examples/*.py`` file referenced in README.md exists, and every
   example on disk is mentioned in README.md.
5. README.md has a ``repro serve`` quickstart, and ARCHITECTURE.md
   documents every request/reply kind the prediction server speaks
   (``repro.service.server.REQUEST_KINDS`` / ``REPLY_KINDS``, so a
   vocabulary change must update the docs in the same commit).
6. README.md documents the persistent artifact store: the ``repro
   cache`` maintenance subcommand, the ``--store-dir`` flag and the
   ``REPRO_STORE_DIR`` environment variable (pulled from
   ``repro.service.store``); ARCHITECTURE.md documents the store's
   version stamp file and the ``StoreRef`` skip-ship protocol.
7. ARCHITECTURE.md documents every registered placement policy
   (``repro.service.SCHEDULER_NAMES`` -- registering a new scheduler
   must document it in the same commit), and README.md documents the
   ``--scheduler`` flag and the ``REPRO_SCHEDULER`` environment
   variable.

Exits non-zero with one line per violation.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Words following ``repro`` in prose that are not subcommand invocations.
_NON_COMMAND_WORDS = {"worker", "versions"}


def _cli_subcommands() -> set:
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._subparsers._group_actions:
        return set(action.choices)
    raise AssertionError("CLI parser has no subcommands")


def _mentioned_subcommands(text: str) -> set:
    """Subcommand-shaped words after `repro` in doc text."""
    mentions = set()
    for match in re.finditer(
            r"(?:python -m repro|(?<![-\w])repro)\s+([a-z][a-z0-9-]*)", text):
        word = match.group(1)
        if word not in _NON_COMMAND_WORDS:
            mentions.add(word)
    return mentions


def main() -> int:
    problems = []

    readme = REPO_ROOT / "README.md"
    if not readme.exists():
        print("FAIL: README.md does not exist")
        return 1
    readme_text = readme.read_text()
    if len(readme_text) < 2000:
        problems.append(f"README.md is suspiciously short "
                        f"({len(readme_text)} chars)")

    subcommands = _cli_subcommands()
    architecture = REPO_ROOT / "ARCHITECTURE.md"
    for path, text in [(readme, readme_text),
                       (architecture,
                        architecture.read_text()
                        if architecture.exists() else "")]:
        for word in sorted(_mentioned_subcommands(text)):
            if word not in subcommands:
                problems.append(
                    f"{path.name} mentions `repro {word}`, which is not a "
                    f"CLI subcommand (have: {sorted(subcommands)})")

    from repro.service import BACKEND_NAMES
    for backend in BACKEND_NAMES:
        if not re.search(rf"\b{backend}\b", readme_text):
            problems.append(
                f"README.md backend guide does not mention the "
                f"{backend!r} backend")

    from repro.service.server import REPLY_KINDS, REQUEST_KINDS
    if "serve" not in _mentioned_subcommands(readme_text):
        problems.append("README.md has no `repro serve` serving quickstart")
    architecture_text = (architecture.read_text()
                         if architecture.exists() else "")
    for kind in (*REQUEST_KINDS, *REPLY_KINDS):
        if not re.search(rf"[`\"']{re.escape(kind)}[`\"']",
                         architecture_text):
            problems.append(
                f"ARCHITECTURE.md does not document the prediction "
                f"server's {kind!r} message kind (its request/response "
                f"vocabulary section must stay in sync with "
                f"repro/service/server.py)")

    from repro.service.store import FORMAT_FILE, STORE_DIR_ENV
    if "cache" not in _mentioned_subcommands(readme_text):
        problems.append("README.md has no `repro cache` store-maintenance "
                        "quickstart")
    for needle, where, text in [("--store-dir", "README.md", readme_text),
                                (STORE_DIR_ENV, "README.md", readme_text),
                                ("--store-dir", "ARCHITECTURE.md",
                                 architecture_text),
                                (FORMAT_FILE, "ARCHITECTURE.md",
                                 architecture_text),
                                ("StoreRef", "ARCHITECTURE.md",
                                 architecture_text)]:
        if needle not in text:
            problems.append(f"{where} does not document the artifact "
                            f"store's {needle!r}")

    from repro.service import SCHEDULER_NAMES
    from repro.service.scheduling import SCHEDULER_ENV
    for policy in SCHEDULER_NAMES:
        if not re.search(rf"\b{policy}\b", architecture_text):
            problems.append(
                f"ARCHITECTURE.md placement-policies section does not "
                f"document the {policy!r} scheduler (every name in "
                f"repro.service.SCHEDULER_NAMES must appear)")
    for needle in ("--scheduler", SCHEDULER_ENV):
        if needle not in readme_text:
            problems.append(f"README.md does not document the placement "
                            f"policies' {needle!r}")

    examples_dir = REPO_ROOT / "examples"
    referenced = set(re.findall(r"examples/([\w.]+\.py)", readme_text))
    on_disk = {path.name for path in examples_dir.glob("*.py")}
    for name in sorted(referenced - on_disk):
        problems.append(f"README.md references examples/{name}, "
                        f"which does not exist")
    for name in sorted(on_disk - referenced):
        problems.append(f"examples/{name} is not mentioned in README.md")

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(f"docs check passed: {len(subcommands)} subcommands, "
          f"{len(BACKEND_NAMES)} backends, {len(SCHEDULER_NAMES)} "
          f"schedulers, {len(on_disk)} examples covered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
