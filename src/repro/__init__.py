"""Reproduction of *Maya: Optimizing Deep Learning Training Workloads using
GPU Runtime Emulation* (EuroSys 2026).

The package is organised around the same pipeline the paper describes:

``repro.cuda``
    A virtual CUDA runtime (memory, streams, events, cuBLAS, cuDNN, NCCL)
    standing in for the real driver stack.
``repro.framework``
    A miniature Megatron-style training framework that issues device API
    calls against the virtual runtime (tensor/pipeline/data/sequence
    parallelism, ZeRO, activation recomputation, gradient accumulation).
``repro.core``
    Maya itself: the transparent device emulator, trace collator, kernel
    runtime estimators and the discrete-event cluster simulator, glued
    together by :class:`repro.core.pipeline.MayaPipeline`.
``repro.testbed``
    The stand-in for real hardware: a high-fidelity reference execution
    model used to produce "actual" measurements.
``repro.baselines``
    Behavioural re-implementations of Calculon, AMPeD and Proteus.
``repro.service``
    The prediction service: cross-trial artifact caching keyed by
    structural signatures, shared estimator providers and parallel batch
    evaluation (see ARCHITECTURE.md).
``repro.search``
    Maya-Search: configuration search with pruning and trial scheduling,
    evaluated through the prediction service.
``repro.workloads`` / ``repro.analysis``
    Model/recipe definitions and experiment metrics.
"""

from repro.version import __version__

__all__ = ["__version__"]
