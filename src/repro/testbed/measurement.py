"""Reference ("actual") measurements of training jobs.

:class:`Testbed` exposes the same interface as
:class:`~repro.core.pipeline.MayaPipeline` but plays the role of the
physical cluster: its numbers are what Maya's predictions are compared
against in every accuracy figure and what configuration-selection costs are
evaluated on (Figures 7-10, Table 3).
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional, Sequence

from repro.core.collator import TraceCollator
from repro.core.emulator import EmulationSession
from repro.core.pipeline import (
    EmulationArtifacts,
    PredictionResult,
    _iteration_time_from_report,
    simulate_collated_trace,
)
from repro.core.simulator.engine import SimulationError
from repro.core.simulator.providers import GroundTruthDurationProvider
from repro.hardware.cluster import ClusterSpec
from repro.hardware.kernel_cost import CollectiveCostModel, KernelCostModel
from repro.workloads.job import TrainingJob


class Testbed:
    """Produces ground-truth iteration times for training jobs."""

    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(
        self,
        cluster: ClusterSpec,
        kernel_cost_model: Optional[KernelCostModel] = None,
        collective_cost_model: Optional[CollectiveCostModel] = None,
        sm_contention_factor: float = 1.045,
        reduce_replicas: bool = True,
    ) -> None:
        self.cluster = cluster
        self.kernel_cost_model = kernel_cost_model or KernelCostModel()
        self.collective_cost_model = collective_cost_model or CollectiveCostModel()
        self.sm_contention_factor = sm_contention_factor
        self.reduce_replicas = reduce_replicas

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def measure(self, job: TrainingJob,
                artifacts: Optional[EmulationArtifacts] = None
                ) -> PredictionResult:
        """Return the "actual" runtime of ``job`` on this cluster."""
        problems = job.validate()
        if problems:
            return PredictionResult(
                job_name=job.name, iteration_time=math.inf, total_time=math.inf,
                communication_time=0.0, peak_memory_bytes=0, oom=False,
                metadata={"invalid": problems},
            )
        stage_times: Dict[str, float] = {}
        if artifacts is None:
            artifacts = self._emulate(job, stage_times)
        else:
            stage_times.update(artifacts.stage_times)

        if artifacts.oom:
            return PredictionResult(
                job_name=job.name, iteration_time=math.inf, total_time=math.inf,
                communication_time=0.0,
                peak_memory_bytes=artifacts.collated.peak_memory_bytes(),
                oom=True, stage_times=stage_times,
                metadata={"reason": "out of memory on device"},
            )

        provider = GroundTruthDurationProvider(
            self.cluster,
            kernel_cost_model=self.kernel_cost_model,
            collective_cost_model=self.collective_cost_model,
        )
        iterations = getattr(job, "iterations", 1)
        start = time.perf_counter()
        try:
            report = simulate_collated_trace(
                artifacts.collated, self.cluster, provider,
                simulate_ranks=self._simulation_ranks(job),
                sm_contention_factor=self.sm_contention_factor,
                iterations=iterations,
            )
        except SimulationError as exc:
            stage_times["testbed_simulation"] = time.perf_counter() - start
            return PredictionResult(
                job_name=job.name, iteration_time=math.inf,
                total_time=math.inf, communication_time=0.0,
                peak_memory_bytes=artifacts.collated.peak_memory_bytes(),
                oom=False, stage_times=stage_times,
                metadata={"simulation_error": str(exc)},
            )
        stage_times["testbed_simulation"] = time.perf_counter() - start

        return PredictionResult(
            job_name=job.name,
            iteration_time=_iteration_time_from_report(report, iterations),
            total_time=report.total_time,
            communication_time=report.communication_time,
            peak_memory_bytes=report.peak_memory_bytes,
            oom=False,
            stage_times=stage_times,
            report=report,
            metadata={"source": "testbed"},
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _emulate(self, job: TrainingJob,
                 stage_times: Dict[str, float]) -> EmulationArtifacts:
        session = EmulationSession(self.cluster)
        try:
            ranks = job.unique_ranks()
        except Exception:
            ranks = None
        start = time.perf_counter()
        emulation = session.run(job.worker_fn, ranks=ranks,
                                world_size=job.world_size)
        stage_times["emulation"] = time.perf_counter() - start

        start = time.perf_counter()
        topology = job.topology() if hasattr(job, "topology") else None
        collated = TraceCollator(deduplicate=True).collate(
            emulation.job_trace, topology=topology)
        stage_times["collation"] = time.perf_counter() - start
        return EmulationArtifacts(
            job=job, cluster=self.cluster, job_trace=emulation.job_trace,
            collated=collated, oom=emulation.oom, stage_times=stage_times,
        )

    def _simulation_ranks(self, job: TrainingJob) -> Optional[Sequence[int]]:
        if not self.reduce_replicas or not hasattr(job, "topology"):
            return None
        topology = job.topology()
        return [
            topology.rank_of(0, pp, tp)
            for pp in range(topology.pipeline_parallel)
            for tp in range(topology.tensor_parallel)
        ]
