"""Testbed: the stand-in for running workloads on real hardware.

The paper validates Maya against measurements from physical V100 / H100 /
A40 clusters.  Those clusters are not available here, so the testbed provides
"actual" numbers from a *reference execution model*: the same emulated trace
replayed through the discrete-event simulator, but with

* ground-truth per-kernel costs (including per-invocation jitter),
* ground-truth collective costs, and
* effects Maya deliberately does not model (SM contention between
  overlapping compute and communication kernels, Section 8).

Prediction error therefore has the same structure as in the paper: a kernel
mis-prediction component plus an emulation/simulation detail-loss component
(Table 3 separates the two via the oracle configuration).
"""

from repro.testbed.measurement import Testbed

__all__ = ["Testbed"]
