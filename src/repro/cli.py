"""Command-line interface for the Maya reproduction.

The CLI exposes the main workflows as subcommands so the system can be used
without writing Python:

``python -m repro clusters``
    List the preset clusters (Section 7.1 testbeds).
``python -m repro models``
    List the transformer and vision model presets.
``python -m repro predict``
    Predict iteration time / memory / MFU of one training recipe, optionally
    comparing against the testbed reference model.
``python -m repro compare``
    Evaluate a pool of candidate recipes with Maya, the baselines and the
    testbed (the Figure 7 / 8 workflow).
``python -m repro search``
    Run Maya-Search over the Table 5 configuration space.
``python -m repro service``
    Run a search through the prediction service and report artifact-cache
    and parallel-evaluation statistics.
``python -m repro serve``
    Keep one warm prediction service alive behind a TCP endpoint and
    multiplex many clients over it (cross-client request coalescing,
    admission control, round-robin fairness).
``python -m repro worker-host``
    Listen for a remote prediction service and evaluate its jobs: the
    remote end of the multi-host ``socket`` evaluation backend.
``python -m repro cache``
    Inspect and maintain a disk-backed artifact store (``--store-dir`` /
    ``$REPRO_STORE_DIR``): report stats, garbage-collect to a size
    budget, or verify entry checksums.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.experiments import candidate_recipes, evaluate_setup
from repro.analysis.metrics import cost_of_run, mfu
from repro.core.pipeline import MayaPipeline
from repro.framework.recipe import TrainingRecipe
from repro.hardware.cluster import PRESET_CLUSTERS, get_cluster
from repro.search import MayaSearch, MayaTrialEvaluator
from repro.search.space import default_search_space
from repro.testbed import Testbed
from repro.workloads.job import TransformerTrainingJob
from repro.workloads.models import CONVNET_PRESETS, TRANSFORMER_PRESETS, get_transformer


# ----------------------------------------------------------------------
# argument parsing
# ----------------------------------------------------------------------
def _add_recipe_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tensor-parallel", "-tp", type=int, default=1)
    parser.add_argument("--pipeline-parallel", "-pp", type=int, default=1)
    parser.add_argument("--microbatch-multiplier", "-mb", type=int, default=1)
    parser.add_argument("--virtual-stages", type=int, default=1)
    parser.add_argument("--activation-recomputation", action="store_true")
    parser.add_argument("--sequence-parallelism", action="store_true")
    parser.add_argument("--distributed-optimizer", action="store_true")
    parser.add_argument("--zero-stage", type=int, default=0, choices=(0, 1, 2, 3))


def _sync_timeout_arg(raw: str) -> float:
    from repro.service.backends import validate_timeout
    try:
        return validate_timeout("--sync-timeout", raw)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _lease_timeout_arg(raw: str) -> float:
    from repro.service.backends import validate_timeout
    try:
        return validate_timeout("--lease-timeout", raw, allow_zero=True)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default="thread",
                        choices=("serial", "thread", "process", "persistent",
                                 "socket"),
                        help="batch-evaluation backend: serial (reference), "
                             "thread pool, fork-per-batch process pool, "
                             "long-lived persistent worker pool synced by "
                             "incremental cache deltas (amortises fork cost "
                             "across batches), or socket (the same delta "
                             "protocol to remote `repro worker-host` "
                             "processes; requires --worker-hosts)")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker count for the thread/process/persistent "
                             "backends (default: scheduler concurrency, "
                             "capped at the CPU count); the socket backend "
                             "runs one worker per --worker-hosts address "
                             "instead")
    parser.add_argument("--worker-hosts", default=None, metavar="HOST:PORT,..",
                        help="comma-separated addresses of running "
                             "`repro worker-host` processes for the socket "
                             "backend (defaults to $REPRO_WORKER_HOSTS)")
    parser.add_argument("--sync-timeout", type=_sync_timeout_arg,
                        default=None, metavar="SECONDS",
                        help="seconds a pooled (persistent/socket) worker "
                             "gets to ack a cache sync before it is "
                             "discarded (> 0; default 60, or "
                             "$REPRO_SYNC_TIMEOUT)")
    parser.add_argument("--lease-timeout", type=_lease_timeout_arg,
                        default=None, metavar="SECONDS",
                        help="job lease for the pooled backends: a job "
                             "unanswered this long is speculatively "
                             "re-dispatched to another live worker, so a "
                             "straggler costs one job's latency, not the "
                             "batch (>= 0; 0 disables re-dispatch; default "
                             "30, or $REPRO_LEASE_TIMEOUT)")
    parser.add_argument("--scheduler", default=None,
                        choices=("round_robin", "least_loaded", "locality"),
                        help="job-placement policy for the pooled "
                             "(persistent/socket) backends: round_robin "
                             "(stripe in order; the byte-identity "
                             "reference), least_loaded (shortest outstanding "
                             "queue), or locality (prefer workers already "
                             "holding a job's artifacts, so cache-delta "
                             "syncs ship fewer bytes); results are "
                             "byte-identical under every policy (defaults "
                             "to $REPRO_SCHEDULER, then round_robin)")
    _add_store_argument(parser)


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store-dir", default=os.environ.get(
                            "REPRO_STORE_DIR") or None,
                        metavar="DIR",
                        help="disk-backed artifact store shared across "
                             "processes: cache misses fall through to it "
                             "and fresh artifacts persist into it, so a "
                             "second run warm-starts from disk (defaults "
                             "to $REPRO_STORE_DIR; unset = memory-only)")


def _add_server_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--server", default=None, metavar="HOST:PORT",
                        help="evaluate through a running `repro serve` "
                             "endpoint instead of a local service "
                             "(--backend/--jobs/--worker-hosts then apply "
                             "to the server process, not this one)")


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dtype", default=None,
                        help="bfloat16 / float16 (defaults per architecture)")
    parser.add_argument("--cluster", default="v100-8",
                        help=f"one of {sorted(PRESET_CLUSTERS)}")
    parser.add_argument("--model", default="gpt3-2.7b",
                        help="transformer preset name (see `repro models`)")
    parser.add_argument("--global-batch-size", "-b", type=int, default=256)
    parser.add_argument("--estimator", default="learned",
                        choices=("learned", "analytical", "oracle"),
                        help="kernel runtime estimator family")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Maya reproduction: GPU-free performance prediction for "
                    "distributed deep-learning training.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("clusters", help="list preset clusters")
    subparsers.add_parser("models", help="list model presets")

    predict = subparsers.add_parser("predict",
                                    help="predict one training recipe")
    _add_common_arguments(predict)
    _add_recipe_arguments(predict)
    predict.add_argument("--with-testbed", action="store_true",
                         help="also run the testbed reference model")

    compare = subparsers.add_parser(
        "compare", help="compare Maya and the baselines over candidate recipes")
    _add_common_arguments(compare)
    _add_backend_arguments(compare)
    compare.add_argument("--configs", type=int, default=8,
                         help="number of candidate recipes to evaluate")
    compare.add_argument("--seed", type=int, default=0)

    search = subparsers.add_parser("search", help="run Maya-Search")
    _add_common_arguments(search)
    _add_backend_arguments(search)
    _add_server_argument(search)
    search.add_argument("--algorithm", default="cma",
                        choices=("cma", "oneplusone", "pso", "twopointsde",
                                 "random", "grid"))
    search.add_argument("--budget", type=int, default=200)
    search.add_argument("--seed", type=int, default=0)
    search.add_argument("--no-pruning", action="store_true",
                        help="disable fidelity-preserving trial pruning")

    service = subparsers.add_parser(
        "service",
        help="run a search through the prediction service and report "
             "artifact-cache and throughput statistics")
    _add_common_arguments(service)
    _add_backend_arguments(service)
    service.add_argument("--algorithm", default="cma",
                         choices=("cma", "oneplusone", "pso", "twopointsde",
                                  "random", "grid"))
    service.add_argument("--budget", type=int, default=200)
    service.add_argument("--seed", type=int, default=0)
    service.add_argument("--no-pruning", action="store_true")
    service.add_argument("--max-workers", type=int, default=None,
                         help="deprecated alias for --jobs")
    service.add_argument("--no-cache", action="store_true",
                         help="disable the cross-trial artifact cache "
                              "(cold path, for comparison)")
    _add_server_argument(service)

    serve = subparsers.add_parser(
        "serve",
        help="keep one warm prediction service alive behind a TCP endpoint "
             "and multiplex many clients over it (connect with --server)")
    serve.add_argument("--cluster", default="v100-8",
                       help=f"one of {sorted(PRESET_CLUSTERS)}")
    serve.add_argument("--estimator", default="learned",
                       choices=("learned", "analytical", "oracle"),
                       help="kernel runtime estimator family")
    _add_backend_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: localhost; the "
                            "wire protocol is unauthenticated pickle -- "
                            "bind non-loopback interfaces only on trusted "
                            "networks)")
    serve.add_argument("--port", type=int, default=0,
                       help="port to listen on (0 picks an ephemeral port, "
                            "printed on stdout)")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="admission control: predict requests queued "
                            "beyond this bound get a structured busy reply "
                            "instead of buffering unboundedly")
    serve.add_argument("--cache-entries", type=int, default=256,
                       help="artifact/prediction cache capacity per level")

    worker_host = subparsers.add_parser(
        "worker-host",
        help="evaluate prediction jobs for a remote service (the remote "
             "end of the socket evaluation backend)")
    worker_host.add_argument("--host", default="127.0.0.1",
                             help="interface to bind (default: localhost; "
                                  "bind non-loopback interfaces only on "
                                  "trusted networks -- the wire protocol "
                                  "is unauthenticated pickle)")
    worker_host.add_argument("--port", type=int, default=0,
                             help="port to listen on (0 picks an ephemeral "
                                  "port, printed on stdout)")
    worker_host.add_argument("--once", action="store_true",
                             help="serve a single parent connection, then "
                                  "exit")
    _add_store_argument(worker_host)

    cache = subparsers.add_parser(
        "cache",
        help="inspect and maintain a disk-backed artifact store: report "
             "stats, garbage-collect to a size budget, or verify entry "
             "checksums")
    cache.add_argument("action", choices=("stats", "gc", "verify"),
                       help="stats: entry count / bytes / op counters; "
                            "gc: sweep orphaned temp files and evict "
                            "least-recently-used entries over the size "
                            "budget; verify: re-checksum every entry")
    _add_store_argument(cache)
    cache.add_argument("--budget", type=int, default=None, metavar="BYTES",
                       help="gc: evict LRU entries until the store fits "
                            "this many bytes (default: the store's "
                            "configured budget)")
    cache.add_argument("--quarantine", action="store_true",
                       help="verify: rename corrupt entries to *.corrupt "
                            "so scans and lookups stop touching them")
    cache.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")
    return parser


def _worker_hosts(args: argparse.Namespace) -> Optional[List[str]]:
    """Parse --worker-hosts into an address list (None when unset)."""
    hosts = getattr(args, "worker_hosts", None)
    if not hosts:
        return None
    return [address.strip() for address in hosts.split(",") if address.strip()]


def _default_dtype(cluster_name: str, dtype: Optional[str]) -> str:
    if dtype:
        return dtype
    cluster = get_cluster(cluster_name)
    return "float16" if cluster.gpu.architecture == "volta" else "bfloat16"


def _recipe_from_args(args: argparse.Namespace) -> TrainingRecipe:
    return TrainingRecipe(
        tensor_parallel=args.tensor_parallel,
        pipeline_parallel=args.pipeline_parallel,
        microbatch_multiplier=args.microbatch_multiplier,
        virtual_stages=args.virtual_stages,
        activation_recomputation=args.activation_recomputation,
        sequence_parallelism=args.sequence_parallelism,
        distributed_optimizer=args.distributed_optimizer,
        zero_stage=args.zero_stage,
        dtype=_default_dtype(args.cluster, args.dtype),
    )


def _emit(payload: dict, as_json: bool, lines: List[str]) -> None:
    if as_json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        for line in lines:
            print(line)


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_clusters(_: argparse.Namespace) -> int:
    for name, cluster in sorted(PRESET_CLUSTERS.items()):
        print(f"{name:<10} {cluster.world_size:>4}x {cluster.gpu.name:<5} "
              f"{cluster.gpu.memory_gb:.0f} GB  "
              f"{cluster.interconnect.intra_node.name} / "
              f"{cluster.interconnect.inter_node.name}  "
              f"${cluster.hourly_cost:,.0f}/h")
    return 0


def cmd_models(_: argparse.Namespace) -> int:
    print("transformers:")
    for name, model in sorted(TRANSFORMER_PRESETS.items()):
        print(f"  {name:<14} layers={model.num_layers:<3} "
              f"hidden={model.hidden_size:<6} heads={model.num_heads:<3} "
              f"params={model.total_params / 1e9:6.2f}B")
    print("convnets:")
    for name, spec in sorted(CONVNET_PRESETS.items()):
        print(f"  {name:<14} conv layers={spec.num_conv_layers:<4} "
              f"params={spec.total_params / 1e6:7.1f}M")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    cluster = get_cluster(args.cluster)
    model = get_transformer(args.model)
    recipe = _recipe_from_args(args)
    job = TransformerTrainingJob(model, recipe, cluster,
                                 global_batch_size=args.global_batch_size)
    problems = job.validate()
    if problems:
        print("invalid configuration: " + "; ".join(problems), file=sys.stderr)
        return 2

    pipeline = MayaPipeline(cluster, estimator_mode=args.estimator)
    prediction = pipeline.predict(job)
    payload = {
        "cluster": cluster.name,
        "model": model.name,
        "recipe": recipe.to_dict(),
        "oom": prediction.oom,
        "iteration_time_s": prediction.iteration_time,
        "communication_time_s": prediction.communication_time,
        "peak_memory_gb": prediction.peak_memory_gb,
        "mfu": mfu(prediction.iteration_time, job.flops_per_iteration(),
                   cluster, dtype=recipe.dtype),
        "cost_per_iteration_usd": cost_of_run(prediction.iteration_time,
                                              cluster),
        "stage_times_s": prediction.stage_times,
    }
    lines = [
        f"recipe {recipe.short_name()} on {cluster.name} ({model.name})",
        ("OUT OF MEMORY" if prediction.oom else
         f"iteration time:     {prediction.iteration_time:.3f} s"),
        f"communication time: {prediction.communication_time:.3f} s",
        f"peak memory:        {prediction.peak_memory_gb:.1f} GB",
        f"MFU:                {payload['mfu'] * 100:.1f}%",
        f"cost / iteration:   ${payload['cost_per_iteration_usd']:.2f}",
    ]
    if args.with_testbed and not prediction.oom:
        actual = Testbed(cluster).measure(job)
        payload["testbed_iteration_time_s"] = actual.iteration_time
        error = abs(prediction.iteration_time - actual.iteration_time) \
            / actual.iteration_time * 100.0
        payload["prediction_error_pct"] = error
        lines.append(f"testbed reference:  {actual.iteration_time:.3f} s "
                     f"(error {error:.1f}%)")
    _emit(payload, args.json, lines)
    return 1 if prediction.oom else 0


def cmd_compare(args: argparse.Namespace) -> int:
    cluster = get_cluster(args.cluster)
    model = get_transformer(args.model)
    recipes = candidate_recipes(model, cluster, args.global_batch_size,
                                limit=args.configs, seed=args.seed,
                                dtype=_default_dtype(args.cluster, args.dtype)
                                if args.dtype else None)
    setup = evaluate_setup("cli", model, cluster, args.global_batch_size,
                           recipes, estimator_mode=args.estimator,
                           backend=args.backend, jobs=args.jobs,
                           worker_hosts=_worker_hosts(args),
                           sync_timeout=args.sync_timeout,
                           lease_timeout=args.lease_timeout,
                           store_dir=args.store_dir,
                           scheduler=args.scheduler)
    rows = []
    for evaluation in sorted(setup.feasible(), key=lambda ev: ev.actual_time):
        rows.append({
            "recipe": evaluation.recipe.short_name(),
            "actual_s": evaluation.actual_time,
            "maya_s": evaluation.maya.iteration_time,
            "maya_error_pct": evaluation.maya_error,
            "baselines_s": evaluation.baselines,
        })
    payload = {
        "cluster": cluster.name, "model": model.name,
        "rows": rows,
        "selection_cost": {system: setup.selection_cost(system)
                           for system in ("maya", "Proteus", "Calculon",
                                          "AMPeD")},
    }
    lines = [f"{'recipe':<30}{'actual':>9}{'maya':>9}{'err%':>7}"]
    for row in rows:
        lines.append(f"{row['recipe']:<30}{row['actual_s']:9.2f}"
                     f"{row['maya_s']:9.2f}{row['maya_error_pct']:7.1f}")
    for system, cost in payload["selection_cost"].items():
        label = "n/a" if math.isinf(cost) else f"{(cost - 1) * 100:+.1f}%"
        lines.append(f"{system} pick vs optimal: {label}")
    _emit(payload, args.json, lines)
    return 0 if rows else 1


def _run_search(args: argparse.Namespace, evaluator, cluster, model):
    """Build and run a MayaSearch from shared CLI arguments."""
    dtype = _default_dtype(args.cluster, args.dtype)
    search = MayaSearch(
        evaluator,
        space=default_search_space(dtype=dtype),
        algorithm=args.algorithm,
        world_size=cluster.world_size,
        global_batch_size=args.global_batch_size,
        num_layers=model.num_layers,
        num_heads=model.num_heads,
        gpus_per_node=cluster.gpus_per_node,
        enable_pruning=not args.no_pruning,
        seed=args.seed,
    )
    return search.run(budget=args.budget)


def cmd_search(args: argparse.Namespace) -> int:
    cluster = get_cluster(args.cluster)
    model = get_transformer(args.model)
    with MayaTrialEvaluator(model, cluster, args.global_batch_size,
                            estimator_mode=args.estimator,
                            max_workers=args.jobs,
                            backend=None if args.server else args.backend,
                            worker_hosts=_worker_hosts(args),
                            sync_timeout=args.sync_timeout,
                            lease_timeout=args.lease_timeout,
                            store_dir=args.store_dir,
                            scheduler=args.scheduler,
                            server=args.server) as evaluator:
        result = _run_search(args, evaluator, cluster, model)
    payload = {
        "cluster": cluster.name,
        "model": model.name,
        "samples_used": result.samples_used,
        "unique_valid_configs": result.unique_valid_configs,
        "status_counts": result.status_counts,
        "best": (None if result.best is None else {
            "recipe": result.best.recipe.to_dict(),
            "iteration_time_s": result.best.iteration_time,
            "mfu": result.best.mfu,
        }),
        "wall_time_s": result.total_wall_time,
    }
    lines = [
        f"search finished in {result.total_wall_time:.1f}s "
        f"({result.samples_used} samples, "
        f"{result.unique_valid_configs} unique valid configs)",
        f"trial statuses: {result.status_counts}",
    ]
    if result.best is not None:
        lines.append(f"best recipe: {result.best.recipe.short_name()} "
                     f"({result.best.iteration_time:.2f} s/iter, "
                     f"MFU {result.best.mfu * 100:.1f}%)")
    _emit(payload, args.json, lines)
    return 0 if result.best is not None else 1


def cmd_service(args: argparse.Namespace) -> int:
    cluster = get_cluster(args.cluster)
    model = get_transformer(args.model)
    with MayaTrialEvaluator(
        model, cluster, args.global_batch_size,
        estimator_mode=args.estimator,
        enable_cache=not args.no_cache,
        share_provider=not args.no_cache,
        max_workers=args.jobs if args.jobs is not None else args.max_workers,
        backend=None if args.server else args.backend,
        worker_hosts=_worker_hosts(args),
        sync_timeout=args.sync_timeout,
        lease_timeout=args.lease_timeout,
        store_dir=args.store_dir,
        scheduler=args.scheduler,
        server=args.server,
    ) as evaluator:
        result = _run_search(args, evaluator, cluster, model)
        stats = result.cache_stats
        throughput = evaluator.throughput_stats()
    payload = {
        "cluster": cluster.name,
        "model": model.name,
        "caching": not args.no_cache,
        "backend": evaluator.service.backend,
        "jobs": evaluator.service.max_workers,
        "samples_used": result.samples_used,
        "status_counts": result.status_counts,
        "cache_stats": stats,
        "throughput": throughput,
        "wall_time_s": result.total_wall_time,
        "measured_makespan_s": result.measured_makespan,
        "evaluation_batches": result.evaluation_batches,
        "best": (None if result.best is None else {
            "recipe": result.best.recipe.to_dict(),
            "iteration_time_s": result.best.iteration_time,
            "mfu": result.best.mfu,
        }),
    }
    lines = [
        f"prediction service on {cluster.name} "
        f"({'cached' if not args.no_cache else 'cold'}, "
        f"backend {evaluator.service.backend}, "
        f"{evaluator.service.max_workers} workers)",
        f"search finished in {result.total_wall_time:.1f}s "
        f"({result.samples_used} samples, "
        f"{result.evaluation_batches} evaluation batches, "
        f"evaluation time {result.measured_makespan:.1f}s)",
        f"trial statuses: {result.status_counts}",
        (f"artifact cache: {stats.get('hits', 0):.0f}/"
         f"{stats.get('lookups', 0):.0f} hits "
         f"({stats.get('hit_rate', 0.0) * 100:.1f}%): "
         f"{stats.get('prediction_hits', 0):.0f} full predictions reused, "
         f"{stats.get('artifact_hits', 0):.0f} emulations skipped "
         f"({stats.get('memory_hits', 0):.0f} memory tier, "
         f"{stats.get('store_hits', 0):.0f} store tier)"
         if stats else "artifact cache: disabled"),
        f"throughput: {throughput['trials']} trials in "
        f"{throughput['batch_wall_s']:.1f}s "
        f"({throughput['trials_per_sec']:.1f} trials/s); "
        f"{throughput['simulated_events']:,} simulated events at "
        f"{throughput['events_per_sec']:,.0f} events/s",
    ]
    if result.best is not None:
        lines.append(f"best recipe: {result.best.recipe.short_name()} "
                     f"({result.best.iteration_time:.2f} s/iter, "
                     f"MFU {result.best.mfu * 100:.1f}%)")
    _emit(payload, args.json, lines)
    return 0 if result.best is not None else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ArtifactCache, PredictionService
    from repro.service.server import serve

    cluster = get_cluster(args.cluster)
    service = PredictionService(
        cluster=cluster,
        estimator_mode=args.estimator,
        cache=ArtifactCache(max_entries=args.cache_entries),
        max_workers=args.jobs or 1,
        backend=args.backend,
        workers=_worker_hosts(args),
        sync_timeout=args.sync_timeout,
        lease_timeout=args.lease_timeout,
        store_dir=args.store_dir,
        scheduler=args.scheduler,
    )
    serve(service, host=args.host, port=args.port,
          max_pending=args.max_pending)
    return 0


def cmd_worker_host(args: argparse.Namespace) -> int:
    from repro.service.worker_host import serve

    try:
        serve(host=args.host, port=args.port, once=args.once,
              store_dir=args.store_dir)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.service.store import ArtifactStore, StoreError

    if not args.store_dir:
        print("error: cache requires --store-dir (or $REPRO_STORE_DIR)",
              file=sys.stderr)
        return 2
    try:
        store = ArtifactStore(args.store_dir, create=False)
        if args.action == "stats":
            payload = store.stats()
            counters = payload["counters"]
            lines = [
                f"store {payload['store_dir']} "
                f"(format {payload['store_format']})",
                f"entries:     {payload['entries']} "
                f"({payload['total_bytes']:,} bytes, budget "
                f"{payload['size_budget_bytes']:,})",
                f"this process: {counters['hits']} hits, "
                f"{counters['misses']} misses, {counters['puts']} puts, "
                f"{counters['corrupt']} corrupt",
            ]
            _emit(payload, args.json, lines)
            return 0
        if args.action == "gc":
            payload = store.gc(size_budget=args.budget)
            _emit(payload, args.json, [
                f"removed {payload['removed']} files "
                f"({payload['freed_bytes']:,} bytes freed, "
                f"{payload['remaining_bytes']:,} bytes remain)",
            ])
            return 0
        payload = store.verify(quarantine=args.quarantine)
        lines = [f"checked {payload['checked']} entries: "
                 f"{len(payload['corrupt'])} corrupt, "
                 f"{len(payload['quarantined'])} quarantined"]
        lines.extend(f"  corrupt: {name}" for name in payload["corrupt"])
        _emit(payload, args.json, lines)
        return 1 if payload["corrupt"] else 0
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


_COMMANDS = {
    "clusters": cmd_clusters,
    "models": cmd_models,
    "predict": cmd_predict,
    "compare": cmd_compare,
    "search": cmd_search,
    "service": cmd_service,
    "serve": cmd_serve,
    "worker-host": cmd_worker_host,
    "cache": cmd_cache,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
