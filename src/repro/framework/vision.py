"""Vision models (ResNet-style convolutional networks) on the virtual runtime.

The paper validates Maya on ResNet152 trained with PyTorch DDP and
``torch.compile`` on an 8xA40 node (Figure 10) and lists several other vision
families in the generality study (Table 4).  This module provides a
configurable convolutional network whose forward/backward pass emits cuDNN
convolutions, batch-norm / activation kernels (or fused Triton kernels when
"compiled"), pooling, a classifier GEMM and the DDP gradient all-reduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.cuda.cudnn import ConvolutionDescriptor
from repro.framework.worker import WorkerContext
from repro.hardware.kernel_cost import dtype_size


@dataclass(frozen=True)
class ConvBlockSpec:
    """A stage of residual blocks operating at one spatial resolution."""

    blocks: int
    in_channels: int
    out_channels: int
    spatial: int        # feature-map height == width at this stage
    kernel_size: int = 3
    bottleneck: bool = True


@dataclass(frozen=True)
class ConvNetSpec:
    """A ResNet-style convolutional classifier."""

    name: str
    stages: Tuple[ConvBlockSpec, ...]
    image_size: int = 224
    num_classes: int = 1000
    stem_channels: int = 64

    @property
    def num_conv_layers(self) -> int:
        per_block = 3 if self.stages[0].bottleneck else 2
        return 1 + sum(stage.blocks * per_block for stage in self.stages)

    @property
    def total_params(self) -> int:
        params = self.stem_channels * 3 * 7 * 7
        for stage in self.stages:
            per_block = self._block_params(stage)
            params += stage.blocks * per_block
        params += self.stages[-1].out_channels * self.num_classes
        return params

    @staticmethod
    def _block_params(stage: ConvBlockSpec) -> int:
        c_in, c_out, k = stage.in_channels, stage.out_channels, stage.kernel_size
        if stage.bottleneck:
            mid = c_out // 4
            return c_in * mid + mid * mid * k * k + mid * c_out + 2 * c_out
        return c_in * c_out * k * k + c_out * c_out * k * k + 2 * c_out

    def flops_per_sample(self) -> float:
        """Forward+backward FLOPs per image (3x forward convention)."""
        flops = 2.0 * self.stem_channels * 3 * 7 * 7 * (self.image_size // 2) ** 2
        for stage in self.stages:
            c_in, c_out, k = stage.in_channels, stage.out_channels, stage.kernel_size
            spatial = stage.spatial ** 2
            if stage.bottleneck:
                mid = c_out // 4
                per_block = 2.0 * spatial * (c_in * mid + mid * mid * k * k
                                             + mid * c_out)
            else:
                per_block = 2.0 * spatial * (c_in * c_out * k * k
                                             + c_out * c_out * k * k)
            flops += stage.blocks * per_block
        flops += 2.0 * self.stages[-1].out_channels * self.num_classes
        return 3.0 * flops


class VisionModel:
    """Executable vision model bound to a worker context."""

    def __init__(self, spec: ConvNetSpec, dtype: str = "float16",
                 compiled: bool = False) -> None:
        self.spec = spec
        self.dtype = dtype
        #: When true, normalisation + activation ops are emitted as fused
        #: Triton kernels, mimicking ``torch.compile`` output.
        self.compiled = compiled

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def parameter_bytes(self) -> int:
        return self.spec.total_params * dtype_size(self.dtype)

    def activation_bytes(self, batch: int) -> int:
        total = 0
        width = dtype_size(self.dtype)
        for stage in self.spec.stages:
            per_block = 3 if stage.bottleneck else 2
            elements = batch * stage.out_channels * stage.spatial ** 2
            total += stage.blocks * per_block * elements * width
        return int(total * 1.5)  # bn/activation copies

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def forward(self, ctx: WorkerContext, batch: int) -> None:
        spec = self.spec
        ctx.copy_h2d(batch * 3 * spec.image_size ** 2 * dtype_size(self.dtype))
        # Stem: 7x7 stride-2 convolution + norm/act + max pool.
        ctx.cudnn.set_convolution_descriptor(ConvolutionDescriptor(
            in_channels=3, out_channels=spec.stem_channels, kernel_size=7,
            stride=2, padding=3))
        ctx.cudnn.convolution_forward(batch, spec.image_size, spec.image_size,
                                      dtype=self.dtype)
        self._norm_act(ctx, batch * spec.stem_channels * (spec.image_size // 2) ** 2)
        ctx.cudnn.pooling_forward(batch, spec.stem_channels,
                                  spec.image_size // 2, spec.image_size // 2,
                                  dtype=self.dtype)
        for stage in spec.stages:
            for _ in range(stage.blocks):
                self._block_forward(ctx, stage, batch)
        # Global average pool + classifier.
        last = spec.stages[-1]
        ctx.reduce(batch * last.out_channels * last.spatial ** 2)
        ctx.gemm(m=batch, n=spec.num_classes, k=last.out_channels,
                 dtype=self.dtype)
        ctx.cross_entropy(batch, spec.num_classes)

    def backward(self, ctx: WorkerContext, batch: int) -> None:
        spec = self.spec
        last = spec.stages[-1]
        ctx.cross_entropy(batch, spec.num_classes, backward=True)
        ctx.gemm(m=batch, n=last.out_channels, k=spec.num_classes,
                 dtype=self.dtype)
        ctx.gemm(m=spec.num_classes, n=last.out_channels, k=batch,
                 dtype=self.dtype)
        for stage in reversed(spec.stages):
            for _ in range(stage.blocks):
                self._block_backward(ctx, stage, batch)
        ctx.cudnn.set_convolution_descriptor(ConvolutionDescriptor(
            in_channels=3, out_channels=spec.stem_channels, kernel_size=7,
            stride=2, padding=3))
        ctx.cudnn.convolution_backward_filter(batch, spec.image_size,
                                              spec.image_size, dtype=self.dtype)

    def reduce_gradients(self, ctx: WorkerContext) -> None:
        """DDP gradient all-reduce over the data-parallel group."""
        if ctx.dp_comm is None:
            return
        ctx.dp_comm.all_reduce(self.spec.total_params, dtype="float32",
                               stream=ctx.comm_stream)

    def optimizer_step(self, ctx: WorkerContext) -> None:
        ctx.optimizer_apply(self.spec.total_params)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _norm_act(self, ctx: WorkerContext, elements: int,
                  backward: bool = False) -> None:
        if self.compiled:
            # torch.compile fuses BN + ReLU (+ residual add) into one kernel.
            instructions = 12 if backward else 8
            ctx.fused_triton(elements, instructions)
        else:
            ctx.layer_norm(elements, backward=backward)
            ctx.gelu(elements, backward=backward)

    def _block_forward(self, ctx: WorkerContext, stage: ConvBlockSpec,
                       batch: int) -> None:
        convs = self._block_convs(stage)
        for in_ch, out_ch, k in convs:
            ctx.cudnn.set_convolution_descriptor(ConvolutionDescriptor(
                in_channels=in_ch, out_channels=out_ch, kernel_size=k,
                stride=1, padding=k // 2))
            ctx.cudnn.convolution_forward(batch, stage.spatial, stage.spatial,
                                          dtype=self.dtype)
            self._norm_act(ctx, batch * out_ch * stage.spatial ** 2)
        ctx.add(batch * stage.out_channels * stage.spatial ** 2)

    def _block_backward(self, ctx: WorkerContext, stage: ConvBlockSpec,
                        batch: int) -> None:
        convs = self._block_convs(stage)
        for in_ch, out_ch, k in reversed(convs):
            self._norm_act(ctx, batch * out_ch * stage.spatial ** 2,
                           backward=True)
            ctx.cudnn.set_convolution_descriptor(ConvolutionDescriptor(
                in_channels=in_ch, out_channels=out_ch, kernel_size=k,
                stride=1, padding=k // 2))
            ctx.cudnn.convolution_backward_data(batch, stage.spatial,
                                                stage.spatial, dtype=self.dtype)
            ctx.cudnn.convolution_backward_filter(batch, stage.spatial,
                                                  stage.spatial, dtype=self.dtype)
        ctx.add(batch * stage.out_channels * stage.spatial ** 2)

    @staticmethod
    def _block_convs(stage: ConvBlockSpec) -> List[Tuple[int, int, int]]:
        if stage.bottleneck:
            mid = stage.out_channels // 4
            return [
                (stage.in_channels, mid, 1),
                (mid, mid, stage.kernel_size),
                (mid, stage.out_channels, 1),
            ]
        return [
            (stage.in_channels, stage.out_channels, stage.kernel_size),
            (stage.out_channels, stage.out_channels, stage.kernel_size),
        ]
