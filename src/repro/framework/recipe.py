"""Training recipes: the configuration knobs of Table 5 in the paper.

A :class:`TrainingRecipe` captures one point of the configuration space that
Maya-Search explores: parallelism degrees, microbatching, pipeline
interleaving, activation recomputation, sequence parallelism and the
distributed optimizer, plus framework-level options used in the generality
study (ZeRO stage, offload, torch.compile).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

#: Recipe knobs that shape the *emulated trace* of a transformer training
#: job: parallel layout, schedule, microbatching, memory-saving features and
#: tensor dtype all change the operation stream the emulator captures.
#: ``compiled`` is deliberately absent -- for the Megatron-style engine it
#: only affects runtime estimation, never the trace shape -- so recipes that
#: differ only in non-structural knobs can share emulation artifacts (the
#: service layer's cross-trial cache keys on exactly this subset).
STRUCTURAL_KNOBS: Tuple[str, ...] = (
    "tensor_parallel",
    "pipeline_parallel",
    "microbatch_multiplier",
    "virtual_stages",
    "activation_recomputation",
    "sequence_parallelism",
    "distributed_optimizer",
    "schedule",
    "zero_stage",
    "offload",
    "dtype",
)


@dataclass(frozen=True)
class TrainingRecipe:
    """One training configuration ("recipe") for a fixed global batch size."""

    tensor_parallel: int = 1
    pipeline_parallel: int = 1
    #: Number of microbatches is ``microbatch_multiplier * pipeline_parallel``
    #: (gradient accumulation when ``pipeline_parallel == 1``).
    microbatch_multiplier: int = 1
    #: Number of interleaved model chunks per pipeline rank (virtual stages).
    virtual_stages: int = 1
    activation_recomputation: bool = False
    sequence_parallelism: bool = False
    distributed_optimizer: bool = False
    #: Pipeline schedule family: "1f1b" or "gpipe".
    schedule: str = "1f1b"
    #: DeepSpeed-style ZeRO stage (0-3); stage >= 1 implies a sharded optimizer.
    zero_stage: int = 0
    #: Offload optimizer state / activations to host memory.
    offload: bool = False
    #: Emit torch.compile-style fused kernels for elementwise regions.
    compiled: bool = False
    dtype: str = "bfloat16"

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def num_microbatches(self) -> int:
        return self.microbatch_multiplier * self.pipeline_parallel

    def model_parallel_size(self) -> int:
        return self.tensor_parallel * self.pipeline_parallel

    def data_parallel_degree(self, world_size: int) -> int:
        return world_size // self.model_parallel_size()

    def micro_batch_size(self, global_batch_size: int, world_size: int) -> int:
        """Per-microbatch sample count implied by the global batch size."""
        dp = self.data_parallel_degree(world_size)
        denominator = dp * self.num_microbatches
        return global_batch_size // denominator

    # ------------------------------------------------------------------
    # validity
    # ------------------------------------------------------------------
    def validate(self, world_size: int, global_batch_size: int,
                 num_layers: int, num_heads: int,
                 gpus_per_node: Optional[int] = None) -> List[str]:
        """Return a list of reasons this recipe is invalid (empty if valid)."""
        problems: List[str] = []
        if self.tensor_parallel < 1 or self.pipeline_parallel < 1:
            problems.append("parallel degrees must be >= 1")
            return problems
        if world_size % self.model_parallel_size() != 0:
            problems.append(
                f"world size {world_size} not divisible by TPxPP "
                f"{self.model_parallel_size()}"
            )
            return problems
        dp = self.data_parallel_degree(world_size)
        if dp < 1:
            problems.append("data-parallel degree would be zero")
        if num_heads % self.tensor_parallel != 0:
            problems.append(
                f"attention heads {num_heads} not divisible by TP "
                f"{self.tensor_parallel}"
            )
        if gpus_per_node is not None and self.tensor_parallel > gpus_per_node:
            problems.append(
                f"TP degree {self.tensor_parallel} exceeds GPUs per node "
                f"{gpus_per_node}"
            )
        if self.virtual_stages > 1 and self.pipeline_parallel == 1:
            problems.append("virtual stages require pipeline parallelism > 1")
        total_chunks = self.pipeline_parallel * self.virtual_stages
        if num_layers < total_chunks:
            problems.append(
                f"model has {num_layers} layers but needs >= {total_chunks} "
                "for the requested pipeline split"
            )
        if dp >= 1:
            denominator = dp * self.num_microbatches
            if global_batch_size % denominator != 0:
                problems.append(
                    f"global batch {global_batch_size} not divisible by "
                    f"dp x microbatches = {denominator}"
                )
            elif global_batch_size // denominator < 1:
                problems.append("micro batch size would be zero")
        if self.sequence_parallelism and self.tensor_parallel == 1:
            problems.append("sequence parallelism requires TP > 1")
        if self.schedule not in ("1f1b", "gpipe"):
            problems.append(f"unknown schedule '{self.schedule}'")
        if not 0 <= self.zero_stage <= 3:
            problems.append(f"invalid ZeRO stage {self.zero_stage}")
        return problems

    def is_valid(self, world_size: int, global_batch_size: int,
                 num_layers: int, num_heads: int,
                 gpus_per_node: Optional[int] = None) -> bool:
        return not self.validate(world_size, global_batch_size, num_layers,
                                 num_heads, gpus_per_node)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def short_name(self) -> str:
        """Compact identifier used in logs, figures and benchmark rows."""
        flags = []
        if self.activation_recomputation:
            flags.append("ar")
        if self.sequence_parallelism:
            flags.append("sp")
        if self.distributed_optimizer:
            flags.append("do")
        if self.virtual_stages > 1:
            flags.append(f"vs{self.virtual_stages}")
        suffix = "-".join(flags)
        name = (f"tp{self.tensor_parallel}-pp{self.pipeline_parallel}"
                f"-mb{self.microbatch_multiplier}")
        return f"{name}-{suffix}" if suffix else name

    def replace(self, **kwargs) -> "TrainingRecipe":
        """Return a copy with some knobs changed."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # signatures (artifact-cache keys)
    # ------------------------------------------------------------------
    def structural_signature(self) -> Tuple:
        """Hashable key over the knobs that determine the emulated trace.

        Two recipes with equal structural signatures produce byte-identical
        operation streams from the training engine, so their emulation and
        collation artifacts are interchangeable.
        """
        data = self.to_dict()
        return tuple((name, data[name]) for name in STRUCTURAL_KNOBS)

    def signature(self) -> Tuple:
        """Hashable key over every knob (full prediction identity)."""
        return tuple(sorted(self.to_dict().items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "tensor_parallel": self.tensor_parallel,
            "pipeline_parallel": self.pipeline_parallel,
            "microbatch_multiplier": self.microbatch_multiplier,
            "virtual_stages": self.virtual_stages,
            "activation_recomputation": self.activation_recomputation,
            "sequence_parallelism": self.sequence_parallelism,
            "distributed_optimizer": self.distributed_optimizer,
            "schedule": self.schedule,
            "zero_stage": self.zero_stage,
            "offload": self.offload,
            "compiled": self.compiled,
            "dtype": self.dtype,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "TrainingRecipe":
        return TrainingRecipe(**data)  # type: ignore[arg-type]
