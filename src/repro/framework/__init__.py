"""Miniature Megatron-style training framework.

This package plays the role of PyTorch + Megatron-LM / DeepSpeed in the
paper: it is the *user code* layer that issues device API calls against the
virtual CUDA runtime.  Maya never inspects this code -- it only observes the
API stream -- which is exactly the transparency property the paper claims.

The framework supports the full set of techniques in Table 1/Table 5 of the
paper: data / tensor / pipeline / sequence parallelism, interleaved pipeline
schedules (virtual stages), activation recomputation, gradient accumulation,
distributed optimizer (ZeRO) and mixed precision, plus vision models and
fused (``torch.compile``-style) kernels.
"""

from repro.framework.topology import ParallelTopology
from repro.framework.worker import WorkerContext
from repro.framework.tensor import VirtualTensor
from repro.framework.engine import TrainingEngine

__all__ = [
    "ParallelTopology",
    "WorkerContext",
    "VirtualTensor",
    "TrainingEngine",
]
