"""3D parallel topology: mapping global ranks to (DP, PP, TP) coordinates.

Follows Megatron-LM's rank ordering: tensor-parallel ranks are innermost
(adjacent global ranks, so TP groups stay inside a node whenever
``tp_degree <= gpus_per_node``), then pipeline parallelism, then data
parallelism outermost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class ParallelTopology:
    """Decomposition of a world of GPUs into DP x PP x TP."""

    world_size: int
    tensor_parallel: int
    pipeline_parallel: int

    def __post_init__(self) -> None:
        if self.world_size <= 0:
            raise ValueError("world_size must be positive")
        if self.tensor_parallel <= 0 or self.pipeline_parallel <= 0:
            raise ValueError("parallel degrees must be positive")
        model_parallel = self.tensor_parallel * self.pipeline_parallel
        if self.world_size % model_parallel != 0:
            raise ValueError(
                f"world size {self.world_size} is not divisible by "
                f"TP x PP = {model_parallel}"
            )

    # ------------------------------------------------------------------
    # degrees
    # ------------------------------------------------------------------
    @property
    def data_parallel(self) -> int:
        return self.world_size // (self.tensor_parallel * self.pipeline_parallel)

    # ------------------------------------------------------------------
    # rank <-> coordinate mapping
    # ------------------------------------------------------------------
    def coords_of(self, rank: int) -> Tuple[int, int, int]:
        """Return ``(dp_rank, pp_rank, tp_rank)`` of a global rank."""
        self._check_rank(rank)
        tp_rank = rank % self.tensor_parallel
        pp_rank = (rank // self.tensor_parallel) % self.pipeline_parallel
        dp_rank = rank // (self.tensor_parallel * self.pipeline_parallel)
        return dp_rank, pp_rank, tp_rank

    def rank_of(self, dp_rank: int, pp_rank: int, tp_rank: int) -> int:
        """Inverse of :meth:`coords_of`."""
        if not 0 <= dp_rank < self.data_parallel:
            raise ValueError(f"dp_rank {dp_rank} out of range")
        if not 0 <= pp_rank < self.pipeline_parallel:
            raise ValueError(f"pp_rank {pp_rank} out of range")
        if not 0 <= tp_rank < self.tensor_parallel:
            raise ValueError(f"tp_rank {tp_rank} out of range")
        return (dp_rank * self.pipeline_parallel * self.tensor_parallel
                + pp_rank * self.tensor_parallel + tp_rank)

    # ------------------------------------------------------------------
    # communicator groups
    # ------------------------------------------------------------------
    def tensor_parallel_group(self, rank: int) -> List[int]:
        """Global ranks sharing this rank's TP communicator."""
        dp_rank, pp_rank, _ = self.coords_of(rank)
        return [self.rank_of(dp_rank, pp_rank, tp)
                for tp in range(self.tensor_parallel)]

    def pipeline_parallel_group(self, rank: int) -> List[int]:
        """Global ranks sharing this rank's PP communicator."""
        dp_rank, _, tp_rank = self.coords_of(rank)
        return [self.rank_of(dp_rank, pp, tp_rank)
                for pp in range(self.pipeline_parallel)]

    def data_parallel_group(self, rank: int) -> List[int]:
        """Global ranks sharing this rank's DP communicator."""
        _, pp_rank, tp_rank = self.coords_of(rank)
        return [self.rank_of(dp, pp_rank, tp_rank)
                for dp in range(self.data_parallel)]

    def all_tensor_parallel_groups(self) -> List[List[int]]:
        groups = []
        for dp in range(self.data_parallel):
            for pp in range(self.pipeline_parallel):
                groups.append([self.rank_of(dp, pp, tp)
                               for tp in range(self.tensor_parallel)])
        return groups

    def all_pipeline_parallel_groups(self) -> List[List[int]]:
        groups = []
        for dp in range(self.data_parallel):
            for tp in range(self.tensor_parallel):
                groups.append([self.rank_of(dp, pp, tp)
                               for pp in range(self.pipeline_parallel)])
        return groups

    def all_data_parallel_groups(self) -> List[List[int]]:
        groups = []
        for pp in range(self.pipeline_parallel):
            for tp in range(self.tensor_parallel):
                groups.append([self.rank_of(dp, pp, tp)
                               for dp in range(self.data_parallel)])
        return groups

    # ------------------------------------------------------------------
    # pipeline neighbours
    # ------------------------------------------------------------------
    def is_first_stage(self, rank: int) -> bool:
        return self.coords_of(rank)[1] == 0

    def is_last_stage(self, rank: int) -> bool:
        return self.coords_of(rank)[1] == self.pipeline_parallel - 1

    def next_stage_rank(self, rank: int) -> int:
        """Global rank of the next pipeline stage (wraps around)."""
        dp_rank, pp_rank, tp_rank = self.coords_of(rank)
        return self.rank_of(dp_rank, (pp_rank + 1) % self.pipeline_parallel,
                            tp_rank)

    def prev_stage_rank(self, rank: int) -> int:
        """Global rank of the previous pipeline stage (wraps around)."""
        dp_rank, pp_rank, tp_rank = self.coords_of(rank)
        return self.rank_of(dp_rank, (pp_rank - 1) % self.pipeline_parallel,
                            tp_rank)

    # ------------------------------------------------------------------
    # deduplication / selective launch support (Section 7.4)
    # ------------------------------------------------------------------
    def unique_ranks(self) -> List[int]:
        """Ranks whose traces are distinct under Megatron-style SPMD.

        Workers that differ only in their data-parallel or tensor-parallel
        coordinate perform identical work; the pipeline-parallel coordinate
        changes which layers (and schedule phase) a worker executes.  The
        representative set is therefore the first DP / first TP rank of every
        pipeline stage -- exactly the selective-launch rule in Section 7.4.
        """
        return [self.rank_of(0, pp, 0) for pp in range(self.pipeline_parallel)]

    def representative_of(self, rank: int) -> int:
        """Map any rank to its representative unique rank."""
        _, pp_rank, _ = self.coords_of(rank)
        return self.rank_of(0, pp_rank, 0)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} outside world of {self.world_size}")
