"""Process-group management.

Real frameworks bootstrap NCCL communicators by broadcasting a unique id
through an out-of-band store; the :class:`ProcessGroupRegistry` plays that
store's role, handing every rank of the same group the same
:class:`~repro.cuda.nccl.NcclUniqueId` so the trace collator can later match
their collectives by communicator id and sequence number.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cuda.nccl import NcclCommunicator, NcclUniqueId, comm_init_rank
from repro.cuda.runtime import CudaRuntime


class ProcessGroupRegistry:
    """Shared registry of communicator bootstrap ids for one training job."""

    def __init__(self) -> None:
        self._unique_ids: Dict[Tuple[str, Tuple[int, ...]], NcclUniqueId] = {}

    def unique_id_for(self, tag: str, ranks: Sequence[int]) -> NcclUniqueId:
        """Return the shared unique id for group ``ranks`` with label ``tag``."""
        key = (tag, tuple(ranks))
        if key not in self._unique_ids:
            self._unique_ids[key] = NcclUniqueId.generate(tag=tag)
        return self._unique_ids[key]

    def init_communicator(
        self,
        runtime: CudaRuntime,
        tag: str,
        rank: int,
        ranks: Sequence[int],
    ) -> NcclCommunicator:
        """``ncclCommInitRank`` for ``rank`` within group ``ranks``."""
        unique_id = self.unique_id_for(tag, ranks)
        return comm_init_rank(runtime, unique_id, rank, ranks)

    def known_groups(self) -> List[Tuple[str, Tuple[int, ...]]]:
        return list(self._unique_ids.keys())
