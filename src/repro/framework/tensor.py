"""Virtual tensors.

A :class:`VirtualTensor` is a shape + dtype + device allocation, with no
numerical payload.  The paper's key observation -- that DLT control flow does
not depend on computed values -- means a tensor's metadata is all the
framework needs to drive the same sequence of device API calls the real
workload would issue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.cuda.handles import DevicePointer
from repro.cuda.runtime import CudaRuntime
from repro.hardware.kernel_cost import dtype_size


@dataclass
class VirtualTensor:
    """A device tensor described only by metadata."""

    shape: Tuple[int, ...]
    dtype: str = "bfloat16"
    pointer: Optional[DevicePointer] = None
    name: str = ""

    @property
    def numel(self) -> int:
        return int(math.prod(self.shape)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.numel * dtype_size(self.dtype)

    @property
    def is_allocated(self) -> bool:
        return self.pointer is not None

    def __post_init__(self) -> None:
        if any(dim < 0 for dim in self.shape):
            raise ValueError(f"negative dimension in shape {self.shape}")


def empty(
    runtime: CudaRuntime,
    shape: Sequence[int],
    dtype: str = "bfloat16",
    name: str = "",
) -> VirtualTensor:
    """Allocate an uninitialised tensor on the device (``torch.empty``)."""
    tensor = VirtualTensor(shape=tuple(int(d) for d in shape), dtype=dtype,
                           name=name)
    tensor.pointer = runtime.cuda_malloc(tensor.nbytes)
    return tensor


def zeros(
    runtime: CudaRuntime,
    shape: Sequence[int],
    dtype: str = "bfloat16",
    name: str = "",
    stream: int = 0,
) -> VirtualTensor:
    """Allocate a zero-initialised tensor (``torch.zeros``): malloc + memset."""
    tensor = empty(runtime, shape, dtype, name)
    runtime.cuda_memset_async(tensor.nbytes, stream=stream)
    return tensor


def free(runtime: CudaRuntime, tensor: VirtualTensor) -> None:
    """Release a tensor's device allocation."""
    if tensor.pointer is not None:
        runtime.cuda_free(tensor.pointer)
        tensor.pointer = None
