"""Per-rank worker context.

The :class:`WorkerContext` bundles everything a single training worker
(rank) holds when running a real Megatron-LM / DeepSpeed job: its CUDA
context, cuBLAS / cuDNN handles, a dedicated communication stream, and NCCL
communicators for the tensor-, pipeline- and data-parallel groups.  Model
code issues device work through the small helper methods here, which keeps
the kernel vocabulary (and therefore the trace vocabulary) consistent with
the kernel names listed in Tables 7-9 of the paper.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.emulator import DeviceEmulator
from repro.cuda.cublas import CublasHandle
from repro.cuda.cudnn import CudnnHandle
from repro.cuda.nccl import NcclCommunicator
from repro.cuda.runtime import DEFAULT_STREAM, CudaRuntime
from repro.framework.process_group import ProcessGroupRegistry
from repro.framework.topology import ParallelTopology
from repro.hardware.kernel_cost import dtype_size


class WorkerContext:
    """Execution context of one training worker."""

    def __init__(
        self,
        rank: int,
        emulator: DeviceEmulator,
        topology: ParallelTopology,
        groups: ProcessGroupRegistry,
        dtype: str = "bfloat16",
    ) -> None:
        self.rank = rank
        self.emulator = emulator
        self.runtime: CudaRuntime = emulator.runtime
        self.topology = topology
        self.dtype = dtype

        self.compute_stream = DEFAULT_STREAM
        self.comm_stream = self.runtime.cuda_stream_create().stream_id
        # Dedicated streams for pipeline point-to-point transfers, as in
        # Megatron's batched isend/irecv: receives must never queue behind
        # sends (or vice versa) on the compute stream, otherwise deep
        # pipelines can deadlock.  Ordering against compute is expressed
        # with CUDA events (see TrainingEngine._p2p).
        self.p2p_send_stream = self.runtime.cuda_stream_create().stream_id
        self.p2p_recv_stream = self.runtime.cuda_stream_create().stream_id

        self.cublas = CublasHandle(self.runtime)
        self.cublas.set_stream(self.compute_stream)
        self.cudnn = CudnnHandle(self.runtime)
        self.cudnn.set_stream(self.compute_stream)

        self.tp_comm = self._maybe_group(groups, "tp",
                                         topology.tensor_parallel_group(rank))
        self.pp_comm = self._maybe_group(groups, "pp",
                                         topology.pipeline_parallel_group(rank))
        self.dp_comm = self._maybe_group(groups, "dp",
                                         topology.data_parallel_group(rank))
        #: Extra communicators (e.g. embedding group, expert parallel).
        self.extra_comms: Dict[str, NcclCommunicator] = {}

    def _maybe_group(self, groups: ProcessGroupRegistry, tag: str,
                     ranks) -> Optional[NcclCommunicator]:
        if len(ranks) <= 1:
            return None
        return groups.init_communicator(self.runtime, tag, self.rank, ranks)

    # ------------------------------------------------------------------
    # coordinates
    # ------------------------------------------------------------------
    @property
    def dp_rank(self) -> int:
        return self.topology.coords_of(self.rank)[0]

    @property
    def pp_rank(self) -> int:
        return self.topology.coords_of(self.rank)[1]

    @property
    def tp_rank(self) -> int:
        return self.topology.coords_of(self.rank)[2]

    @property
    def tp_degree(self) -> int:
        return self.topology.tensor_parallel

    @property
    def pp_degree(self) -> int:
        return self.topology.pipeline_parallel

    @property
    def dp_degree(self) -> int:
        return self.topology.data_parallel

    # ------------------------------------------------------------------
    # kernel helpers (GEMM family)
    # ------------------------------------------------------------------
    def gemm(self, m: int, n: int, k: int, batch: int = 1,
             dtype: Optional[str] = None) -> None:
        """Dense matrix multiplication on the compute stream."""
        dtype = dtype or self.dtype
        if dtype in ("float16", "bfloat16"):
            self.cublas.hgemm(m, n, k, batch=batch)
        else:
            self.cublas.sgemm(m, n, k, batch=batch)

    def lt_matmul(self, m: int, n: int, k: int, batch: int = 1,
                  dtype: Optional[str] = None) -> None:
        self.cublas.lt_matmul(m, n, k, dtype=dtype or self.dtype, batch=batch)

    # ------------------------------------------------------------------
    # kernel helpers (memory-bound)
    # ------------------------------------------------------------------
    def _elementwise(self, api: str, kernel_class: str, elements: int,
                     traffic_factor: float = 2.0,
                     dtype: Optional[str] = None,
                     extra: Optional[Dict[str, object]] = None) -> None:
        dtype = dtype or self.dtype
        params: Dict[str, object] = {
            "elements": float(elements),
            "bytes": float(elements * dtype_size(dtype) * traffic_factor),
            "dtype": dtype,
        }
        if extra:
            params.update(extra)
        self.runtime.launch_kernel(api=api, kernel_class=kernel_class,
                                   params=params, stream=self.compute_stream)

    def layer_norm(self, elements: int, backward: bool = False) -> None:
        api = "cuComputeGradInput" if backward else "cuApplyLayerNorm"
        self._elementwise(api, "layernorm", elements, traffic_factor=3.0)

    def layer_norm_grad_weights(self, elements: int) -> None:
        self._elementwise("cuComputeGradGammaBeta", "layernorm", elements,
                          traffic_factor=2.0)

    def softmax(self, elements: int, backward: bool = False,
                masked: bool = True) -> None:
        prefix = "masked_softmax_warp" if masked else "softmax_warp"
        api = f"{prefix}_backward" if backward else f"{prefix}_forward"
        self._elementwise(api, "softmax", elements, traffic_factor=2.5)

    def dropout(self, elements: int, backward: bool = False) -> None:
        api = ("vectorized_elementwise_kernel" if backward
               else "fused_dropout_kernel_vec")
        self._elementwise(api, "dropout", elements, traffic_factor=2.5)

    def gelu(self, elements: int, backward: bool = False) -> None:
        api = "unrolled_elementwise_kernel" if backward else "elementwise_kernel"
        self._elementwise(api, "elementwise", elements, traffic_factor=2.0)

    def add(self, elements: int) -> None:
        self._elementwise("vectorized_elementwise_kernel", "elementwise",
                          elements, traffic_factor=3.0)

    def scale(self, elements: int) -> None:
        self._elementwise("elementwise_kernel", "elementwise", elements,
                          traffic_factor=2.0)

    def cast(self, elements: int) -> None:
        self._elementwise("unrolled_elementwise_kernel", "elementwise",
                          elements, traffic_factor=1.5)

    def reduce(self, elements: int) -> None:
        self._elementwise("reduce_kernel", "reduce", elements,
                          traffic_factor=1.0)

    def embedding_lookup(self, tokens: int, hidden: int,
                         backward: bool = False) -> None:
        api = "compute_grad_weight" if backward else "indexSelectLargeIndex"
        self._elementwise(api, "embedding", tokens * hidden, traffic_factor=2.0)

    def cross_entropy(self, tokens: int, vocab: int,
                      backward: bool = False) -> None:
        api = ("nll_loss_backward_reduce_cuda_kernel_2d" if backward
               else "nll_loss_forward_reduce_cuda_kernel_2d")
        self._elementwise(api, "cross_entropy", tokens * vocab,
                          traffic_factor=1.0, dtype="float32")

    def optimizer_apply(self, numel: int) -> None:
        """Fused Adam-style parameter update (multi_tensor_apply)."""
        self._elementwise("multi_tensor_apply_kernel", "optimizer_apply",
                          numel, traffic_factor=6.0, dtype="float32")

    def fused_triton(self, elements: int, instructions: int) -> None:
        """A ``torch.compile``-generated fused Triton kernel.

        ``instructions`` is the number of primitive Triton ops in the kernel
        body; Appendix B uses it as the key feature for runtime prediction.
        """
        dtype = self.dtype
        self.runtime.launch_kernel(
            api="triton", kernel_class="fused_triton",
            params={
                "elements": float(elements),
                "bytes": float(elements * dtype_size(dtype) * 2.0),
                "flops": float(elements * instructions),
                "instructions": float(instructions),
                "dtype": dtype,
            },
            stream=self.compute_stream,
        )

    # ------------------------------------------------------------------
    # memory traffic helpers
    # ------------------------------------------------------------------
    def copy_h2d(self, nbytes: int) -> None:
        self.runtime.cuda_memcpy_async(nbytes, "h2d", stream=self.compute_stream)

    def copy_d2h(self, nbytes: int) -> None:
        self.runtime.cuda_memcpy_async(nbytes, "d2h", stream=self.compute_stream)

    def copy_d2d(self, nbytes: int) -> None:
        self.runtime.cuda_memcpy_async(nbytes, "d2d", stream=self.compute_stream)

    # ------------------------------------------------------------------
    # synchronisation helpers
    # ------------------------------------------------------------------
    def record_comm_event(self):
        """Record an event on the comm stream (for overlap fences)."""
        event = self.runtime.cuda_event_create()
        self.runtime.cuda_event_record(event, stream=self.comm_stream)
        return event

    def wait_on_compute(self, event) -> None:
        """Make the compute stream wait for ``event``."""
        self.runtime.cuda_stream_wait_event(self.compute_stream, event)

    def sync_device(self) -> None:
        self.runtime.cuda_device_synchronize()
