"""Pipeline-parallel execution schedules.

A schedule is a per-rank list of :class:`PipelineAction` items describing
*what* the rank does and in which order: run a forward or backward pass of
one (chunk, microbatch), or exchange activations / gradients with a
neighbouring stage.  The training engine walks the list and emits device API
calls; the simulator then reconstructs pipeline bubbles purely from the
send/recv dependencies, with no schedule-specific modelling -- which is the
property the paper uses to argue Maya handles novel schedules (e.g.
DualPipe) for free.

Implemented schedules:

* :func:`gpipe_schedule` -- all forwards, then all backwards,
* :func:`one_f_one_b_schedule` -- Megatron's non-interleaved 1F1B,
* :func:`interleaved_1f1b_schedule` -- Megatron's interleaved 1F1B with
  ``virtual_stages`` model chunks per rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class PipelineAction:
    """One step of a pipeline schedule on a particular rank.

    ``kind`` is one of ``forward``, ``backward``, ``recv_fwd``, ``send_fwd``,
    ``recv_bwd``, ``send_bwd``.  ``peer`` is the pipeline rank on the other
    end of a transfer (``None`` for compute actions).
    """

    kind: str
    microbatch: int
    chunk: int = 0
    peer: Optional[int] = None


def _compute(kind: str, microbatch: int, chunk: int) -> PipelineAction:
    return PipelineAction(kind=kind, microbatch=microbatch, chunk=chunk)


def _xfer(kind: str, microbatch: int, chunk: int, peer: int) -> PipelineAction:
    return PipelineAction(kind=kind, microbatch=microbatch, chunk=chunk, peer=peer)


# ----------------------------------------------------------------------
# connectivity rules
# ----------------------------------------------------------------------
def forward_source(pp_rank: int, pp_size: int, chunk: int,
                   num_chunks: int) -> Optional[tuple]:
    """(peer pp_rank, peer chunk) feeding this chunk's forward, or None."""
    if pp_rank > 0:
        return pp_rank - 1, chunk
    if chunk > 0:
        return pp_size - 1, chunk - 1
    return None


def forward_destination(pp_rank: int, pp_size: int, chunk: int,
                        num_chunks: int) -> Optional[tuple]:
    """(peer pp_rank, peer chunk) consuming this chunk's forward output."""
    if pp_rank < pp_size - 1:
        return pp_rank + 1, chunk
    if chunk < num_chunks - 1:
        return 0, chunk + 1
    return None


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def gpipe_schedule(pp_rank: int, pp_size: int,
                   num_microbatches: int) -> List[PipelineAction]:
    """GPipe: run every forward microbatch, then every backward."""
    _validate(pp_rank, pp_size, num_microbatches)
    actions: List[PipelineAction] = []
    for mb in range(num_microbatches):
        actions.extend(_forward_block(pp_rank, pp_size, mb, chunk=0, num_chunks=1))
    for mb in reversed(range(num_microbatches)):
        actions.extend(_backward_block(pp_rank, pp_size, mb, chunk=0, num_chunks=1))
    return actions


def one_f_one_b_schedule(pp_rank: int, pp_size: int,
                         num_microbatches: int) -> List[PipelineAction]:
    """Megatron's non-interleaved 1F1B schedule."""
    _validate(pp_rank, pp_size, num_microbatches)
    warmup = min(pp_size - pp_rank - 1, num_microbatches)
    remaining = num_microbatches - warmup

    actions: List[PipelineAction] = []
    forward_mb = 0
    backward_mb = 0
    for _ in range(warmup):
        actions.extend(_forward_block(pp_rank, pp_size, forward_mb, 0, 1))
        forward_mb += 1
    for _ in range(remaining):
        actions.extend(_forward_block(pp_rank, pp_size, forward_mb, 0, 1))
        forward_mb += 1
        actions.extend(_backward_block(pp_rank, pp_size, backward_mb, 0, 1))
        backward_mb += 1
    for _ in range(warmup):
        actions.extend(_backward_block(pp_rank, pp_size, backward_mb, 0, 1))
        backward_mb += 1
    return actions


def interleaved_1f1b_schedule(
    pp_rank: int,
    pp_size: int,
    num_microbatches: int,
    num_chunks: int,
) -> List[PipelineAction]:
    """Megatron's interleaved 1F1B schedule with ``num_chunks`` model chunks.

    Follows the virtual-iteration ordering of Megatron-LM: microbatches are
    processed in groups of ``pp_size`` per chunk, with a warmup of
    ``2*(pp_size - pp_rank - 1) + (num_chunks - 1) * pp_size`` forward
    passes before entering the steady 1F1B phase.
    """
    _validate(pp_rank, pp_size, num_microbatches)
    if num_chunks <= 1:
        return one_f_one_b_schedule(pp_rank, pp_size, num_microbatches)

    total_virtual = num_microbatches * num_chunks
    group = pp_size * num_chunks
    warmup = min(2 * (pp_size - pp_rank - 1) + (num_chunks - 1) * pp_size,
                 total_virtual)
    remaining = total_virtual - warmup

    def chunk_of(virtual_iter: int, forward: bool) -> int:
        in_group = virtual_iter % group
        chunk = in_group // pp_size
        if not forward:
            chunk = num_chunks - chunk - 1
        return chunk

    actions: List[PipelineAction] = []
    fwd_counts = [0] * num_chunks
    bwd_counts = [0] * num_chunks
    fwd_iter = 0
    bwd_iter = 0

    def do_forward() -> None:
        nonlocal fwd_iter
        chunk = chunk_of(fwd_iter, forward=True)
        mb = fwd_counts[chunk]
        fwd_counts[chunk] += 1
        actions.extend(_forward_block(pp_rank, pp_size, mb, chunk, num_chunks))
        fwd_iter += 1

    def do_backward() -> None:
        nonlocal bwd_iter
        chunk = chunk_of(bwd_iter, forward=False)
        mb = bwd_counts[chunk]
        bwd_counts[chunk] += 1
        actions.extend(_backward_block(pp_rank, pp_size, mb, chunk, num_chunks))
        bwd_iter += 1

    for _ in range(warmup):
        do_forward()
    for _ in range(remaining):
        do_forward()
        do_backward()
    for _ in range(total_virtual - remaining):
        do_backward()
    return actions


def build_schedule(
    pp_rank: int,
    pp_size: int,
    num_microbatches: int,
    virtual_stages: int = 1,
    kind: str = "1f1b",
) -> List[PipelineAction]:
    """Dispatch to the requested schedule family."""
    if kind == "gpipe":
        return gpipe_schedule(pp_rank, pp_size, num_microbatches)
    if kind == "1f1b":
        if virtual_stages > 1:
            return interleaved_1f1b_schedule(pp_rank, pp_size,
                                             num_microbatches, virtual_stages)
        return one_f_one_b_schedule(pp_rank, pp_size, num_microbatches)
    raise ValueError(f"unknown schedule kind '{kind}'")


# ----------------------------------------------------------------------
# building blocks
# ----------------------------------------------------------------------
def _forward_block(pp_rank: int, pp_size: int, microbatch: int, chunk: int,
                   num_chunks: int) -> List[PipelineAction]:
    block: List[PipelineAction] = []
    source = forward_source(pp_rank, pp_size, chunk, num_chunks)
    if source is not None:
        block.append(_xfer("recv_fwd", microbatch, chunk, source[0]))
    block.append(_compute("forward", microbatch, chunk))
    destination = forward_destination(pp_rank, pp_size, chunk, num_chunks)
    if destination is not None:
        block.append(_xfer("send_fwd", microbatch, chunk, destination[0]))
    return block


def _backward_block(pp_rank: int, pp_size: int, microbatch: int, chunk: int,
                    num_chunks: int) -> List[PipelineAction]:
    block: List[PipelineAction] = []
    # Gradients flow along the reverse of the forward connectivity.
    destination = forward_destination(pp_rank, pp_size, chunk, num_chunks)
    if destination is not None:
        block.append(_xfer("recv_bwd", microbatch, chunk, destination[0]))
    block.append(_compute("backward", microbatch, chunk))
    source = forward_source(pp_rank, pp_size, chunk, num_chunks)
    if source is not None:
        block.append(_xfer("send_bwd", microbatch, chunk, source[0]))
    return block


def _validate(pp_rank: int, pp_size: int, num_microbatches: int) -> None:
    if pp_size <= 0:
        raise ValueError("pipeline size must be positive")
    if not 0 <= pp_rank < pp_size:
        raise ValueError(f"pp_rank {pp_rank} outside pipeline of size {pp_size}")
    if num_microbatches <= 0:
        raise ValueError("number of microbatches must be positive")


# ----------------------------------------------------------------------
# schedule introspection helpers (used by tests and the analytical baselines)
# ----------------------------------------------------------------------
def count_compute_actions(actions: List[PipelineAction]) -> dict:
    """Return ``{"forward": n, "backward": n}`` counts for a schedule."""
    counts = {"forward": 0, "backward": 0}
    for action in actions:
        if action.kind in counts:
            counts[action.kind] += 1
    return counts


def max_in_flight_microbatches(actions: List[PipelineAction]) -> int:
    """Peak number of microbatches with a completed forward awaiting backward.

    This is the quantity that determines activation-memory pressure under a
    given schedule (warmup depth of 1F1B, everything for GPipe).
    """
    in_flight = 0
    peak = 0
    for action in actions:
        if action.kind == "forward":
            in_flight += 1
            peak = max(peak, in_flight)
        elif action.kind == "backward":
            in_flight -= 1
    return peak
