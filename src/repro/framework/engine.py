"""Training engine: the per-rank "user training script".

:class:`TrainingEngine` is the piece of code Maya treats as an opaque
workload.  Given a transformer model and a :class:`TrainingRecipe` it builds
the rank's pipeline stage(s), allocates parameters / gradients / optimizer
state on the virtual device, and runs training iterations -- walking the
pipeline schedule, emitting forward/backward kernels, activation transfers,
gradient reductions and the optimizer step.

Everything Maya later predicts (iteration time, communication time, peak
memory, OOM behaviour) is a consequence of the API calls this engine issues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.emulator import DeviceEmulator
from repro.framework import tensor as vt
from repro.framework.optimizer import MixedPrecisionAdam, OptimizerConfig
from repro.framework.process_group import ProcessGroupRegistry
from repro.framework.recipe import TrainingRecipe
from repro.framework.schedules import PipelineAction, build_schedule
from repro.framework.topology import ParallelTopology
from repro.framework.transformer import (
    ParallelConfig,
    TransformerModelSpec,
    TransformerStage,
    split_layers,
)
from repro.framework.worker import WorkerContext
from repro.hardware.kernel_cost import dtype_size


class RecipeValidationError(ValueError):
    """Raised when a training recipe cannot be applied to a model/cluster."""


@dataclass
class _ChunkState:
    """Per model-chunk runtime state on one rank."""

    stage: TransformerStage
    param_tensor: Optional[vt.VirtualTensor] = None
    grad_tensor: Optional[vt.VirtualTensor] = None
    #: Activation buffers keyed by microbatch id.
    activations: Dict[int, vt.VirtualTensor] = field(default_factory=dict)
    #: Temporarily gathered full parameters (ZeRO-3 / FSDP).
    gathered_params: Optional[vt.VirtualTensor] = None


class TrainingEngine:
    """Executes Megatron-style training iterations for every rank of a job."""

    def __init__(
        self,
        model: TransformerModelSpec,
        recipe: TrainingRecipe,
        world_size: int,
        global_batch_size: int,
        gpus_per_node: Optional[int] = None,
    ) -> None:
        problems = recipe.validate(
            world_size=world_size,
            global_batch_size=global_batch_size,
            num_layers=model.num_layers,
            num_heads=model.num_heads,
            gpus_per_node=gpus_per_node,
        )
        if problems:
            raise RecipeValidationError("; ".join(problems))

        self.model = model
        self.recipe = recipe
        self.world_size = world_size
        self.global_batch_size = global_batch_size
        self.topology = ParallelTopology(
            world_size=world_size,
            tensor_parallel=recipe.tensor_parallel,
            pipeline_parallel=recipe.pipeline_parallel,
        )
        self.groups = ProcessGroupRegistry()
        self.micro_batch_size = recipe.micro_batch_size(global_batch_size,
                                                        world_size)
        self.layer_split = split_layers(model.num_layers,
                                        recipe.pipeline_parallel,
                                        recipe.virtual_stages)
        self.optimizer_config = OptimizerConfig(
            distributed=recipe.distributed_optimizer,
            zero_stage=recipe.zero_stage,
            offload=recipe.offload,
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def unique_ranks(self) -> List[int]:
        """Ranks with distinct traces (selective launch, Section 7.4)."""
        return self.topology.unique_ranks()

    def run_worker(self, rank: int, emulator: DeviceEmulator,
                   iterations: int = 1) -> None:
        """Emulate ``iterations`` training steps for global ``rank``."""
        ctx = WorkerContext(rank, emulator, self.topology, self.groups,
                            dtype=self.recipe.dtype)
        chunks = self._build_chunks(ctx)
        optimizer = MixedPrecisionAdam(
            self.optimizer_config,
            local_params=sum(chunk.stage.local_params() for chunk in chunks),
            dp_degree=self.topology.data_parallel,
        )
        self._allocate_static_state(ctx, chunks, optimizer)
        for iteration in range(iterations):
            emulator.mark(f"iteration-{iteration}-start")
            self._run_iteration(ctx, chunks, optimizer)
            emulator.mark(f"iteration-{iteration}-end")

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _build_chunks(self, ctx: WorkerContext) -> List[_ChunkState]:
        parallel = ParallelConfig(
            tensor_parallel=self.recipe.tensor_parallel,
            sequence_parallel=self.recipe.sequence_parallelism,
            activation_recomputation=self.recipe.activation_recomputation,
        )
        pp_rank = ctx.pp_rank
        pp_size = self.recipe.pipeline_parallel
        num_chunks = self.recipe.virtual_stages
        chunk_sizes = self.layer_split[pp_rank]
        chunks: List[_ChunkState] = []
        for chunk_idx, layers in enumerate(chunk_sizes):
            is_first_chunk = pp_rank == 0 and chunk_idx == 0
            is_last_chunk = (pp_rank == pp_size - 1
                             and chunk_idx == num_chunks - 1)
            stage = TransformerStage(
                model=self.model,
                parallel=parallel,
                num_layers=layers,
                has_embedding=is_first_chunk,
                has_lm_head=is_last_chunk,
                dtype=self.recipe.dtype,
            )
            chunks.append(_ChunkState(stage=stage))
        return chunks

    def _allocate_static_state(self, ctx: WorkerContext,
                               chunks: List[_ChunkState],
                               optimizer: MixedPrecisionAdam) -> None:
        width = dtype_size(self.recipe.dtype)
        dp = max(self.topology.data_parallel, 1)
        for chunk in chunks:
            params = chunk.stage.local_params()
            param_bytes = params * width
            if self.optimizer_config.shards_parameters:
                param_bytes = max(param_bytes // dp, width)
            chunk.param_tensor = vt.empty(ctx.runtime, (param_bytes,),
                                          dtype="uint8", name="params")
            ctx.copy_h2d(param_bytes)  # weight initialisation / checkpoint load
        grad_bytes = optimizer.gradient_buffer_bytes()
        if grad_bytes:
            grad = vt.zeros(ctx.runtime, (grad_bytes,), dtype="uint8",
                            name="grads", stream=ctx.compute_stream)
            chunks[0].grad_tensor = grad
        state_bytes = optimizer.state_bytes()
        if state_bytes:
            vt.empty(ctx.runtime, (state_bytes,), dtype="uint8",
                     name="optimizer_state")

    # ------------------------------------------------------------------
    # one training iteration
    # ------------------------------------------------------------------
    def _run_iteration(self, ctx: WorkerContext, chunks: List[_ChunkState],
                       optimizer: MixedPrecisionAdam) -> None:
        schedule = build_schedule(
            pp_rank=ctx.pp_rank,
            pp_size=self.recipe.pipeline_parallel,
            num_microbatches=self.recipe.num_microbatches,
            virtual_stages=self.recipe.virtual_stages,
            kind=self.recipe.schedule,
        )
        for action in schedule:
            self._execute_action(ctx, chunks, action)
        self._finish_step(ctx, chunks, optimizer)

    def _execute_action(self, ctx: WorkerContext, chunks: List[_ChunkState],
                        action: PipelineAction) -> None:
        if action.kind == "forward":
            self._forward(ctx, chunks[action.chunk], action.microbatch)
        elif action.kind == "backward":
            self._backward(ctx, chunks[action.chunk], action.microbatch)
        elif action.kind in ("recv_fwd", "recv_bwd"):
            self._p2p(ctx, action, send=False)
        elif action.kind in ("send_fwd", "send_bwd"):
            self._p2p(ctx, action, send=True)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown pipeline action {action.kind}")

    # ------------------------------------------------------------------
    # compute actions
    # ------------------------------------------------------------------
    def _forward(self, ctx: WorkerContext, chunk: _ChunkState,
                 microbatch: int) -> None:
        self._maybe_gather_params(ctx, chunk)
        activation = vt.empty(
            ctx.runtime,
            (max(chunk.stage.activation_bytes(self.micro_batch_size), 1),),
            dtype="uint8", name="activations",
        )
        chunk.activations[microbatch] = activation
        chunk.stage.forward_microbatch(ctx, self.micro_batch_size)
        self._maybe_release_params(ctx, chunk)
        if self.recipe.offload:
            # Activation offloading: spill to host, keep only the handle.
            ctx.copy_d2h(activation.nbytes)
            vt.free(ctx.runtime, activation)

    def _backward(self, ctx: WorkerContext, chunk: _ChunkState,
                  microbatch: int) -> None:
        activation = chunk.activations.pop(microbatch, None)
        if self.recipe.offload:
            size = (max(chunk.stage.activation_bytes(self.micro_batch_size), 1),)
            activation = vt.empty(ctx.runtime, size, dtype="uint8",
                                  name="activations")
            ctx.copy_h2d(activation.nbytes)
        self._maybe_gather_params(ctx, chunk)
        chunk.stage.backward_microbatch(ctx, self.micro_batch_size)
        if self.optimizer_config.shards_parameters and ctx.dp_comm is not None:
            # FSDP / ZeRO-3: reduce-scatter this chunk's gradients eagerly.
            ctx.dp_comm.reduce_scatter(chunk.stage.local_params(),
                                       dtype="float32", stream=ctx.comm_stream)
        self._maybe_release_params(ctx, chunk)
        if activation is not None:
            vt.free(ctx.runtime, activation)

    def _maybe_gather_params(self, ctx: WorkerContext,
                             chunk: _ChunkState) -> None:
        if not self.optimizer_config.shards_parameters:
            return
        if ctx.dp_comm is None or chunk.gathered_params is not None:
            return
        params = chunk.stage.local_params()
        width = dtype_size(self.recipe.dtype)
        chunk.gathered_params = vt.empty(ctx.runtime, (params * width,),
                                         dtype="uint8", name="gathered_params")
        ctx.dp_comm.all_gather(params, dtype=self.recipe.dtype,
                               stream=ctx.compute_stream)

    def _maybe_release_params(self, ctx: WorkerContext,
                              chunk: _ChunkState) -> None:
        if chunk.gathered_params is not None:
            vt.free(ctx.runtime, chunk.gathered_params)
            chunk.gathered_params = None

    # ------------------------------------------------------------------
    # pipeline communication
    # ------------------------------------------------------------------
    def _p2p(self, ctx: WorkerContext, action: PipelineAction,
             send: bool) -> None:
        if ctx.pp_comm is None:
            return
        peer_pp = action.peer
        assert peer_pp is not None
        peer_rank = self.topology.rank_of(ctx.dp_rank, peer_pp, ctx.tp_rank)
        tokens = self.micro_batch_size * self.model.seq_length
        if self.recipe.sequence_parallelism:
            tokens //= self.recipe.tensor_parallel
        elements = tokens * self.model.hidden_size
        runtime = ctx.runtime
        if send:
            # The payload is produced on the compute stream; fence the send
            # stream on it, then transfer without blocking compute.
            ready = runtime.cuda_event_create()
            runtime.cuda_event_record(ready, stream=ctx.compute_stream)
            runtime.cuda_stream_wait_event(ctx.p2p_send_stream, ready)
            ctx.pp_comm.send(elements, peer=peer_rank, dtype=self.recipe.dtype,
                             stream=ctx.p2p_send_stream)
        else:
            # Receive on a dedicated stream so a not-yet-arrived activation
            # never blocks outgoing sends, then make compute wait for it.
            ctx.pp_comm.recv(elements, peer=peer_rank, dtype=self.recipe.dtype,
                             stream=ctx.p2p_recv_stream)
            arrived = runtime.cuda_event_create()
            runtime.cuda_event_record(arrived, stream=ctx.p2p_recv_stream)
            runtime.cuda_stream_wait_event(ctx.compute_stream, arrived)

    # ------------------------------------------------------------------
    # end of step: gradient sync + optimizer
    # ------------------------------------------------------------------
    def _finish_step(self, ctx: WorkerContext, chunks: List[_ChunkState],
                     optimizer: MixedPrecisionAdam) -> None:
        if not self.optimizer_config.shards_parameters:
            optimizer.reduce_gradients(ctx)
        if ctx.dp_comm is not None:
            # The optimizer must observe fully-reduced gradients: fence the
            # compute stream on the communication stream.
            event = ctx.record_comm_event()
            ctx.wait_on_compute(event)
        optimizer.step(ctx)
        ctx.sync_device()
