"""Optimizers: mixed-precision Adam with optional ZeRO-style sharding.

The optimizer contributes three things to the emulated workload:

* device-memory footprint (fp32 master weights + Adam moments, optionally
  sharded across the data-parallel group by the *distributed optimizer* /
  ZeRO-1), which drives OOM behaviour,
* the gradient synchronisation collectives at the end of each accumulation
  window (all-reduce for plain DDP, reduce-scatter + all-gather when
  sharded), and
* the fused ``multi_tensor_apply`` update kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.framework.worker import WorkerContext
from repro.hardware.kernel_cost import dtype_size


@dataclass(frozen=True)
class OptimizerConfig:
    """Configuration of the mixed-precision Adam optimizer."""

    #: Shard optimizer state (and gradient reduction) across DP ranks
    #: (Megatron ``--use-distributed-optimizer`` / ZeRO stage 1).
    distributed: bool = False
    #: DeepSpeed-style ZeRO stage (0 = DDP, 1 = optimizer, 2 = +grads,
    #: 3 = +params).  ``distributed=True`` is equivalent to stage 1.
    zero_stage: int = 0
    #: Offload optimizer state to host memory (DeepSpeed ZeRO-Offload).
    offload: bool = False
    #: Gradient bucket size in bytes for overlapped DDP all-reduce.
    bucket_bytes: int = 25 * 1024 * 1024
    #: Gradient clipping requires a global grad-norm reduction.
    clip_grad_norm: bool = True
    #: Precision of the gradient accumulation buffer.
    grad_dtype: str = "float32"

    @property
    def effective_zero_stage(self) -> int:
        return max(self.zero_stage, 1 if self.distributed else 0)

    @property
    def shards_optimizer_state(self) -> bool:
        return self.effective_zero_stage >= 1

    @property
    def shards_gradients(self) -> bool:
        return self.effective_zero_stage >= 2 or self.distributed

    @property
    def shards_parameters(self) -> bool:
        return self.effective_zero_stage >= 3


class MixedPrecisionAdam:
    """Adam with fp32 master weights, as used by Megatron-LM / DeepSpeed."""

    #: Bytes of optimizer state per parameter: fp32 master + exp_avg + exp_avg_sq.
    STATE_BYTES_PER_PARAM = 12

    def __init__(self, config: OptimizerConfig, local_params: int,
                 dp_degree: int) -> None:
        self.config = config
        self.local_params = local_params
        self.dp_degree = max(dp_degree, 1)

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def state_bytes(self) -> int:
        """Device bytes of optimizer state held by this rank."""
        total = self.local_params * self.STATE_BYTES_PER_PARAM
        if self.config.shards_optimizer_state:
            total //= self.dp_degree
        if self.config.offload:
            return 0
        return total

    def gradient_buffer_bytes(self) -> int:
        """Device bytes of the gradient accumulation buffer."""
        total = self.local_params * dtype_size(self.config.grad_dtype)
        if self.config.shards_gradients:
            total //= self.dp_degree
        return total

    def host_state_bytes(self) -> int:
        """Host bytes of optimizer state (only when offloading)."""
        if not self.config.offload:
            return 0
        total = self.local_params * self.STATE_BYTES_PER_PARAM
        if self.config.shards_optimizer_state:
            total //= self.dp_degree
        return total

    # ------------------------------------------------------------------
    # gradient synchronisation
    # ------------------------------------------------------------------
    def reduce_gradients(self, ctx: WorkerContext) -> None:
        """Synchronise gradients across the data-parallel group.

        Emitted on the communication stream so the simulator can overlap the
        reduction with trailing backward compute, exactly as DDP does.
        """
        if ctx.dp_comm is None:
            return
        grad_elements = self.local_params
        bucket_elements = max(
            self.config.bucket_bytes // dtype_size(self.config.grad_dtype), 1
        )
        remaining = grad_elements
        while remaining > 0:
            chunk = min(bucket_elements, remaining)
            if self.config.shards_gradients:
                ctx.dp_comm.reduce_scatter(chunk, dtype=self.config.grad_dtype,
                                           stream=ctx.comm_stream)
            else:
                ctx.dp_comm.all_reduce(chunk, dtype=self.config.grad_dtype,
                                       stream=ctx.comm_stream)
            remaining -= chunk

    # ------------------------------------------------------------------
    # update step
    # ------------------------------------------------------------------
    def step(self, ctx: WorkerContext) -> None:
        """Emit the parameter-update kernels (and param re-gather if sharded)."""
        local = self.local_params
        if self.config.shards_optimizer_state:
            local = max(local // self.dp_degree, 1)

        if self.config.clip_grad_norm:
            ctx.reduce(local)
            if ctx.dp_comm is not None:
                ctx.dp_comm.all_reduce(1, dtype="float32",
                                       stream=ctx.compute_stream)
            if ctx.tp_comm is not None:
                ctx.tp_comm.all_reduce(1, dtype="float32",
                                       stream=ctx.compute_stream)

        if self.config.offload:
            # ZeRO-Offload: grads to host, CPU Adam, updated params back.
            ctx.copy_d2h(local * dtype_size(self.config.grad_dtype))
            ctx.copy_h2d(local * 2)
        else:
            ctx.optimizer_apply(local)
            ctx.cast(local)  # fp32 master -> bf16 model params

        if self.config.shards_optimizer_state and ctx.dp_comm is not None:
            # Re-gather the updated parameter shards.
            ctx.dp_comm.all_gather(self.local_params // self.dp_degree,
                                   dtype="bfloat16", stream=ctx.compute_stream)
