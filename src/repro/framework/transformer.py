"""Megatron-style transformer model executing on the virtual runtime.

This module emits the device API call stream a tensor/sequence-parallel
transformer produces: cuBLAS GEMMs for the attention and MLP blocks,
layernorm / softmax / dropout / gelu kernels, NCCL collectives for the
tensor-parallel reductions, and the host-side bookkeeping around them.

The shapes follow Megatron-LM's partitioning:

* column-parallel linears (QKV, MLP fc1) shard the output dimension over the
  tensor-parallel (TP) group and require an all-reduce of the *input*
  gradient in the backward pass,
* row-parallel linears (attention projection, MLP fc2) shard the input
  dimension and require an all-reduce of the *output* activation in the
  forward pass,
* with sequence parallelism the two all-reduces become a reduce-scatter and
  an all-gather pair, and layernorm/dropout regions operate on a
  ``1/tp`` slice of the tokens.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.framework.worker import WorkerContext
from repro.hardware.kernel_cost import dtype_size


@dataclass(frozen=True)
class TransformerModelSpec:
    """Architecture of a GPT-style decoder-only transformer."""

    name: str
    hidden_size: int
    num_layers: int
    num_heads: int
    seq_length: int
    vocab_size: int = 51200
    ffn_hidden_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")

    @property
    def ffn_size(self) -> int:
        return self.ffn_hidden_size or 4 * self.hidden_size

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    # ------------------------------------------------------------------
    # parameter counting
    # ------------------------------------------------------------------
    @property
    def params_per_layer(self) -> int:
        h, f = self.hidden_size, self.ffn_size
        attention = 4 * h * h + 4 * h          # qkv + proj (+ biases)
        mlp = 2 * h * f + h + f                # fc1 + fc2 (+ biases)
        norms = 4 * h                           # two layernorms
        return attention + mlp + norms

    @property
    def embedding_params(self) -> int:
        return self.vocab_size * self.hidden_size + self.seq_length * self.hidden_size

    @property
    def total_params(self) -> int:
        return self.num_layers * self.params_per_layer + self.embedding_params

    def flops_per_token(self) -> float:
        """Model FLOPs per token for one fwd+bwd pass (used for MFU).

        Uses the standard 6 * params + attention-matmul correction (the
        Megatron MFU accounting), counting backward as 2x forward.
        """
        h, s = self.hidden_size, self.seq_length
        dense = 6.0 * (self.num_layers * self.params_per_layer
                       + self.vocab_size * h)
        attention = self.num_layers * 12.0 * h * s
        return dense + attention

    def flops_per_sample(self) -> float:
        return self.flops_per_token() * self.seq_length


@dataclass(frozen=True)
class ParallelConfig:
    """Parallelisation knobs relevant to a single transformer stage."""

    tensor_parallel: int = 1
    sequence_parallel: bool = False
    activation_recomputation: bool = False

    def __post_init__(self) -> None:
        if self.sequence_parallel and self.tensor_parallel == 1:
            # Megatron silently ignores SP without TP; normalise here.
            object.__setattr__(self, "sequence_parallel", False)


class TransformerStage:
    """The slice of transformer layers owned by one pipeline chunk.

    A stage knows how to emit the forward and backward kernel streams of its
    layers for one microbatch, along with the embedding / LM-head work when
    it is the first / last stage of the pipeline.
    """

    def __init__(
        self,
        model: TransformerModelSpec,
        parallel: ParallelConfig,
        num_layers: int,
        has_embedding: bool = False,
        has_lm_head: bool = False,
        dtype: str = "bfloat16",
    ) -> None:
        self.model = model
        self.parallel = parallel
        self.num_layers = num_layers
        self.has_embedding = has_embedding
        self.has_lm_head = has_lm_head
        self.dtype = dtype

    # ------------------------------------------------------------------
    # parameter / memory accounting
    # ------------------------------------------------------------------
    def local_params(self) -> int:
        """Parameters held by this stage on one TP rank."""
        tp = self.parallel.tensor_parallel
        h, f = self.model.hidden_size, self.model.ffn_size
        per_layer = (4 * h * h + 2 * h * f) // tp + 4 * h + 4 * h + f // tp + h
        total = self.num_layers * per_layer
        if self.has_embedding:
            total += self.model.vocab_size * h // tp + self.model.seq_length * h
        if self.has_lm_head and not self.has_embedding:
            # Untied LM head (tied embeddings share the first-stage weight).
            total += self.model.vocab_size * h // tp
        return total

    def activation_bytes(self, micro_batch: int) -> int:
        """Activation memory retained per in-flight microbatch, in bytes.

        Matches the Megatron activation-memory analysis: roughly
        ``s*b*h*(34 + 5*a*s/h)`` bytes per layer at 2-byte precision,
        divided by TP for the tensor-parallel regions (and additionally for
        the layernorm/dropout regions when sequence parallelism is on).
        Full activation recomputation retains only the layer inputs.
        """
        s = self.model.seq_length
        b = micro_batch
        h = self.model.hidden_size
        a = self.model.num_heads
        tp = self.parallel.tensor_parallel
        width = dtype_size(self.dtype)

        if self.parallel.activation_recomputation:
            per_layer = s * b * h * width
            if self.parallel.sequence_parallel:
                per_layer //= tp
            total = self.num_layers * per_layer
        else:
            sp = tp if self.parallel.sequence_parallel else 1
            attn = s * b * h * (8 / tp + 5 / sp + 1 / sp) * width
            score = (5 * a * s * s * b / tp) * width
            mlp = s * b * (8 * self.model.ffn_size / (4 * h) * h / tp
                           + 3 * h / sp) * width
            per_layer = attn + score + mlp
            total = int(self.num_layers * per_layer)
        if self.has_lm_head:
            total += int(s * b * self.model.vocab_size / tp * 4)
        if self.has_embedding:
            total += int(s * b * h * width)
        return int(total)

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    def forward_microbatch(self, ctx: WorkerContext, micro_batch: int) -> None:
        """Emit the forward pass of this stage for one microbatch."""
        if self.has_embedding:
            self._embedding_forward(ctx, micro_batch)
        for _ in range(self.num_layers):
            self._layer_forward(ctx, micro_batch)
        if self.has_lm_head:
            self._lm_head_forward(ctx, micro_batch)

    def backward_microbatch(self, ctx: WorkerContext, micro_batch: int) -> None:
        """Emit the backward pass of this stage for one microbatch."""
        if self.has_lm_head:
            self._lm_head_backward(ctx, micro_batch)
        if self.parallel.activation_recomputation:
            # Full recomputation: re-run the layer forwards before backward.
            for _ in range(self.num_layers):
                self._layer_forward(ctx, micro_batch)
        for _ in range(self.num_layers):
            self._layer_backward(ctx, micro_batch)
        if self.has_embedding:
            self._embedding_backward(ctx, micro_batch)

    # ------------------------------------------------------------------
    # transformer layer
    # ------------------------------------------------------------------
    def _tokens(self, micro_batch: int) -> int:
        return micro_batch * self.model.seq_length

    def _layer_forward(self, ctx: WorkerContext, micro_batch: int) -> None:
        m = self.model
        tp = self.parallel.tensor_parallel
        sp = self.parallel.sequence_parallel
        tokens = self._tokens(micro_batch)
        local_tokens = tokens // tp if sp else tokens
        h, f = m.hidden_size, m.ffn_size
        heads_local = max(m.num_heads // tp, 1)

        # --- attention block -------------------------------------------------
        ctx.layer_norm(local_tokens * h)
        if sp and ctx.tp_comm is not None:
            ctx.tp_comm.all_gather(local_tokens * h, dtype=self.dtype,
                                   stream=ctx.compute_stream)
        ctx.gemm(m=tokens, n=3 * h // tp, k=h)                       # QKV
        ctx.gemm(m=m.seq_length, n=m.seq_length, k=m.head_dim,
                 batch=micro_batch * heads_local)                    # QK^T
        ctx.softmax(micro_batch * heads_local * m.seq_length * m.seq_length)
        ctx.dropout(micro_batch * heads_local * m.seq_length * m.seq_length)
        ctx.gemm(m=m.seq_length, n=m.head_dim, k=m.seq_length,
                 batch=micro_batch * heads_local)                    # AV
        ctx.gemm(m=tokens, n=h, k=h // tp)                           # proj
        self._row_parallel_forward_comm(ctx, tokens * h)
        ctx.dropout(local_tokens * h)
        ctx.add(local_tokens * h)                                    # residual

        # --- MLP block -------------------------------------------------------
        ctx.layer_norm(local_tokens * h)
        if sp and ctx.tp_comm is not None:
            ctx.tp_comm.all_gather(local_tokens * h, dtype=self.dtype,
                                   stream=ctx.compute_stream)
        ctx.gemm(m=tokens, n=f // tp, k=h)                           # fc1
        ctx.gelu(tokens * f // tp)
        ctx.gemm(m=tokens, n=h, k=f // tp)                           # fc2
        self._row_parallel_forward_comm(ctx, tokens * h)
        ctx.dropout(local_tokens * h)
        ctx.add(local_tokens * h)                                    # residual

    def _layer_backward(self, ctx: WorkerContext, micro_batch: int) -> None:
        m = self.model
        tp = self.parallel.tensor_parallel
        sp = self.parallel.sequence_parallel
        tokens = self._tokens(micro_batch)
        local_tokens = tokens // tp if sp else tokens
        h, f = m.hidden_size, m.ffn_size
        heads_local = max(m.num_heads // tp, 1)

        # --- MLP block (reverse order) ---------------------------------------
        ctx.add(local_tokens * h)
        ctx.dropout(local_tokens * h, backward=True)
        self._row_parallel_backward_comm(ctx, tokens * h)
        ctx.gemm(m=tokens, n=f // tp, k=h)                           # fc2 dgrad
        ctx.gemm(m=h, n=f // tp, k=tokens)                           # fc2 wgrad
        ctx.gelu(tokens * f // tp, backward=True)
        ctx.gemm(m=tokens, n=h, k=f // tp)                           # fc1 dgrad
        ctx.gemm(m=f // tp, n=h, k=tokens)                           # fc1 wgrad
        self._column_parallel_backward_comm(ctx, tokens * h)
        ctx.layer_norm(local_tokens * h, backward=True)
        ctx.layer_norm_grad_weights(local_tokens * h)

        # --- attention block (reverse order) ---------------------------------
        ctx.add(local_tokens * h)
        ctx.dropout(local_tokens * h, backward=True)
        self._row_parallel_backward_comm(ctx, tokens * h)
        ctx.gemm(m=tokens, n=h // tp, k=h)                           # proj dgrad
        ctx.gemm(m=h, n=h // tp, k=tokens)                           # proj wgrad
        ctx.gemm(m=m.seq_length, n=m.seq_length, k=m.head_dim,
                 batch=micro_batch * heads_local)                    # dAV
        ctx.dropout(micro_batch * heads_local * m.seq_length * m.seq_length,
                    backward=True)
        ctx.softmax(micro_batch * heads_local * m.seq_length * m.seq_length,
                    backward=True)
        ctx.gemm(m=m.seq_length, n=m.head_dim, k=m.seq_length,
                 batch=micro_batch * heads_local)                    # dQK
        ctx.gemm(m=tokens, n=h, k=3 * h // tp)                       # qkv dgrad
        ctx.gemm(m=3 * h // tp, n=h, k=tokens)                       # qkv wgrad
        self._column_parallel_backward_comm(ctx, tokens * h)
        ctx.layer_norm(local_tokens * h, backward=True)
        ctx.layer_norm_grad_weights(local_tokens * h)

    # ------------------------------------------------------------------
    # tensor-parallel communication helpers
    # ------------------------------------------------------------------
    def _row_parallel_forward_comm(self, ctx: WorkerContext,
                                   elements: int) -> None:
        if ctx.tp_comm is None:
            return
        if self.parallel.sequence_parallel:
            ctx.tp_comm.reduce_scatter(elements, dtype=self.dtype,
                                       stream=ctx.compute_stream)
        else:
            ctx.tp_comm.all_reduce(elements, dtype=self.dtype,
                                   stream=ctx.compute_stream)

    def _row_parallel_backward_comm(self, ctx: WorkerContext,
                                    elements: int) -> None:
        if ctx.tp_comm is None:
            return
        if self.parallel.sequence_parallel:
            ctx.tp_comm.all_gather(elements, dtype=self.dtype,
                                   stream=ctx.compute_stream)
        # Row-parallel layers need no backward reduction of input grads.

    def _column_parallel_backward_comm(self, ctx: WorkerContext,
                                       elements: int) -> None:
        if ctx.tp_comm is None:
            return
        if self.parallel.sequence_parallel:
            ctx.tp_comm.reduce_scatter(elements, dtype=self.dtype,
                                       stream=ctx.compute_stream)
        else:
            ctx.tp_comm.all_reduce(elements, dtype=self.dtype,
                                   stream=ctx.compute_stream)

    # ------------------------------------------------------------------
    # embedding and LM head
    # ------------------------------------------------------------------
    def _embedding_forward(self, ctx: WorkerContext, micro_batch: int) -> None:
        tokens = self._tokens(micro_batch)
        ctx.copy_h2d(tokens * 8)                       # token ids from the host
        ctx.embedding_lookup(tokens, self.model.hidden_size)
        ctx.add(tokens * self.model.hidden_size)       # position embeddings
        ctx.dropout(tokens * self.model.hidden_size)
        if ctx.tp_comm is not None:
            # Vocab-parallel embedding: all-reduce the partial lookups.
            ctx.tp_comm.all_reduce(tokens * self.model.hidden_size,
                                   dtype=self.dtype,
                                   stream=ctx.compute_stream)

    def _embedding_backward(self, ctx: WorkerContext, micro_batch: int) -> None:
        tokens = self._tokens(micro_batch)
        ctx.dropout(tokens * self.model.hidden_size, backward=True)
        ctx.embedding_lookup(tokens, self.model.hidden_size, backward=True)

    def _lm_head_forward(self, ctx: WorkerContext, micro_batch: int) -> None:
        m = self.model
        tp = self.parallel.tensor_parallel
        tokens = self._tokens(micro_batch)
        ctx.layer_norm(tokens * m.hidden_size)
        ctx.gemm(m=tokens, n=m.vocab_size // tp, k=m.hidden_size)
        ctx.cross_entropy(tokens, m.vocab_size // tp)
        if ctx.tp_comm is not None:
            # Vocab-parallel cross entropy reduces the loss denominator.
            ctx.tp_comm.all_reduce(tokens, dtype="float32",
                                   stream=ctx.compute_stream)

    def _lm_head_backward(self, ctx: WorkerContext, micro_batch: int) -> None:
        m = self.model
        tp = self.parallel.tensor_parallel
        tokens = self._tokens(micro_batch)
        ctx.cross_entropy(tokens, m.vocab_size // tp, backward=True)
        ctx.gemm(m=tokens, n=m.hidden_size, k=m.vocab_size // tp)   # dgrad
        ctx.gemm(m=m.vocab_size // tp, n=m.hidden_size, k=tokens)   # wgrad
        ctx.layer_norm(tokens * m.hidden_size, backward=True)


def split_layers(
    num_layers: int, pipeline_parallel: int, virtual_stages: int = 1
) -> List[List[int]]:
    """Partition ``num_layers`` across ``pipeline_parallel * virtual_stages``
    chunks, returning per-pp-rank lists of chunk sizes.

    Chunk ``c`` of rank ``p`` owns contiguous layers following Megatron's
    interleaved assignment (rank-major within a chunk group).
    """
    if pipeline_parallel <= 0 or virtual_stages <= 0:
        raise ValueError("pipeline_parallel and virtual_stages must be positive")
    total_chunks = pipeline_parallel * virtual_stages
    base = num_layers // total_chunks
    remainder = num_layers % total_chunks
    chunk_sizes = [base + (1 if i < remainder else 0) for i in range(total_chunks)]
    per_rank: List[List[int]] = []
    for rank in range(pipeline_parallel):
        sizes = [chunk_sizes[chunk * pipeline_parallel + rank]
                 for chunk in range(virtual_stages)]
        per_rank.append(sizes)
    return per_rank
