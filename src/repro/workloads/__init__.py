"""Workload definitions: models, training recipes and runnable jobs.

These are the "user training workloads" of Figure 5 -- the code Maya
observes through emulation but never needs to understand.  The presets match
the models used in the paper's evaluation (the GPT-3 family, Llama2-7B,
ResNet152 and the generality-study models of Table 4).
"""

from repro.framework.recipe import TrainingRecipe
from repro.workloads.models import (
    CONVNET_PRESETS,
    TRANSFORMER_PRESETS,
    get_convnet,
    get_transformer,
)
from repro.workloads.job import TrainingJob, TransformerTrainingJob, VisionTrainingJob

__all__ = [
    "TrainingRecipe",
    "CONVNET_PRESETS",
    "TRANSFORMER_PRESETS",
    "get_convnet",
    "get_transformer",
    "TrainingJob",
    "TransformerTrainingJob",
    "VisionTrainingJob",
]
