"""Model presets.

Transformer sizes follow the GPT-3 family used throughout the paper
(Section 7.1: GPT-3 2.7B / 18.4B / 145.6B with global batch sizes 256 / 512 /
12k), plus Llama2-7B (Table 3), and the Table 4 generality-study models.
Vision models are ResNet-style specs; ResNet152 is the Figure 10 workload.
"""

from __future__ import annotations

from typing import Dict

from repro.framework.transformer import TransformerModelSpec
from repro.framework.vision import ConvBlockSpec, ConvNetSpec


def _gpt(name: str, layers: int, hidden: int, heads: int,
         seq: int = 2048, vocab: int = 51200) -> TransformerModelSpec:
    return TransformerModelSpec(
        name=name, hidden_size=hidden, num_layers=layers, num_heads=heads,
        seq_length=seq, vocab_size=vocab,
    )


TRANSFORMER_PRESETS: Dict[str, TransformerModelSpec] = {
    # GPT-3 family (Megatron-LM sizing).
    "gpt3-345m": _gpt("gpt3-345m", layers=24, hidden=1024, heads=16),
    "gpt3-1.3b": _gpt("gpt3-1.3b", layers=24, hidden=2048, heads=16),
    "gpt3-2.7b": _gpt("gpt3-2.7b", layers=32, hidden=2560, heads=32),
    "gpt3-6.7b": _gpt("gpt3-6.7b", layers=32, hidden=4096, heads=32),
    "gpt3-18.4b": _gpt("gpt3-18.4b", layers=40, hidden=6144, heads=48),
    "gpt3-145.6b": _gpt("gpt3-145.6b", layers=80, hidden=12288, heads=96),
    # Other language / multimodal models from Table 4.
    # Llama uses a gated (SwiGLU) MLP with three weight matrices; the
    # framework models a standard two-matrix MLP, so the FFN width is scaled
    # by 1.5x to preserve the parameter and FLOP count.
    "llama2-7b": TransformerModelSpec(
        name="llama2-7b", hidden_size=4096, num_layers=32, num_heads=32,
        seq_length=4096, vocab_size=32000, ffn_hidden_size=16512,
    ),
    "bert-large": TransformerModelSpec(
        name="bert-large", hidden_size=1024, num_layers=24, num_heads=16,
        seq_length=512, vocab_size=30522,
    ),
    "t5-large": TransformerModelSpec(
        name="t5-large", hidden_size=1024, num_layers=48, num_heads=16,
        seq_length=512, vocab_size=32128,
    ),
    "vit-large": TransformerModelSpec(
        name="vit-large", hidden_size=1024, num_layers=24, num_heads=16,
        seq_length=256, vocab_size=1000,
    ),
    # Small models for unit tests and quickstart examples.
    "gpt-tiny": TransformerModelSpec(
        name="gpt-tiny", hidden_size=64, num_layers=2, num_heads=4,
        seq_length=32, vocab_size=512,
    ),
    "gpt-small": TransformerModelSpec(
        name="gpt-small", hidden_size=256, num_layers=4, num_heads=8,
        seq_length=128, vocab_size=2048,
    ),
}


def _resnet(name: str, blocks, bottleneck: bool = True) -> ConvNetSpec:
    channels = (256, 512, 1024, 2048) if bottleneck else (64, 128, 256, 512)
    spatial = (56, 28, 14, 7)
    in_channels = (64,) + channels[:-1]
    stages = tuple(
        ConvBlockSpec(blocks=b, in_channels=c_in, out_channels=c_out,
                      spatial=s, bottleneck=bottleneck)
        for b, c_in, c_out, s in zip(blocks, in_channels, channels, spatial)
    )
    return ConvNetSpec(name=name, stages=stages)


CONVNET_PRESETS: Dict[str, ConvNetSpec] = {
    "resnet50": _resnet("resnet50", (3, 4, 6, 3)),
    "resnet101": _resnet("resnet101", (3, 4, 23, 3)),
    "resnet152": _resnet("resnet152", (3, 8, 36, 3)),
    "resnet18": _resnet("resnet18", (2, 2, 2, 2), bottleneck=False),
    # Approximate stand-ins for the other Table 4 vision families: what
    # matters for emulation is the kernel mix and tensor shapes, not exact
    # architectural details.
    "vgg16": ConvNetSpec(
        name="vgg16",
        stages=(
            ConvBlockSpec(blocks=2, in_channels=64, out_channels=128,
                          spatial=112, bottleneck=False),
            ConvBlockSpec(blocks=3, in_channels=128, out_channels=256,
                          spatial=56, bottleneck=False),
            ConvBlockSpec(blocks=3, in_channels=256, out_channels=512,
                          spatial=28, bottleneck=False),
            ConvBlockSpec(blocks=3, in_channels=512, out_channels=512,
                          spatial=14, bottleneck=False),
        ),
    ),
    "densenet201": _resnet("densenet201", (6, 12, 48, 32)),
    "mobilenet-v2": ConvNetSpec(
        name="mobilenet-v2",
        stages=(
            ConvBlockSpec(blocks=2, in_channels=32, out_channels=64,
                          spatial=112, bottleneck=True),
            ConvBlockSpec(blocks=3, in_channels=64, out_channels=128,
                          spatial=56, bottleneck=True),
            ConvBlockSpec(blocks=4, in_channels=128, out_channels=256,
                          spatial=28, bottleneck=True),
            ConvBlockSpec(blocks=3, in_channels=256, out_channels=512,
                          spatial=14, bottleneck=True),
        ),
    ),
    "convnet-tiny": ConvNetSpec(
        name="convnet-tiny",
        image_size=32,
        num_classes=10,
        stages=(
            ConvBlockSpec(blocks=1, in_channels=64, out_channels=64,
                          spatial=16, bottleneck=False),
            ConvBlockSpec(blocks=1, in_channels=64, out_channels=128,
                          spatial=8, bottleneck=False),
        ),
    ),
}


def get_transformer(name: str) -> TransformerModelSpec:
    """Look up a transformer preset by name (case-insensitive)."""
    key = name.lower()
    if key not in TRANSFORMER_PRESETS:
        raise KeyError(
            f"unknown transformer '{name}'; known: {sorted(TRANSFORMER_PRESETS)}"
        )
    return TRANSFORMER_PRESETS[key]


def get_convnet(name: str) -> ConvNetSpec:
    """Look up a vision preset by name (case-insensitive)."""
    key = name.lower()
    if key not in CONVNET_PRESETS:
        raise KeyError(
            f"unknown convnet '{name}'; known: {sorted(CONVNET_PRESETS)}"
        )
    return CONVNET_PRESETS[key]
