"""Runnable training jobs.

A :class:`TrainingJob` binds a model + recipe + global batch size to a
cluster-sized world and exposes the per-rank ``worker_fn`` the emulation
session runs, along with the bookkeeping Maya and the baselines need
(unique ranks for selective launch, model FLOPs for MFU, validity checks).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List, Optional, Tuple

from repro.core.emulator import DeviceEmulator
from repro.framework.engine import RecipeValidationError, TrainingEngine
from repro.framework.process_group import ProcessGroupRegistry
from repro.framework.recipe import TrainingRecipe
from repro.framework.topology import ParallelTopology
from repro.framework.transformer import TransformerModelSpec
from repro.framework.vision import ConvNetSpec, VisionModel
from repro.framework.worker import WorkerContext
from repro.framework import tensor as vt
from repro.hardware.cluster import ClusterSpec


class TrainingJob:
    """Common interface of emulatable training jobs."""

    name: str
    world_size: int
    global_batch_size: int

    def worker_fn(self, rank: int, emulator: DeviceEmulator) -> None:
        raise NotImplementedError

    def unique_ranks(self) -> List[int]:
        raise NotImplementedError

    def flops_per_iteration(self) -> float:
        raise NotImplementedError

    def validate(self) -> List[str]:
        return []

    def structural_signature(self) -> Tuple:
        """Key over everything that determines the emulated trace.

        Jobs with equal structural signatures emit identical API streams, so
        their :class:`~repro.core.pipeline.EmulationArtifacts` are
        interchangeable (the prediction service's artifact cache keys on
        this).
        """
        raise NotImplementedError

    def signature(self) -> Tuple:
        """Full prediction identity: structural signature plus any knobs
        that only influence runtime estimation."""
        return self.structural_signature()


class TransformerTrainingJob(TrainingJob):
    """A Megatron-style GPT training job under one recipe."""

    def __init__(
        self,
        model: TransformerModelSpec,
        recipe: TrainingRecipe,
        cluster: ClusterSpec,
        global_batch_size: int,
        iterations: int = 1,
        world_size: Optional[int] = None,
    ) -> None:
        self.model = model
        self.recipe = recipe
        self.cluster = cluster
        self.world_size = world_size if world_size is not None else cluster.world_size
        self.global_batch_size = global_batch_size
        self.iterations = iterations
        self.name = f"{model.name}-{recipe.short_name()}-{self.world_size}gpu"
        self._engine: Optional[TrainingEngine] = None

    # ------------------------------------------------------------------
    # validity / setup
    # ------------------------------------------------------------------
    def validate(self) -> List[str]:
        return self.recipe.validate(
            world_size=self.world_size,
            global_batch_size=self.global_batch_size,
            num_layers=self.model.num_layers,
            num_heads=self.model.num_heads,
            gpus_per_node=self.cluster.gpus_per_node,
        )

    @property
    def engine(self) -> TrainingEngine:
        """Lazily-built training engine (raises on invalid recipes)."""
        if self._engine is None:
            self._engine = TrainingEngine(
                model=self.model,
                recipe=self.recipe,
                world_size=self.world_size,
                global_batch_size=self.global_batch_size,
                gpus_per_node=self.cluster.gpus_per_node,
            )
        return self._engine

    # ------------------------------------------------------------------
    # TrainingJob interface
    # ------------------------------------------------------------------
    def worker_fn(self, rank: int, emulator: DeviceEmulator) -> None:
        self.engine.run_worker(rank, emulator, iterations=self.iterations)

    def unique_ranks(self) -> List[int]:
        return self.engine.unique_ranks()

    def flops_per_iteration(self) -> float:
        """Model FLOPs of one optimizer step over the global batch."""
        return (self.model.flops_per_sample() * self.global_batch_size
                * self.iterations)

    def topology(self) -> ParallelTopology:
        return self.engine.topology

    def structural_signature(self) -> Tuple:
        return (
            "transformer",
            tuple(sorted(asdict(self.model).items())),
            self.world_size,
            self.global_batch_size,
            self.iterations,
            self.recipe.structural_signature(),
        )

    def signature(self) -> Tuple:
        return self.structural_signature() + (("compiled", self.recipe.compiled),)


class VisionTrainingJob(TrainingJob):
    """A data-parallel (DDP) vision training job (Figure 10 / Table 4)."""

    def __init__(
        self,
        spec: ConvNetSpec,
        cluster: ClusterSpec,
        global_batch_size: int,
        compiled: bool = False,
        dtype: str = "float16",
        iterations: int = 1,
        world_size: Optional[int] = None,
    ) -> None:
        self.spec = spec
        self.cluster = cluster
        self.world_size = world_size if world_size is not None else cluster.world_size
        self.global_batch_size = global_batch_size
        self.compiled = compiled
        self.dtype = dtype
        self.iterations = iterations
        compile_tag = "-compiled" if compiled else ""
        self.name = f"{spec.name}{compile_tag}-bs{global_batch_size}-{self.world_size}gpu"
        self._groups = ProcessGroupRegistry()
        self._topology = ParallelTopology(
            world_size=self.world_size, tensor_parallel=1, pipeline_parallel=1
        )

    def validate(self) -> List[str]:
        problems = []
        if self.global_batch_size % self.world_size != 0:
            problems.append(
                f"global batch {self.global_batch_size} not divisible by "
                f"world size {self.world_size}"
            )
        return problems

    @property
    def local_batch_size(self) -> int:
        return self.global_batch_size // self.world_size

    def worker_fn(self, rank: int, emulator: DeviceEmulator) -> None:
        ctx = WorkerContext(rank, emulator, self._topology, self._groups,
                            dtype=self.dtype)
        model = VisionModel(self.spec, dtype=self.dtype, compiled=self.compiled)
        # Static state: parameters, gradients, optimizer moments.
        vt.empty(ctx.runtime, (model.parameter_bytes(),), dtype="uint8",
                 name="params")
        vt.empty(ctx.runtime, (self.spec.total_params * 4,), dtype="uint8",
                 name="grads")
        vt.empty(ctx.runtime, (self.spec.total_params * 8,), dtype="uint8",
                 name="optimizer_state")
        for iteration in range(self.iterations):
            emulator.mark(f"iteration-{iteration}-start")
            activations = vt.empty(
                ctx.runtime,
                (max(model.activation_bytes(self.local_batch_size), 1),),
                dtype="uint8", name="activations",
            )
            model.forward(ctx, self.local_batch_size)
            model.backward(ctx, self.local_batch_size)
            model.reduce_gradients(ctx)
            if ctx.dp_comm is not None:
                event = ctx.record_comm_event()
                ctx.wait_on_compute(event)
            model.optimizer_step(ctx)
            vt.free(ctx.runtime, activations)
            ctx.sync_device()
            emulator.mark(f"iteration-{iteration}-end")

    def unique_ranks(self) -> List[int]:
        # Pure data parallelism: every worker does identical work.
        return [0]

    def topology(self) -> ParallelTopology:
        return self._topology

    def flops_per_iteration(self) -> float:
        return (self.spec.flops_per_sample() * self.global_batch_size
                * self.iterations)

    def structural_signature(self) -> Tuple:
        # ``compiled`` changes the vision model's emitted kernels (fused
        # elementwise regions), so unlike the transformer job it is
        # structural here.  The spec is a nested dataclass; its repr is a
        # deterministic rendering of every field.
        return (
            "vision",
            repr(self.spec),
            self.world_size,
            self.global_batch_size,
            self.compiled,
            self.dtype,
            self.iterations,
        )
