"""Length-prefixed socket framing for the multi-host evaluation backend.

The ``socket`` backend speaks exactly the lifecycle + cache-sync message
vocabulary the ``persistent`` backend already sends over fork pipes
(``warm`` / ``sync`` / ``job`` / ``result`` / ``error`` / ``close`` tuples
-- see :mod:`repro.service.backends`); this module only supplies the
transport.  :class:`WireConnection` duck-types
:class:`multiprocessing.connection.Connection` (``send`` / ``recv`` /
``poll`` / ``fileno`` / ``close``), so the parent-side scatter/gather and
sync machinery is shared verbatim between pipes and sockets.

Frame layout (all integers big-endian)::

    offset 0   4 bytes   magic  b"MAYA"
    offset 4   1 byte    payload format: 1 = pickle, 2 = JSON (UTF-8),
                         3 = pickle with columnar trace reductions
    offset 5   4 bytes   unsigned payload length
    offset 9   payload

The first frame in each direction is the JSON handshake
``{"magic": "maya-wire", "protocol": PROTOCOL, "features": [...]}``; JSON
is used there so a version mismatch is diagnosable even across
pickle-protocol changes.  Every later frame is a pickled lifecycle tuple.
``PROTOCOL`` must be bumped whenever the message vocabulary or the
handshake itself changes; both sides refuse mismatched peers with
:class:`WireProtocolError`.

Optional capabilities ride the handshake's ``features`` list instead of
the protocol number, so old and new peers interoperate: a hello without
the list (or without a given feature) simply negotiates the feature off.
The only feature today is ``"columnar-traces"``: when both sides
advertise it, frames carrying :class:`~repro.core.trace.WorkerTrace`
objects are written as format 3 -- a standard pickle in which each trace
is reduced to its structure-of-arrays payload
(:func:`repro.core.columnar.encode_worker_trace`) instead of a
per-``TraceEvent`` object graph.  Format 3 decodes with a plain
``pickle.loads``; the payload itself names the decoder, so the format
byte exists for observability (byte accounting, tests), not dispatch.

.. warning::
   Post-handshake frames are **pickle**: a worker host will execute
   whatever a connecting parent sends it (and vice versa).  Run worker
   hosts only on networks where every peer is trusted -- the protocol has
   no authentication and is not safe to expose publicly.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import selectors
import socket
import struct
from typing import Optional, Tuple

#: Wire protocol version.  Bump on any change to the frame layout, the
#: handshake, or the lifecycle message vocabulary.  Optional capabilities
#: (columnar trace shipping) negotiate via handshake ``features`` and do
#: NOT bump the protocol: they degrade cleanly against older peers.
PROTOCOL = 1

#: Handshake feature flag: this side can decode format-3 frames (pickles
#: whose ``WorkerTrace`` objects are reduced to columnar payloads).
FEATURE_COLUMNAR = "columnar-traces"

#: Handshake feature flag: this side answers ``("ping", token)`` lifecycle
#: messages with ``("pong", token)``.  The parent uses it to detect
#: silently vanished worker hosts (no FIN, no RST -- just gone) in
#: bounded time; a peer that does not advertise it is simply never
#: pinged, so old and new releases interoperate.
FEATURE_PING = "liveness-ping"

#: First bytes of every frame; a peer that is not speaking this protocol
#: is rejected on the first frame instead of producing a pickle error.
MAGIC = b"MAYA"

#: ``magic`` field of the JSON handshake object.
HANDSHAKE_MAGIC = "maya-wire"

_HEADER = struct.Struct("!4sBI")
#: Bytes in a frame header; async readers (``repro.service.server``) read
#: exactly this much before :func:`parse_header`.
HEADER_SIZE = _HEADER.size
_FORMAT_PICKLE = 1
_FORMAT_JSON = 2
#: A pickle whose ``WorkerTrace`` objects were reduced to columnar
#: payloads; ``pickle.loads`` decodes it (the payload names the decoder).
_FORMAT_PICKLE_COLUMNAR = 3
#: Sanity cap on a single frame (1 GiB); anything larger is treated as a
#: corrupted length field rather than an allocation request.
_MAX_FRAME = 1 << 30


class WireError(RuntimeError):
    """The peer sent bytes that are not valid wire-protocol frames."""


class WireProtocolError(WireError):
    """The peer speaks a different (or no) wire-protocol version."""


def local_features() -> Tuple[str, ...]:
    """Capabilities this process advertises in the wire handshake.

    Columnar trace shipping needs numpy on *this* side (decoding rebuilds
    the arrays) and can be disabled outright with ``REPRO_WIRE_COLUMNAR=0``
    -- the escape hatch if a mixed fleet misbehaves.  Liveness pings have
    no dependencies and are always advertised.
    """
    features = [FEATURE_PING]
    if os.environ.get("REPRO_WIRE_COLUMNAR", "1") != "0":
        from repro.core.columnar import HAVE_NUMPY
        if HAVE_NUMPY:
            features.append(FEATURE_COLUMNAR)
    return tuple(features)


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``host:port`` string (the CLI / env-var address format)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(
            f"invalid worker-host address {address!r}; expected host:port")
    return host, int(port)


class WireConnection:
    """One framed, bidirectional message stream over a connected socket.

    Duck-types :class:`multiprocessing.connection.Connection`: ``send`` /
    ``recv`` move whole Python objects, ``poll`` waits for readability,
    ``fileno`` lets :func:`multiprocessing.connection.wait` multiplex
    sockets and fork pipes in one call.  ``recv`` raises :class:`EOFError`
    on a cleanly closed peer (like a pipe does), so every dead-worker
    handler in :mod:`repro.service.backends` works unchanged.
    """

    def __init__(self, sock: socket.socket) -> None:
        sock.settimeout(None)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # AF_UNIX (tests) has no TCP options
            pass
        # A silently vanished peer (powered-off host, network partition)
        # never sends a FIN, and unlike a fork pipe the socket would stay
        # readable-never-ready forever.  Keepalive turns that silence into
        # an OSError on the blocked recv/send within a couple of minutes,
        # which every dead-worker handler already recovers from.
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
            for option, value in (("TCP_KEEPIDLE", 60),
                                  ("TCP_KEEPINTVL", 10),
                                  ("TCP_KEEPCNT", 6)):
                if hasattr(socket, option):
                    sock.setsockopt(socket.IPPROTO_TCP,
                                    getattr(socket, option), value)
        except OSError:  # pragma: no cover - platform-dependent knobs
            pass
        self._sock: Optional[socket.socket] = sock
        #: Capabilities the peer advertised in its handshake hello (empty
        #: until :func:`handshake` runs, or forever against an old peer).
        self.peer_features: frozenset = frozenset()
        #: Payload-byte and per-format frame counters (sent side only);
        #: the benchmark and the wire tests read these to account for what
        #: columnar shipping saves.
        self.bytes_sent = 0
        self.frames_sent: dict = {}
        #: Fault-injection hook: when > 0, that many upcoming frames are
        #: written with corrupted magic bytes (the peer rejects the
        #: stream).  Only the deterministic chaos harness sets this.
        self._corrupt_frames = 0
        self.frames_corrupted = 0

    # ------------------------------------------------------------------
    # Connection duck type
    # ------------------------------------------------------------------
    def fileno(self) -> int:
        if self._sock is None:
            raise OSError("wire connection is closed")
        return self._sock.fileno()

    def send(self, obj) -> None:
        """Pickle ``obj`` and write it as one frame.

        Against a peer that negotiated :data:`FEATURE_COLUMNAR`, any
        :class:`~repro.core.trace.WorkerTrace` inside ``obj`` is shipped
        as its columnar payload (format 3) instead of a pickled event
        graph; other peers get a plain pickle.
        """
        self._send_frame(*_dumps_for_features(obj, self.peer_features))

    def send_bytes(self, payload: bytes, fmt: int = _FORMAT_PICKLE) -> None:
        """Write an already-pickled payload (see :func:`dumps`) as one frame.

        Lets a sender fanning one large object out to many peers (the
        socket backend's warm bootstrap) serialise it once instead of once
        per connection.  ``fmt`` must match how the payload was produced
        (:func:`dumps` or :func:`dumps_columnar`).
        """
        self._send_frame(fmt, payload)

    def send_json(self, obj) -> None:
        """Write ``obj`` as one JSON frame (handshake only)."""
        self._send_frame(_FORMAT_JSON, json.dumps(obj).encode("utf-8"))

    def recv(self):
        """Read one frame and decode it (pickle or JSON, per its header)."""
        fmt, payload = self._recv_frame()
        return decode_payload(fmt, payload)

    def recv_json_only(self):
        """Read one frame, refusing to decode anything but JSON.

        The handshake path: the peer's hello is the only frame read before
        the protocol check passes, and this method guarantees no pickle is
        ever loaded from an un-handshaken peer -- a peer whose first frame
        is a pickle (format 1 or 3) is refused with
        :class:`WireProtocolError` without its payload being deserialised.
        """
        fmt, payload = self._recv_frame()
        return decode_payload(fmt, payload, json_only=True)

    def poll(self, timeout: Optional[float] = None) -> bool:
        """True when a frame (or EOF) is ready to :meth:`recv`.

        Uses the :mod:`selectors` module (epoll/poll where available)
        rather than ``select.select``, which raises ``ValueError`` on file
        descriptors >= 1024 -- a server holding hundreds of client sockets
        plus worker connections crosses that line in normal operation.
        """
        if self._sock is None:
            raise OSError("wire connection is closed")
        selector = selectors.DefaultSelector()
        try:
            selector.register(self._sock, selectors.EVENT_READ)
            return bool(selector.select(timeout))
        finally:
            selector.close()

    def corrupt_next_frame(self) -> None:
        """Arm the fault-injection hook: corrupt the next outbound frame.

        The frame is written with flipped magic bytes, so the peer raises
        :class:`WireProtocolError` on it and treats the stream as corrupt
        (hanging up).  Used by :mod:`repro.service.faults` to test the
        parent's dead-worker recovery against genuinely bad bytes instead
        of clean FINs; never armed in normal operation.
        """
        self._corrupt_frames += 1

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    # ------------------------------------------------------------------
    # framing
    # ------------------------------------------------------------------
    def _send_frame(self, fmt: int, payload: bytes) -> None:
        if self._sock is None:
            raise OSError("wire connection is closed")
        self.bytes_sent += len(payload)
        self.frames_sent[fmt] = self.frames_sent.get(fmt, 0) + 1
        magic = MAGIC
        if self._corrupt_frames > 0:
            self._corrupt_frames -= 1
            self.frames_corrupted += 1
            magic = bytes(byte ^ 0xFF for byte in MAGIC)
        self._sock.sendall(_HEADER.pack(magic, fmt, len(payload)) + payload)

    def _recv_exact(self, count: int) -> bytes:
        if self._sock is None:
            raise OSError("wire connection is closed")
        chunks = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise EOFError("wire peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _recv_frame(self) -> Tuple[int, bytes]:
        """Read one validated frame, returning ``(format, payload)`` raw."""
        header = self._recv_exact(_HEADER.size)
        fmt, length = parse_header(header)
        return fmt, self._recv_exact(length)


def parse_header(header: bytes) -> Tuple[int, int]:
    """Validate a frame header, returning ``(format, payload_length)``.

    Shared by :class:`WireConnection` and the asyncio prediction server
    (:mod:`repro.service.server`), which reads frames off
    ``asyncio.StreamReader`` instead of a blocking socket but must apply
    identical magic / length sanity checks.
    """
    magic, fmt, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireProtocolError(
            f"peer is not speaking the maya wire protocol "
            f"(bad frame magic {magic!r}, expected {MAGIC!r})")
    if length > _MAX_FRAME:
        raise WireError(
            f"frame length {length} exceeds the {_MAX_FRAME}-byte cap; "
            f"treating the stream as corrupt")
    return fmt, length


def encode_frame(obj, features: frozenset = frozenset()) -> bytes:
    """Serialise ``obj`` into one complete frame (header + payload).

    The async server writes these to ``asyncio.StreamWriter``; the
    blocking :meth:`WireConnection.send` path shares the same payload
    encoders but writes straight to its socket.
    """
    fmt, payload = _dumps_for_features(obj, features)
    return _HEADER.pack(MAGIC, fmt, len(payload)) + payload


def encode_json_frame(obj) -> bytes:
    """Serialise ``obj`` into one complete JSON frame (handshake hello)."""
    payload = json.dumps(obj).encode("utf-8")
    return _HEADER.pack(MAGIC, _FORMAT_JSON, len(payload)) + payload


def decode_payload(fmt: int, payload: bytes, json_only: bool = False):
    """Decode a frame payload per its header format byte.

    With ``json_only=True`` any pickle format is refused (the
    pre-handshake rule: nothing is unpickled before the protocol check
    passes).
    """
    if fmt == _FORMAT_JSON:
        return json.loads(payload.decode("utf-8"))
    if json_only:
        raise WireProtocolError(
            f"peer's first frame is format {fmt}, not the JSON handshake "
            f"hello; refusing to decode pre-handshake data")
    if fmt == _FORMAT_PICKLE or fmt == _FORMAT_PICKLE_COLUMNAR:
        # Format 3 is self-describing: each embedded columnar payload
        # pickles as a call to its decoder, so plain loads suffices.
        return pickle.loads(payload)
    raise WireError(f"unknown frame format {fmt}")


def local_hello() -> dict:
    """The JSON hello this process sends as its first frame."""
    return {"magic": HANDSHAKE_MAGIC, "protocol": PROTOCOL,
            "features": sorted(local_features())}


def validate_hello(hello) -> frozenset:
    """Check a peer's hello; return the negotiated feature intersection.

    Raises :class:`WireProtocolError` on a non-hello object or a protocol
    version mismatch.  Shared by the blocking :func:`handshake` and the
    asyncio server's per-client accept path.
    """
    if not isinstance(hello, dict) or hello.get("magic") != HANDSHAKE_MAGIC:
        raise WireProtocolError(
            f"peer did not answer the wire handshake (got {hello!r}); "
            f"is the remote end a `repro worker-host`?")
    peer = hello.get("protocol")
    if peer != PROTOCOL:
        raise WireProtocolError(
            f"wire protocol mismatch: this side speaks version {PROTOCOL}, "
            f"the peer speaks version {peer}; update the older side "
            f"(repro versions must match across worker hosts)")
    advertised = hello.get("features")
    if not isinstance(advertised, (list, tuple)):
        advertised = ()
    return frozenset(str(feature) for feature in advertised) \
        & frozenset(local_features())


def dumps(obj) -> bytes:
    """Pickle ``obj`` exactly as a non-columnar :meth:`WireConnection.send`
    would."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


#: Lazily resolved (WorkerTrace, encode_worker_trace) pair --
#: ``reducer_override`` runs for every object pickled, so the imports are
#: done once instead of per object.
_COLUMNAR_HOOKS: Optional[Tuple[type, object]] = None


def _columnar_hooks() -> Tuple[type, object]:
    global _COLUMNAR_HOOKS
    if _COLUMNAR_HOOKS is None:
        from repro.core.columnar import encode_worker_trace
        from repro.core.trace import WorkerTrace
        _COLUMNAR_HOOKS = (WorkerTrace, encode_worker_trace)
    return _COLUMNAR_HOOKS


class _ColumnarPickler(pickle.Pickler):
    """Pickler that swaps ``WorkerTrace`` graphs for columnar payloads.

    Each trace pickles as a call to
    :func:`repro.core.columnar.decode_worker_trace` on its encoded column
    buffers, so the receiving side needs nothing beyond ``pickle.loads``.
    Exact-type check only: a ``WorkerTrace`` subclass keeps default
    pickling (its extra state would be silently dropped otherwise).
    """

    def reducer_override(self, obj):
        trace_type, encode = _columnar_hooks()
        if type(obj) is trace_type:
            payload = encode(obj)
            if payload is not None:
                from repro.core.columnar import decode_worker_trace
                return (decode_worker_trace, (payload,))
        return NotImplemented


def dumps_columnar(obj) -> bytes:
    """Pickle ``obj`` with columnar ``WorkerTrace`` reductions (format 3).

    Output decodes with plain ``pickle.loads`` -- but only where
    ``repro`` (and numpy) are importable, which is why senders only use
    this against peers that negotiated :data:`FEATURE_COLUMNAR`.
    """
    buffer = io.BytesIO()
    _ColumnarPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buffer.getvalue()


def _dumps_for_features(obj, features: frozenset) -> Tuple[int, bytes]:
    if FEATURE_COLUMNAR in features:
        return _FORMAT_PICKLE_COLUMNAR, dumps_columnar(obj)
    return _FORMAT_PICKLE, dumps(obj)


def format_for_peer(conn: WireConnection) -> int:
    """Frame format :meth:`WireConnection.send` would pick for ``conn``.

    For fan-out senders: group peers by format, serialise once per group
    with :func:`dumps_for_format`, ship with
    :meth:`WireConnection.send_bytes`.
    """
    if FEATURE_COLUMNAR in conn.peer_features:
        return _FORMAT_PICKLE_COLUMNAR
    return _FORMAT_PICKLE


def dumps_for_format(obj, fmt: int) -> bytes:
    """Serialise ``obj`` as :func:`format_for_peer`'s chosen format."""
    if fmt == _FORMAT_PICKLE_COLUMNAR:
        return dumps_columnar(obj)
    return dumps(obj)


def handshake(conn: WireConnection) -> None:
    """Exchange protocol versions; raise :class:`WireProtocolError` on skew.

    Symmetric: each side sends its hello first, then reads the peer's, so
    neither side can deadlock waiting and both produce the same clear
    error naming the two versions.  Optional capabilities arrive in the
    hello's ``features`` list; a peer that omits the key (any release
    before the columnar format) negotiates every feature off, never an
    error.  The intersection is recorded on ``conn.peer_features``.

    The peer's hello is read with :meth:`WireConnection.recv_json_only`:
    an un-handshaken peer whose first frame is a pickle is refused before
    any deserialisation happens.
    """
    conn.send_json(local_hello())
    conn.peer_features = validate_hello(conn.recv_json_only())


def connect(address: str, timeout: float = 10.0) -> WireConnection:
    """Open a handshaken client connection to a ``host:port`` worker.

    ``timeout`` bounds both the TCP connect and the handshake exchange (a
    peer that accepts but never answers hello raises ``socket.timeout``,
    an :class:`OSError`, instead of stalling the caller); the connection
    is blocking afterwards.
    """
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=timeout)
    conn = WireConnection(sock)
    try:
        sock.settimeout(timeout)
        handshake(conn)
        sock.settimeout(None)
    except BaseException:
        conn.close()
        raise
    return conn
