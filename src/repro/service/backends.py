"""Evaluation backends: how ``predict_many`` fans a batch of trials out.

Three interchangeable strategies sit behind the same
:meth:`~repro.service.PredictionService.predict_many` interface:

* ``serial`` -- evaluate leaders one after another on the calling thread
  (the reference behaviour every other backend must match bit for bit).
* ``thread`` -- a ``ThreadPoolExecutor``.  Cheap to spin up and shares the
  artifact cache in-process, but the GIL serialises the pure-Python
  emulator and simulator, so it mostly helps when trials block on cache
  locks.
* ``process`` -- a fork-based ``ProcessPoolExecutor``.  The service is
  warmed *before* forking, so workers inherit the trained estimator suite,
  the shared duration provider's kernel memo and the artifact cache
  accumulated so far as copy-on-write memory; jobs are dispatched by index
  (nothing but an integer crosses the pipe on the way in).  Each worker
  runs the ordinary cache-aware ``predict`` path; results travel back as
  pickled :class:`~repro.core.pipeline.PredictionResult` objects, and any
  *freshly emulated* artifacts travel as the existing JSON trace
  serialisation, which the parent re-collates and merges into its own
  :class:`~repro.service.cache.ArtifactCache` (so the next batch forks with
  those artifacts already in memory).  Cache statistics are replayed on the
  parent so the accounting matches what a serial evaluation would have
  recorded.

Fork is a hard requirement for the process backend (inheriting multi-MB
trained estimator state by copy-on-write is the whole point); on platforms
without it the backend degrades to the thread backend and records the
downgrade in each result's metadata.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.collator import TraceCollator
from repro.core.pipeline import EmulationArtifacts, PredictionResult
from repro.core.trace import JobTrace
from repro.workloads.job import TrainingJob

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.predictor import PredictionService

#: Registered backend names, in documentation order.
BACKEND_NAMES = ("serial", "thread", "process")

#: State inherited by forked workers: (service, jobs of the current batch).
#: Set immediately before the pool forks and cleared right after the batch;
#: worker processes read their fork-time copy of it instead of unpickling
#: the service per task.  ``_CONTEXT_LOCK`` serialises concurrent
#: process-backend batches so no pool can fork while another batch's
#: context is installed.
_WORKER_CONTEXT: Optional[Tuple["PredictionService", List[TrainingJob]]] = None
_CONTEXT_LOCK = threading.Lock()


def _process_worker(index: int) -> Tuple[int, PredictionResult,
                                         Optional[str], bool,
                                         Dict[str, float]]:
    """Evaluate one job of the batch inside a forked worker.

    Returns the prediction plus, for cache misses, the freshly captured job
    trace as JSON so the parent can rebuild and cache the emulation
    artifacts (worker memory is copy-on-write: nothing written here is
    visible to the parent).
    """
    service, jobs = _WORKER_CONTEXT
    job = jobs[index]
    result = service.predict(job)
    trace_json: Optional[str] = None
    oom = False
    stage_times: Dict[str, float] = {}
    if result.metadata.get("service_cache") == "miss":
        try:
            key = service._artifact_key(job)
        except (NotImplementedError, TypeError):
            key = None
        if key is not None:
            artifacts = service.cache.peek_artifacts(key)
            if artifacts is not None:
                trace_json = artifacts.job_trace.to_json()
                oom = artifacts.oom
                stage_times = dict(artifacts.stage_times)
    return index, result, trace_json, oom, stage_times


class EvaluationBackend:
    """Strategy interface for evaluating one batch of leader jobs."""

    name = "base"

    def evaluate(self, service: "PredictionService",
                 jobs: Sequence[TrainingJob]) -> List[PredictionResult]:
        """Evaluate ``jobs`` and return results in input order."""
        raise NotImplementedError


class SerialBackend(EvaluationBackend):
    """Reference backend: one job after another on the calling thread."""

    name = "serial"

    def evaluate(self, service: "PredictionService",
                 jobs: Sequence[TrainingJob]) -> List[PredictionResult]:
        return [service.predict(job) for job in jobs]


class ThreadBackend(EvaluationBackend):
    """Thread-pool backend (shared-memory, GIL-bound)."""

    name = "thread"

    def evaluate(self, service: "PredictionService",
                 jobs: Sequence[TrainingJob]) -> List[PredictionResult]:
        workers = min(service.max_workers, len(jobs))
        if workers <= 1:
            return SerialBackend().evaluate(service, jobs)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(service.predict, jobs))


class ProcessBackend(EvaluationBackend):
    """Fork-based process-pool backend (true parallelism)."""

    name = "process"

    def evaluate(self, service: "PredictionService",
                 jobs: Sequence[TrainingJob]) -> List[PredictionResult]:
        workers = min(service.max_workers, len(jobs))
        if workers <= 1:
            return SerialBackend().evaluate(service, jobs)
        # predict_many warms before calling us; repeat defensively so a
        # directly-driven backend never forks an untrained estimator suite
        # (each worker would train its own copy instead of inheriting it).
        service.warm()
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            results = ThreadBackend().evaluate(service, jobs)
            for result in results:
                result.metadata.setdefault("backend_fallback",
                                           "fork unavailable")
            return results

        jobs = list(jobs)
        # Forked workers can't see each other's copy-on-write caches, so
        # structurally identical jobs dispatched together would all emulate
        # cold.  Ship only the first job per structural key; the siblings
        # resolve on the parent after the merge, hitting the merged
        # artifacts exactly as they would have under the serial backend.
        dispatch: List[int] = []
        deferred: List[int] = []
        if service.enable_cache:
            seen_keys = set()
            for index, job in enumerate(jobs):
                try:
                    key = service._artifact_key(job)
                except (NotImplementedError, TypeError):
                    key = None
                if key is not None and key in seen_keys:
                    deferred.append(index)
                    continue
                if key is not None:
                    seen_keys.add(key)
                dispatch.append(index)
        else:
            dispatch = list(range(len(jobs)))

        if len(dispatch) <= 1:
            # Everything but at most one job resolves from the cache the
            # leader populates: plain serial evaluation, no fork needed.
            return SerialBackend().evaluate(service, jobs)

        global _WORKER_CONTEXT
        with _CONTEXT_LOCK:
            _WORKER_CONTEXT = (service, jobs)
            try:
                # Workers fork lazily on the first submit, i.e. *after* the
                # context above is in place and after the caller ran warm().
                with ProcessPoolExecutor(max_workers=workers,
                                         mp_context=context) as pool:
                    payloads = list(pool.map(_process_worker, dispatch))
            finally:
                _WORKER_CONTEXT = None
        results = self._merge(service, jobs, payloads)
        for index in deferred:
            results[index] = service.predict(jobs[index])
        return results

    # ------------------------------------------------------------------
    # parent-side merge
    # ------------------------------------------------------------------
    def _merge(self, service: "PredictionService", jobs: List[TrainingJob],
               payloads: List[Tuple]) -> List[PredictionResult]:
        """Fold worker results back into the parent service.

        Replays the cache accounting each worker performed against its
        forked (invisible) cache copy, rebuilds freshly emulated artifacts
        from their JSON traces, and seeds the prediction cache so followers
        and future batches resolve exactly as they would have serially.
        """
        results: List[Optional[PredictionResult]] = [None] * len(jobs)
        stats = service.stats
        for index, result, trace_json, oom, stage_times in payloads:
            results[index] = result
            level = result.metadata.get("service_cache")
            if level == "miss":
                stats.prediction_misses += 1
                stats.artifact_misses += 1
            elif level == "artifacts":
                stats.prediction_misses += 1
                stats.artifact_hits += 1
            elif level == "prediction":
                stats.prediction_hits += 1
            if not service.enable_cache or level is None:
                continue
            job = jobs[index]
            if trace_json is not None:
                self._merge_artifacts(service, job, trace_json, oom,
                                      stage_times)
            try:
                prediction_key = service._prediction_key(job)
            except (NotImplementedError, TypeError):
                prediction_key = None
            if (prediction_key is not None
                    and service.cache.peek_prediction(prediction_key) is None):
                service.cache.put_prediction(prediction_key, result)
        return results  # type: ignore[return-value]

    @staticmethod
    def _merge_artifacts(service: "PredictionService", job: TrainingJob,
                         trace_json: str, oom: bool,
                         stage_times: Dict[str, float]) -> None:
        try:
            artifact_key = service._artifact_key(job)
        except (NotImplementedError, TypeError):
            return
        if service.cache.peek_artifacts(artifact_key) is not None:
            return
        pipeline = service.pipeline
        job_trace = JobTrace.from_json(trace_json)
        collator = TraceCollator(deduplicate=pipeline.deduplicate_workers)
        topology = job.topology() if hasattr(job, "topology") else None
        collated = collator.collate(job_trace, topology=topology)
        service.cache.put_artifacts(artifact_key, EmulationArtifacts(
            job=job,
            cluster=pipeline.cluster,
            job_trace=job_trace,
            collated=collated,
            oom=oom,
            stage_times=stage_times,
        ))


_BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def get_backend(name: str) -> EvaluationBackend:
    """Instantiate an evaluation backend by name."""
    try:
        return _BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"unknown evaluation backend {name!r}; "
            f"expected one of {sorted(_BACKENDS)}") from None
