"""Evaluation backends: how ``predict_many`` fans a batch of trials out.

Five interchangeable strategies sit behind the same
:meth:`~repro.service.PredictionService.predict_many` interface, all
implementing one explicit lifecycle -- ``warm`` / ``submit`` / ``drain`` /
``close``:

* ``serial`` -- evaluate leaders one after another on the calling thread
  (the reference behaviour every other backend must match bit for bit).
* ``thread`` -- a ``ThreadPoolExecutor``.  Cheap to spin up and shares the
  artifact cache in-process, but the GIL serialises the pure-Python
  emulator and simulator, so it mostly helps when trials block on cache
  locks.
* ``process`` -- a fork-based ``ProcessPoolExecutor`` created *per batch*.
  The service is warmed before forking, so workers inherit the trained
  estimator suite, the shared duration provider's kernel memo and the
  artifact cache accumulated so far as copy-on-write memory; jobs are
  dispatched by index (nothing but an integer crosses the pipe on the way
  in).  Each worker runs the ordinary cache-aware ``predict`` path; results
  travel back as pickled :class:`~repro.core.pipeline.PredictionResult`
  objects, and any *freshly emulated* artifacts travel as the existing JSON
  trace serialisation, which the parent re-collates and merges into its own
  :class:`~repro.service.cache.ArtifactCache` (so the next batch forks with
  those artifacts already in memory).  Cache statistics are replayed on the
  parent so the accounting matches what a serial evaluation would have
  recorded.
* ``persistent`` -- a long-lived fork-based worker pool created once per
  service (``warm()``) and reused across batches (``close()`` tears it
  down).  Instead of re-inheriting the newest cache through a fresh fork,
  workers are kept in sync by **incremental cache deltas**: before each
  batch the parent ships only the artifact entries (and shared-provider
  duration memos) created since that worker's last sync, keyed by the
  artifact cache's sync epoch, and the worker acks the epoch before any job
  of the batch reaches it.  A worker whose epoch the journal cannot serve
  receives a full snapshot instead of ever serving stale artifacts.  Jobs
  are dispatched with a bounded per-worker in-flight window, interleaving
  scatter with gather so neither side can block on a full pipe buffer; the
  result payloads and parent-side merge are identical to the ``process``
  backend, so accounting stays byte-identical to a serial run -- fork
  overhead is simply paid once instead of once per batch.
* ``socket`` -- the persistent lifecycle over TCP: workers are remote
  ``repro worker-host`` processes (other machines, or localhost for
  tests).  With no fork inheritance across hosts, ``warm`` bootstraps
  each worker by shipping the warmed service once -- estimator suite,
  shared-provider memos, host profile and current cache -- over the
  length-prefixed wire protocol (:mod:`repro.service.wire`); afterwards
  the same sync deltas, job dispatch, result payloads and input-order
  merge apply, so results and accounting stay byte-identical to serial.
  Addresses come from ``PredictionService(backend="socket",
  workers=[...])``, CLI ``--worker-hosts`` or ``REPRO_WORKER_HOSTS``.

Fork is a hard requirement for the local process-based backends
(inheriting multi-MB trained estimator state by copy-on-write is the
whole point); on platforms without it both degrade to the thread backend
and record the downgrade in each result's metadata.  The socket backend
needs no fork -- remote workers bootstrap from the warm payload instead.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import threading
import time
import traceback
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from itertools import islice
from multiprocessing import connection as mp_connection
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.collator import TraceCollator
from repro.core.pipeline import EmulationArtifacts, PredictionResult
from repro.core.trace import JobTrace
from repro.service import faults
from repro.service.scheduling import (SCHEDULER_ENV, JobSpec, WorkerSnapshot,
                                      get_scheduler, validate_scheduler)
from repro.service.store import StoreRef
from repro.service.wire import FEATURE_PING, WireError
from repro.workloads.job import TrainingJob

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.predictor import PredictionService

#: Registered backend names, in documentation order.
BACKEND_NAMES = ("serial", "thread", "process", "persistent", "socket")

#: Environment variables overriding the pooled backends' default timeouts
#: (explicit constructor / CLI values win over the environment).
SYNC_TIMEOUT_ENV = "REPRO_SYNC_TIMEOUT"
LEASE_TIMEOUT_ENV = "REPRO_LEASE_TIMEOUT"

#: Connection failures every scatter/gather path treats as a dead worker:
#: broken pipes, clean EOFs, OS-level socket errors, and wire streams
#: that turned to garbage (a corrupted frame is a dead connection, not a
#: fatal error -- the victim's jobs re-dispatch like any other failure).
_CONN_FAILURES = (BrokenPipeError, EOFError, OSError, WireError)


def validate_timeout(name: str, value, allow_zero: bool = False) -> float:
    """Validate a timeout given in seconds; raise ``ValueError`` if bad."""
    try:
        result = float(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{name} must be a number of seconds, got {value!r}") from None
    if result != result:  # NaN
        raise ValueError(f"{name} must be a number of seconds, got NaN")
    if result < 0 or (result == 0 and not allow_zero):
        bound = ">= 0 (0 disables it)" if allow_zero else "> 0"
        raise ValueError(f"{name} must be {bound} seconds, got {result}")
    return result


def _timeout_from_env(name: str, env_var: str, default: float,
                      allow_zero: bool = False) -> float:
    raw = os.environ.get(env_var)
    if raw is None or not raw.strip():
        return default
    return validate_timeout(f"{env_var} ({name})", raw, allow_zero=allow_zero)

#: State inherited by forked workers: (service, jobs of the current batch).
#: Set immediately before the pool forks and cleared right after the batch;
#: worker processes read their fork-time copy of it instead of unpickling
#: the service per task.  ``_CONTEXT_LOCK`` serialises concurrent
#: process-backend batches so no pool can fork while another batch's
#: context is installed.
_WORKER_CONTEXT: Optional[Tuple["PredictionService", List[TrainingJob]]] = None
_CONTEXT_LOCK = threading.Lock()


class BackendWorkerError(RuntimeError):
    """A worker process failed while evaluating one job of a batch."""


class _WorkerUnresponsive(OSError):
    """A live worker stopped answering within the sync timeout.

    Subclasses :class:`OSError` so every pipe-failure handler already
    treats it like a dead worker: discard the process and evaluate its
    share on the parent.
    """


def _evaluate_job(service: "PredictionService", index: int,
                  job: TrainingJob) -> Tuple[int, PredictionResult,
                                             Optional[str], bool,
                                             Dict[str, float]]:
    """Evaluate one job inside a worker process.

    Returns the prediction plus, for cache misses, the freshly captured job
    trace as JSON so the parent can rebuild and cache the emulation
    artifacts (worker memory is copy-on-write or a fork-time copy: nothing
    written here is visible to the parent).
    """
    result = service.predict(job)
    trace_json: Optional[str] = None
    oom = False
    stage_times: Dict[str, float] = {}
    if result.metadata.get("service_cache") == "miss":
        try:
            key = service._artifact_key(job)
        except (NotImplementedError, TypeError):
            key = None
        if key is not None:
            artifacts = service.cache.peek_artifacts(key)
            if artifacts is not None:
                trace_json = artifacts.job_trace.to_json()
                oom = artifacts.oom
                stage_times = dict(artifacts.stage_times)
    return index, result, trace_json, oom, stage_times


def _process_worker(index: int) -> Tuple[int, PredictionResult,
                                         Optional[str], bool,
                                         Dict[str, float]]:
    """Evaluate one job of the batch inside a per-batch forked worker."""
    service, jobs = _WORKER_CONTEXT
    return _evaluate_job(service, index, jobs[index])


def _split_structural(service: "PredictionService",
                      jobs: Sequence[TrainingJob]
                      ) -> Tuple[List[int], List[int]]:
    """Split a batch into (dispatch, deferred) indices.

    Forked workers can't see each other's caches, so structurally identical
    jobs dispatched together would all emulate cold.  Only the first job
    per structural key is dispatched; the siblings are deferred and resolve
    on the parent after the merge, hitting the merged artifacts exactly as
    they would have under the serial backend.
    """
    if not service.enable_cache:
        return list(range(len(jobs))), []
    dispatch: List[int] = []
    deferred: List[int] = []
    seen_keys = set()
    for index, job in enumerate(jobs):
        try:
            key = service._artifact_key(job)
        except (NotImplementedError, TypeError):
            key = None
        if key is not None and key in seen_keys:
            deferred.append(index)
            continue
        if key is not None:
            seen_keys.add(key)
        dispatch.append(index)
    return dispatch, deferred


def _merge_batch(service: "PredictionService", jobs: Sequence[TrainingJob],
                 payloads: Sequence[Tuple]) -> List[Optional[PredictionResult]]:
    """Fold worker results back into the parent service.

    Replays the cache accounting each worker performed against its own
    (invisible) cache copy, rebuilds freshly emulated artifacts from their
    JSON traces, and seeds the prediction cache so followers and future
    batches resolve exactly as they would have serially.
    """
    results: List[Optional[PredictionResult]] = [None] * len(jobs)
    stats = service.stats
    for index, result, trace_json, oom, stage_times in payloads:
        results[index] = result
        level = result.metadata.get("service_cache")
        tier = result.metadata.get("artifact_tier")
        if level == "miss":
            stats.prediction_misses += 1
            stats.artifact_misses += 1
        elif level == "artifacts":
            stats.prediction_misses += 1
            stats.artifact_hits += 1
            if tier == "store":
                stats.store_hits += 1
            else:
                stats.memory_hits += 1
        elif level == "prediction":
            stats.prediction_hits += 1
        if not service.enable_cache or level is None:
            continue
        job = jobs[index]
        if trace_json is not None:
            _merge_artifacts(service, job, trace_json, oom, stage_times)
        elif level == "artifacts" and tier == "store":
            # The worker's lookup fell through to the disk store and
            # hydrated *its* memory tier; mirror that on the parent (from
            # the parent's own store, in input order) so the journal, the
            # eviction state and the next batch's lookups land exactly
            # where a serial store hit would have left them.
            try:
                artifact_key = service._artifact_key(job)
            except (NotImplementedError, TypeError):
                artifact_key = None
            if artifact_key is not None:
                service.cache.hydrate_from_store(artifact_key)
        try:
            prediction_key = service._prediction_key(job)
        except (NotImplementedError, TypeError):
            prediction_key = None
        if (prediction_key is not None
                and service.cache.peek_prediction(prediction_key) is None):
            service.cache.put_prediction(prediction_key, result)
    return results


def _merge_artifacts(service: "PredictionService", job: TrainingJob,
                     trace_json: str, oom: bool,
                     stage_times: Dict[str, float]) -> None:
    try:
        artifact_key = service._artifact_key(job)
    except (NotImplementedError, TypeError):
        return
    if service.cache.peek_artifacts(artifact_key) is not None:
        return
    pipeline = service.pipeline
    job_trace = JobTrace.from_json(trace_json)
    collator = TraceCollator(deduplicate=pipeline.deduplicate_workers)
    topology = job.topology() if hasattr(job, "topology") else None
    collated = collator.collate(job_trace, topology=topology)
    service.cache.put_artifacts(artifact_key, EmulationArtifacts(
        job=job,
        cluster=pipeline.cluster,
        job_trace=job_trace,
        collated=collated,
        oom=oom,
        stage_times=stage_times,
    ))


class EvaluationBackend:
    """Strategy interface for evaluating batches of leader jobs.

    Every backend implements the same four-phase lifecycle:

    * :meth:`warm` -- one-time (idempotent) resource acquisition.  Only
      the pooled backends do real work here (``persistent`` forks its
      worker pool, ``socket`` connects to and bootstraps its worker
      hosts); for the others it is a no-op (their pools are per batch).
    * :meth:`submit` -- hand one batch of jobs to the backend's workers.
    * :meth:`drain` -- block until the submitted batch is fully evaluated
      and return its results in input order.
    * :meth:`close` -- release every resource the backend holds.  Always
      idempotent; ``evaluate`` calls it automatically after each batch for
      non-persistent backends, and the owning service calls it on
      ``PredictionService.close()`` (or context-manager exit) for
      persistent ones.
    """

    name = "base"
    #: Whether the backend keeps state (a worker pool) alive across
    #: batches.  Persistent backends are closed by the owning service, not
    #: after every ``evaluate``.
    persistent = False

    def warm(self, service: "PredictionService") -> None:
        """Acquire long-lived resources (idempotent)."""

    def submit(self, service: "PredictionService",
               jobs: Sequence[TrainingJob]) -> None:
        """Begin evaluating one batch of jobs."""
        raise NotImplementedError

    def drain(self) -> List[PredictionResult]:
        """Collect the submitted batch's results, in input order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release every resource held by the backend (idempotent)."""

    def pool_size(self) -> int:
        """Live long-lived workers held by this backend (0 when pools are
        per batch); surfaced by the prediction server's ``stats``."""
        return 0

    def evaluate(self, service: "PredictionService",
                 jobs: Sequence[TrainingJob]) -> List[PredictionResult]:
        """Evaluate ``jobs`` and return results in input order.

        Template over the lifecycle: non-persistent backends are closed
        after every batch (even on error), so no pool, fork context or
        worker process can outlive the call that created it.
        """
        self.warm(service)
        try:
            self.submit(service, jobs)
            return self.drain()
        finally:
            if not self.persistent:
                self.close()


class SerialBackend(EvaluationBackend):
    """Reference backend: one job after another on the calling thread."""

    name = "serial"

    def __init__(self) -> None:
        self._pending: Optional[Tuple["PredictionService",
                                      List[TrainingJob]]] = None

    def submit(self, service: "PredictionService",
               jobs: Sequence[TrainingJob]) -> None:
        self._pending = (service, list(jobs))

    def drain(self) -> List[PredictionResult]:
        service, jobs = self._pending
        self._pending = None
        return [service.predict(job) for job in jobs]

    def close(self) -> None:
        self._pending = None


class ThreadBackend(EvaluationBackend):
    """Thread-pool backend (shared-memory, GIL-bound)."""

    name = "thread"

    def __init__(self) -> None:
        self._pool: Optional[ThreadPoolExecutor] = None
        self._futures: List = []
        self._serial: Optional[SerialBackend] = None

    def submit(self, service: "PredictionService",
               jobs: Sequence[TrainingJob]) -> None:
        workers = min(service.max_workers, len(jobs))
        if workers <= 1:
            self._serial = SerialBackend()
            self._serial.submit(service, jobs)
            return
        self._pool = ThreadPoolExecutor(max_workers=workers)
        self._futures = [self._pool.submit(service.predict, job)
                         for job in jobs]

    def drain(self) -> List[PredictionResult]:
        if self._serial is not None:
            serial, self._serial = self._serial, None
            return serial.drain()
        futures, self._futures = self._futures, []
        return [future.result() for future in futures]

    def close(self) -> None:
        self._serial = None
        self._futures = []
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend(EvaluationBackend):
    """Fork-based process-pool backend (true parallelism, pool per batch)."""

    name = "process"

    def __init__(self) -> None:
        self._pool: Optional[ProcessPoolExecutor] = None
        self._futures: List = []
        self._delegate: Optional[EvaluationBackend] = None
        self._fallback = False
        self._service: Optional["PredictionService"] = None
        self._jobs: List[TrainingJob] = []
        self._deferred: List[int] = []
        self._context_installed = False

    def submit(self, service: "PredictionService",
               jobs: Sequence[TrainingJob]) -> None:
        jobs = list(jobs)
        workers = min(service.max_workers, len(jobs))
        if workers <= 1:
            self._delegate = SerialBackend()
            self._delegate.submit(service, jobs)
            return
        # predict_many warms before calling us; repeat defensively so a
        # directly-driven backend never forks an untrained estimator suite
        # (each worker would train its own copy instead of inheriting it).
        service._warm_pipeline()
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            self._delegate = ThreadBackend()
            self._fallback = True
            self._delegate.submit(service, jobs)
            return

        dispatch, deferred = _split_structural(service, jobs)
        if len(dispatch) <= 1:
            # Everything but at most one job resolves from the cache the
            # leader populates: plain serial evaluation, no fork needed.
            self._delegate = SerialBackend()
            self._delegate.submit(service, jobs)
            return

        self._service = service
        self._jobs = jobs
        self._deferred = deferred
        global _WORKER_CONTEXT
        _CONTEXT_LOCK.acquire()
        self._context_installed = True
        try:
            _WORKER_CONTEXT = (service, jobs)
            # Workers fork on submit, i.e. *after* the context above is in
            # place and after the pipeline warmed.
            self._pool = ProcessPoolExecutor(max_workers=workers,
                                             mp_context=context)
            self._futures = [self._pool.submit(_process_worker, index)
                             for index in dispatch]
        except BaseException:
            # A direct lifecycle driver may never reach close(): the
            # process-wide lock must not outlive a failed submit.
            self._release_context()
            raise

    def drain(self) -> List[PredictionResult]:
        if self._delegate is not None:
            # The delegate stays referenced: evaluate's finally -> close()
            # shuts it down even when drain raises.
            results = self._delegate.drain()
            if self._fallback:
                for result in results:
                    result.metadata.setdefault("backend_fallback",
                                               "fork unavailable")
            return results
        futures, self._futures = self._futures, []
        payloads = [future.result() for future in futures]
        # Every worker has forked and finished: drop the fork context (and
        # the process-wide lock guarding it) before the parent-side merge
        # and deferred predictions, which can be expensive.
        self._release_context()
        service, jobs = self._service, self._jobs
        results = _merge_batch(service, jobs, payloads)
        for index in self._deferred:
            results[index] = service.predict(jobs[index])
        return results  # type: ignore[return-value]

    def _release_context(self) -> None:
        if self._context_installed:
            global _WORKER_CONTEXT
            _WORKER_CONTEXT = None
            self._context_installed = False
            _CONTEXT_LOCK.release()

    def close(self) -> None:
        if self._delegate is not None:
            self._delegate.close()
            self._delegate = None
        self._fallback = False
        self._futures = []
        if self._pool is not None:
            # cancel_futures so an exception mid-batch never leaves stray
            # tasks (and their worker processes) running past the service.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._release_context()
        self._service = None
        self._jobs = []
        self._deferred = []


# ----------------------------------------------------------------------
# pooled workers (persistent fork pool + multi-host socket pool)
# ----------------------------------------------------------------------
def _resolve_store_refs(service: "PredictionService",
                        entries: Sequence[Tuple]
                        ) -> Tuple[List[Tuple], List[Tuple]]:
    """Swap :class:`~repro.service.store.StoreRef` markers for artifacts.

    Worker-side half of the skip-snapshot-ship optimisation: the parent
    replaces store-held entries with tiny refs, and the worker loads the
    payloads from its own attached store (the same directory under the
    ``persistent`` backend's fork inheritance).  Returns the resolved
    entries plus the keys no store could serve (entry gc'd in between, or
    no store attached at all) -- those are reported back as a
    ``sync-miss`` so the parent re-ships them inline.  Store reads here
    are sync traffic: they bump the store's own counters, never the
    cache's hit/miss accounting.
    """
    store = getattr(service.cache, "store", None)
    resolved: List[Tuple] = []
    missing: List[Tuple] = []
    for key, value in entries:
        if isinstance(value, StoreRef):
            artifacts = store.get(key) if store is not None else None
            if artifacts is None:
                missing.append(key)
                continue
            value = artifacts
        resolved.append((key, value))
    return resolved, missing


def _pool_worker_main(conn, service: "PredictionService",
                      worker_id: Optional[int] = None) -> None:
    """Long-lived worker loop: apply sync deltas, evaluate jobs, repeat.

    The worker holds its own copy of the service (fork-time under the
    ``persistent`` backend, unpickled from the ``warm`` bootstrap message
    under ``socket``); sync messages keep its artifact cache (and the
    shared provider's duration memos) mirroring the parent's, so its
    per-job cache accounting is exactly what a serial evaluation on the
    parent would have recorded.  Job failures are reported, not fatal: the
    pool survives an exception mid-batch.

    ``conn`` is anything that duck-types
    :class:`multiprocessing.connection.Connection` -- a fork pipe or a
    :class:`repro.service.wire.WireConnection`; the loop is the single
    worker-side implementation of the lifecycle protocol for both
    transports.  ``ping`` frames are answered inline between jobs, which
    is the liveness signal for transports whose peer advertises
    :data:`~repro.service.wire.FEATURE_PING`.

    ``worker_id`` numbers this worker for ``worker``-scoped fault rules
    (fork spawn order; worker hosts read ``REPRO_FAULT_WORKER`` instead).
    The active :class:`~repro.service.faults.FaultPlan` hooks run before /
    after each job and before each sync ack; a ``drop`` rule surfaces as
    :class:`~repro.service.faults.FaultInjected` and closes the
    connection, exactly like a lost network path.
    """
    plan = faults.current_fault_plan(worker_id)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError, WireError):
                break
            kind = message[0]
            if kind == "close":
                break
            try:
                if kind == "ping":
                    conn.send(("pong", message[1]))
                elif kind == "sync":
                    (_, epoch, full, entries, kernel_memo,
                     collective_memo) = message
                    entries, store_misses = _resolve_store_refs(service,
                                                                entries)
                    service.cache.apply_artifact_delta(entries, full=full)
                    provider = (service.provider()
                                if service.share_provider else None)
                    if provider is not None:
                        getattr(provider, "_kernel_cache",
                                {}).update(kernel_memo)
                        getattr(provider, "_collective_cache",
                                {}).update(collective_memo)
                    plan.on_sync(epoch)
                    if store_misses:
                        # A ref's entry was gc'd from the store beneath
                        # us: ask the parent to re-ship those inline (it
                        # answers with another sync at the same epoch).
                        conn.send(("sync-miss", epoch, store_misses))
                    else:
                        conn.send(("synced", epoch))
                elif kind == "job":
                    _, index, job = message
                    # Dispatched jobs have no prediction on the parent (hits
                    # resolve there before dispatch), so any local prediction
                    # entry could only be one the parent evicted -- drop the
                    # level so stale hits are impossible.
                    service.cache.drop_predictions()
                    plan.before_job(index)
                    started = time.perf_counter()
                    try:
                        payload = _evaluate_job(service, index, job)
                    except BaseException:
                        conn.send(("error", index, traceback.format_exc()))
                    else:
                        conn.send(("result",) + payload)
                        plan.after_job(index,
                                       time.perf_counter() - started)
            except faults.FaultInjected:
                break
            except (BrokenPipeError, OSError, WireError):
                break
    finally:
        conn.close()


class _PoolWorker:
    """Parent-side handle of one long-lived worker (any transport)."""

    __slots__ = ("conn", "epoch", "kernel_memo_len", "collective_memo_len",
                 "ping_token", "ping_sent_at", "last_ping_at")

    #: Whether liveness is probed with wire ``ping`` frames.  Forked
    #: workers are polled via ``process.is_alive()`` instead; socket
    #: workers override this per-connection from the negotiated features.
    supports_ping = False
    #: Whether this worker reads the same artifact-store directory as the
    #: parent, making it safe to ship :class:`StoreRef` markers instead
    #: of artifact payloads in sync messages.  True only for forked
    #: workers (they inherit the parent's store object, hence its
    #: directory); a remote socket worker's host may attach a store, but
    #: the parent cannot know it is the *same* filesystem, so payloads
    #: always travel whole over the wire.
    shares_store = False

    def __init__(self, conn, epoch: int, kernel_memo_len: int,
                 collective_memo_len: int) -> None:
        self.conn = conn
        #: Cache sync epoch this worker last acked (bootstrap epoch
        #: initially: the parent epoch at fork / warm-payload time).
        self.epoch = epoch
        #: Shared-provider memo lengths already shipped (memo dicts are
        #: append-only, so a length is a complete delta cursor).
        self.kernel_memo_len = kernel_memo_len
        self.collective_memo_len = collective_memo_len
        #: Outstanding liveness ping (token of the unanswered ping, its
        #: send time, and when a ping was last issued at all).
        self.ping_token: Optional[int] = None
        self.ping_sent_at = 0.0
        self.last_ping_at = 0.0

    def alive(self) -> bool:
        """Whether the pool should keep dispatching to this worker."""
        return True

    def reap(self, timeout: float = 5.0) -> None:
        """Release whatever executes this worker (idempotent)."""


class _PersistentWorker(_PoolWorker):
    """Handle of one forked worker process (``persistent`` backend)."""

    __slots__ = ("process",)

    shares_store = True

    def __init__(self, process, conn, epoch: int, kernel_memo_len: int,
                 collective_memo_len: int) -> None:
        super().__init__(conn, epoch, kernel_memo_len, collective_memo_len)
        self.process = process

    def alive(self) -> bool:
        return self.process.is_alive()

    def reap(self, timeout: float = 5.0) -> None:
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            # Wedged-but-alive (e.g. timed out acking a sync): terminate it
            # so it cannot outlive the service.
            self.process.terminate()
            self.process.join(timeout=5)


class _SocketWorker(_PoolWorker):
    """Handle of one remote worker reached over a wire connection.

    The remote process belongs to its own ``repro worker-host``; the
    parent can only close the connection (the worker host then returns to
    accepting new parents), never terminate it.
    """

    __slots__ = ("address", "dead")

    def __init__(self, conn, epoch: int, kernel_memo_len: int,
                 collective_memo_len: int, address: str) -> None:
        super().__init__(conn, epoch, kernel_memo_len, collective_memo_len)
        self.address = address
        self.dead = False

    @property
    def supports_ping(self) -> bool:
        return FEATURE_PING in getattr(self.conn, "peer_features", ())

    def alive(self) -> bool:
        return not self.dead

    def reap(self, timeout: float = 5.0) -> None:
        # Closing the wire connection is the only lever the parent has
        # over a remote worker: it releases the local fd and unblocks the
        # worker host's serving thread from its blocking read, so the
        # host can go back to accepting parents instead of leaking both.
        self.dead = True
        try:
            self.conn.close()
        except OSError:
            pass


class PooledBackend(EvaluationBackend):
    """Shared machinery of the long-lived worker-pool backends.

    Everything transport-independent lives here: the batch lifecycle
    (``submit``/``drain`` with interleaved, bounded-in-flight
    scatter/gather), the incremental cache-delta sync protocol with its
    epoch acks and timeout handling, and input-order result merging --
    plus the fault model every failure path funnels through:

    * **Liveness**: when the pool goes quiet the parent polls every
      worker (``process.is_alive()`` for forks, a ``ping`` wire frame
      for socket peers that negotiated it), so silent death is detected
      within ``ping_interval`` + ``ping_timeout`` instead of only when a
      read fails.
    * **Job leases**: every dispatched job carries a deadline
      (``lease_timeout``); a job held past it is speculatively
      re-dispatched to another live worker, or the parent as last
      resort.  Merge stays exactly-once -- first result wins, late
      duplicates are discarded without replaying their accounting -- so
      results remain byte-identical to serial.
    * **Degradation is per-job, never per-batch**: a dead worker costs
      re-dispatching its leased jobs; each affected result records its
      own ``backend_fallback`` reason in metadata.

    Subclasses provide only how workers come to exist:

    * :class:`PersistentBackend` forks local processes that inherit the
      warmed service copy-on-write;
    * :class:`SocketBackend` connects to remote ``repro worker-host``
      processes and bootstraps each one by shipping the warmed service
      (estimator suite, host profile, cache contents) once at ``warm``.

    The two transports speak the same message tuples; only the connection
    object differs (fork pipe vs :class:`repro.service.wire.WireConnection`).
    """

    persistent = True
    #: Seconds a worker gets to ack a sync message before it is treated
    #: like a dead one (discarded, share evaluated on the parent).  Sync
    #: application is pure dict folding, so even a full snapshot acks in
    #: well under a second locally; a worker that misses this deadline is
    #: wedged (or its network path is gone).  Class attribute is the
    #: default; instances resolve constructor arg > ``REPRO_SYNC_TIMEOUT``
    #: > this value.
    sync_timeout = 60.0
    #: Seconds a dispatched job may stay unanswered before its lease
    #: expires and the parent speculatively re-dispatches it to another
    #: live worker (the parent itself as last resort).  First result
    #: wins; the late duplicate is discarded.  ``0`` disables leases
    #: (a straggler then gates the batch, as before).  Instances resolve
    #: constructor arg > ``REPRO_LEASE_TIMEOUT`` > this value.
    lease_timeout = 30.0
    #: Liveness cadence: with no traffic for this many seconds the parent
    #: polls every worker (``process.is_alive()`` for forked workers, a
    #: wire ``ping`` frame for socket peers that negotiated
    #: :data:`~repro.service.wire.FEATURE_PING`), so silent death is
    #: detected in bounded time instead of only on a failed read.
    ping_interval = 5.0
    #: Seconds an outstanding ping may go unanswered before the worker is
    #: declared dead.  Generous: a worker evaluating a long job answers
    #: only between jobs, so this must exceed one job's evaluation time.
    ping_timeout = 120.0
    #: Jobs kept in flight per worker.  Job messages are small (a pickled
    #: :class:`TrainingJob`), so a bounded window always fits in the OS
    #: buffer of a pipe or socket; the parent sends a new job only after
    #: receiving a result, which keeps it draining results (and the
    #: workers' outbound buffers) instead of ever blocking in ``send`` --
    #: see :meth:`drain`.
    max_inflight = 2

    def __init__(self, sync_timeout: Optional[float] = None,
                 lease_timeout: Optional[float] = None,
                 scheduler: Optional[str] = None) -> None:
        if sync_timeout is None:
            self.sync_timeout = _timeout_from_env(
                "sync_timeout", SYNC_TIMEOUT_ENV, type(self).sync_timeout)
        else:
            self.sync_timeout = validate_timeout("sync_timeout",
                                                 sync_timeout)
        if lease_timeout is None:
            self.lease_timeout = _timeout_from_env(
                "lease_timeout", LEASE_TIMEOUT_ENV,
                type(self).lease_timeout, allow_zero=True)
        else:
            self.lease_timeout = validate_timeout(
                "lease_timeout", lease_timeout, allow_zero=True)
        if scheduler is None:
            scheduler = os.environ.get(SCHEDULER_ENV, "").strip() \
                or "round_robin"
        self.set_scheduler(scheduler)
        #: Pending ("join"/"leave", spec) membership requests, applied at
        #: the next drain-loop iteration (mid-batch) or warm (idle) --
        #: appends are atomic, so other threads may enqueue freely.
        self._membership: Deque[Tuple[str, str]] = deque()
        self._workers: List[_PoolWorker] = []
        self._service: Optional["PredictionService"] = None
        #: When set, ``submit`` delegates to a thread pool and tags every
        #: result's metadata with this reason (e.g. fork unavailable).
        self._fallback_reason: Optional[str] = None
        #: Serialises batches: submit acquires, drain releases.
        self._batch_lock = threading.Lock()
        #: Guards pool (``_workers``) mutation: ``warm`` spawns/connects
        #: and appends, ``close`` swaps the list out, ``_discard_worker``
        #: removes -- all under this lock so a teardown racing a top-up can
        #: never strand a fresh worker outside the list.  Reentrant because
        #: ``warm`` calls ``close`` when re-targeted at a new service.
        self._closed_lock = threading.RLock()
        # submit/drain state
        self._delegate: Optional[EvaluationBackend] = None
        self._fallback = False
        self._jobs: List[TrainingJob] = []
        self._deferred: List[int] = []
        self._assignments: List[Tuple[_PoolWorker, List[int]]] = []
        #: (index, fallback reason) pairs whose worker died before
        #: evaluating them; the parent picks them up in drain.
        self._parent_eval: List[Tuple[int, str]] = []
        self._ping_counter = 0
        #: Resilience counters (surfaced by tests, the chaos benchmark
        #: and the conformance harness).
        self.resilience_stats: Dict[str, int] = {
            "worker_deaths": 0, "lease_expirations": 0,
            "redispatched_jobs": 0, "duplicate_results": 0,
            "parent_evaluations": 0, "pings_sent": 0,
            "pongs_received": 0, "stragglers_discarded": 0,
            "reconnects": 0, "joins": 0, "leaves": 0,
            "rebalanced_jobs": 0,
        }
        #: Which worker emulated each artifact key: that worker already has
        #: its own (equivalent) copy, so deltas skip shipping it back.
        self._artifact_origin: Dict[Tuple, _PoolWorker] = {}
        #: Sync-protocol counters (surfaced by tests and the benchmark).
        #: The placement counters mirror the scheduler policy's
        #: monotonic :attr:`SchedulerPolicy.stats` after every batch.
        self.sync_stats: Dict[str, int] = {
            "delta_syncs": 0, "full_syncs": 0, "skipped_syncs": 0,
            "batches": 0, "store_refs_shipped": 0, "store_ref_fallbacks": 0,
            "placements": 0, "locality_hits": 0, "ship_bytes_avoided": 0,
        }

    def pool_size(self) -> int:
        """Live workers currently in the pool."""
        with self._closed_lock:
            return len(self._workers)

    # ------------------------------------------------------------------
    # placement policy
    # ------------------------------------------------------------------
    def set_scheduler(self, name: str) -> None:
        """Select the placement policy by registered name (validated)."""
        self.scheduler = validate_scheduler(name)
        self._policy = get_scheduler(name)

    def _estimate_ship_bytes(self, artifacts) -> int:
        """Cheap proxy for an artifact ship's wire size.

        Scales with total trace-event count (the dominant payload term)
        at a nominal per-event byte cost; deliberately an estimate --
        placement needs relative weights, not measured frames.
        """
        job_trace = getattr(artifacts, "job_trace", None)
        workers = getattr(job_trace, "workers", None)
        events = 0
        if workers:
            for trace in workers.values():
                events += len(getattr(trace, "events", ()) or ())
        return max(events, 1) * self._NOMINAL_EVENT_BYTES

    _NOMINAL_EVENT_BYTES = 48

    # ------------------------------------------------------------------
    # dynamic membership (elastic pools; socket transport implements it)
    # ------------------------------------------------------------------
    def join(self, spec: str) -> None:
        """Ask the pool to admit a worker (socket: a ``host:port``).

        Mid-batch the joiner is bootstrapped through the ordinary warm +
        snapshot-resync machinery at the next drain-loop iteration and
        immediately receives rebalanced work; between batches it is
        connected by the next ``warm()``.  Transports without dynamic
        membership (the fork pools) ignore the request.
        """
        self._membership.append(("join", str(spec)))

    def leave(self, spec: str) -> None:
        """Ask a worker to depart cleanly: no new jobs are sent to it,
        its unsent queue moves to surviving workers, in-flight jobs may
        still answer, and its address is forgotten so later warms do not
        reconnect it."""
        self._membership.append(("leave", str(spec)))

    def _admit_member(self, service: "PredictionService",
                      spec: str) -> Optional[_PoolWorker]:
        """Connect + bootstrap one mid-batch joiner; ``None`` = declined.

        Base pools have no way to mint a worker mid-batch (fork workers
        must inherit state at fork time); the socket transport overrides.
        """
        return None

    def _member_spec(self, worker: _PoolWorker) -> Optional[str]:
        """The membership spec a worker answers to (socket: its address)."""
        return None

    def _register_member(self, spec: str) -> bool:
        """Record an idle-time join so the next top-up acquires it."""
        return False

    def _retire_member(self, spec: str) -> None:
        """Forget a departed member so later warms do not re-acquire it."""

    def _process_membership_idle(self, service: "PredictionService") -> None:
        """Apply queued join/leave requests between batches (under
        ``_closed_lock``, before ``_top_up`` acquires workers)."""
        while True:
            try:
                action, spec = self._membership.popleft()
            except IndexError:
                return
            if action == "join":
                if self._register_member(spec):
                    self.resilience_stats["joins"] += 1
                    self._policy.on_membership_change(joined=(spec,))
            else:
                self._retire_member(spec)
                departed = False
                for worker in list(self._workers):
                    if self._member_spec(worker) != spec:
                        continue
                    try:
                        worker.conn.send(("close",))
                    except _CONN_FAILURES:
                        pass
                    self._discard_worker(worker)
                    departed = True
                if departed:
                    self.resilience_stats["leaves"] += 1
                    self._policy.on_membership_change(left=(spec,))

    def _job_specs(self, service: "PredictionService",
                   jobs: List[TrainingJob],
                   dispatch: Sequence[int]) -> List[JobSpec]:
        """Placement views of the dispatchable jobs (locality inputs)."""
        cache = service.cache
        store = getattr(cache, "store", None)
        specs: List[JobSpec] = []
        for index in dispatch:
            try:
                key = service._artifact_key(jobs[index])
            except (NotImplementedError, TypeError):
                key = None
            cached = False
            in_store = False
            ship_bytes = 0
            if key is not None:
                artifacts = cache.peek_artifacts(key)
                if artifacts is not None:
                    cached = True
                    ship_bytes = self._estimate_ship_bytes(artifacts)
                if store is not None:
                    try:
                        in_store = store.contains(key)
                    except OSError:  # pragma: no cover - stat race
                        in_store = False
            specs.append(JobSpec(index=index, artifact_key=key,
                                 artifact_cached=cached, in_store=in_store,
                                 ship_bytes=ship_bytes))
        return specs

    def _worker_snapshots(self, service: "PredictionService",
                          workers: Sequence[_PoolWorker]
                          ) -> List[WorkerSnapshot]:
        """Placement views of the live workers, slot-parallel."""
        cache = service.cache
        store = getattr(cache, "store", None)
        origin_keys: Dict[_PoolWorker, set] = {}
        for key, owner in self._artifact_origin.items():
            origin_keys.setdefault(owner, set()).add(key)
        snapshots: List[WorkerSnapshot] = []
        for slot, worker in enumerate(workers):
            held = set(cache.keys_synced_at(worker.epoch))
            held.update(origin_keys.get(worker, ()))
            snapshots.append(WorkerSnapshot(
                slot=slot, load=0, acked_epoch=worker.epoch,
                shares_store=bool(store is not None and worker.shares_store),
                held_keys=frozenset(held)))
        return snapshots

    # ------------------------------------------------------------------
    # lifecycle (template: subclasses fill in worker acquisition)
    # ------------------------------------------------------------------
    def _ready(self, service: "PredictionService") -> bool:
        """Fast pre-warm check; False skips the warm entirely (fallback)."""
        raise NotImplementedError

    def _top_up(self, service: "PredictionService") -> None:
        """Bring ``self._workers`` up to strength (under ``_closed_lock``)."""
        raise NotImplementedError

    def warm(self, service: "PredictionService") -> None:
        """Acquire the pool (idempotent; tops up after worker deaths).

        Must run after the estimator suite / shared provider exist so
        workers inherit (or are shipped) trained state --
        ``service.warm()`` guarantees that ordering.  New workers start
        with the parent's *current* cache, so their sync epoch starts at
        the cache's current epoch.
        """
        if not self._ready(service):
            return
        # Estimator training can be slow; run it before taking the
        # lifecycle lock so a concurrent close() is not held up behind it.
        service._warm_pipeline()
        with self._closed_lock:
            if self._service is not None and self._service is not service:
                # A backend instance serves one service; re-warming against
                # a different one tears the old pool down first.
                self.close()
            self._service = service
            self._prune_dead_workers()
            self._process_membership_idle(service)
            self._top_up(service)

    def _prune_dead_workers(self) -> None:
        """Drop pooled workers that died between batches.

        A fork worker reports death via ``process.is_alive()``; a socket
        worker's host may have exited with nothing but a FIN in flight,
        which only shows up as a readable-at-idle connection.  Probing
        here (instead of trusting the handle) is what lets a restarted
        worker host rejoin on the very next warm: the dead worker's
        address becomes unserved again and ``_top_up`` reconnects.  Idle
        connections may legitimately hold one stale ``pong`` from the
        previous batch's liveness probe; anything else is a dead or
        desynced peer.
        """
        for worker in list(self._workers):
            pruned = not worker.alive()
            if not pruned:
                try:
                    while worker.conn.poll(0):
                        message = worker.conn.recv()
                        if (isinstance(message, tuple) and message
                                and message[0] == "pong"):
                            worker.ping_token = None
                            continue
                        raise WireError(
                            f"unexpected idle message {message[:1]!r}")
                except _CONN_FAILURES:
                    pruned = True
            if pruned:
                self.resilience_stats["worker_deaths"] += 1
                self._discard_worker(worker)

    def _bootstrap_cursor(self, service: "PredictionService"
                          ) -> Tuple[int, int, int]:
        """(cache epoch, kernel-memo len, collective-memo len) for a worker
        about to receive the parent's current state (fork or warm payload).
        Read *before* the state is captured: entries added in between are
        simply re-shipped by the first delta, which is idempotent."""
        provider = service.provider() if service.share_provider else None
        return (service.cache.sync_epoch,
                len(getattr(provider, "_kernel_cache", ())),
                len(getattr(provider, "_collective_cache", ())))

    def close(self) -> None:
        """Shut the pool down; safe to call repeatedly and mid-failure."""
        with self._closed_lock:
            workers, self._workers = self._workers, []
            for worker in workers:
                try:
                    worker.conn.send(("close",))
                except (BrokenPipeError, OSError):
                    pass
                try:
                    worker.conn.close()
                except OSError:
                    pass
            for worker in workers:
                worker.reap()
            self._service = None
            self._artifact_origin.clear()
            if self._delegate is not None:
                self._delegate.close()
                self._delegate = None

    # ------------------------------------------------------------------
    # sync protocol
    # ------------------------------------------------------------------
    def _sync_worker(self, service: "PredictionService",
                     worker: _PoolWorker) -> None:
        """Ship the artifact/memo delta since the worker's acked epoch.

        The worker acks the epoch before any job of the batch reaches it
        (the pipe is ordered), so no job is ever evaluated against stale
        artifacts.  An unserviceable epoch -- or an ack that does not match
        the epoch just shipped -- forces a full snapshot resync.
        """
        cache = service.cache
        provider = service.provider() if service.share_provider else None
        kernel_memo: List[Tuple] = []
        collective_memo: List[Tuple] = []
        kernel_len = collective_len = 0
        if provider is not None:
            # The memo dicts are append-only, so a length compare is a
            # complete delta test: steady-state sweeps (memos stopped
            # growing) ship nothing and never materialise the dicts.
            kernel_cache = getattr(provider, "_kernel_cache", {})
            collective_cache = getattr(provider, "_collective_cache", {})
            kernel_len = len(kernel_cache)
            collective_len = len(collective_cache)
            if kernel_len > worker.kernel_memo_len:
                kernel_memo = list(islice(kernel_cache.items(),
                                          worker.kernel_memo_len, None))
            if collective_len > worker.collective_memo_len:
                collective_memo = list(islice(collective_cache.items(),
                                              worker.collective_memo_len,
                                              None))
        delta = cache.delta_since(worker.epoch)
        if delta is not None:
            epoch, entries = delta
            entries = [(key, artifacts) for key, artifacts in entries
                       if self._artifact_origin.get(key) is not worker]
            if not entries and not kernel_memo and not collective_memo:
                self.sync_stats["skipped_syncs"] += 1
                worker.epoch = epoch
                return
            full = False
            self.sync_stats["delta_syncs"] += 1
        else:
            # Stale / unknown epoch: the journal cannot reconstruct what
            # this worker is missing, so replace its cache wholesale.
            epoch, entries = cache.snapshot()
            full = True
            self.sync_stats["full_syncs"] += 1
        shipped = entries
        store = getattr(cache, "store", None)
        if store is not None and worker.shares_store:
            # Skip shipping payloads the worker can read from the shared
            # store directory: a tiny StoreRef travels instead of the
            # artifact.  Applies to deltas and full snapshots alike (the
            # snapshot ship is where the savings are largest).
            shipped = []
            for key, value in entries:
                if store.contains(key):
                    shipped.append((key, StoreRef(key)))
                    self.sync_stats["store_refs_shipped"] += 1
                else:
                    shipped.append((key, value))
        worker.conn.send(("sync", epoch, full, shipped, kernel_memo,
                          collective_memo))
        deadline = time.monotonic() + self.sync_timeout
        while True:
            if not worker.conn.poll(max(deadline - time.monotonic(), 0.0)):
                # A wedged-but-alive worker must not hang the service:
                # treat it exactly like a dead pipe (the caller discards
                # the worker and evaluates its share on the parent).
                raise _WorkerUnresponsive(
                    f"{self.name} worker did not ack sync epoch {epoch} "
                    f"within {self.sync_timeout}s")
            ack = worker.conn.recv()
            if isinstance(ack, tuple) and ack and ack[0] == "pong":
                # Stale liveness reply from the previous batch arriving
                # after its drain loop ended -- consume and keep waiting.
                worker.ping_token = None
                continue
            if (isinstance(ack, tuple) and len(ack) == 3
                    and ack[0] == "sync-miss" and ack[1] == epoch):
                # A gc raced our refs: the worker could not resolve these
                # keys from its store.  Re-ship the original payloads
                # inline at the same epoch; the worker acks ``synced``
                # after applying them (the follow-up carries no refs, so
                # this converges in one round).
                by_key = dict(entries)
                resend = [(key, by_key[key]) for key in ack[2]
                          if key in by_key]
                self.sync_stats["store_ref_fallbacks"] += 1
                worker.conn.send(("sync", epoch, False, resend, [], []))
                deadline = time.monotonic() + self.sync_timeout
                continue
            break
        if ack != ("synced", epoch):
            raise BackendWorkerError(
                f"{self.name} worker acked {ack!r}, expected sync epoch "
                f"{epoch}")
        worker.epoch = epoch
        if provider is not None:
            worker.kernel_memo_len = kernel_len
            worker.collective_memo_len = collective_len

    # ------------------------------------------------------------------
    # batch evaluation
    # ------------------------------------------------------------------
    def _discard_worker(self, worker: _PoolWorker) -> None:
        """Drop a dead or unresponsive worker (the next warm tops it up)."""
        with self._closed_lock:
            if worker in self._workers:
                self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.reap(timeout=1)

    def submit(self, service: "PredictionService",
               jobs: Sequence[TrainingJob]) -> None:
        """Scatter one batch.  Assumes ``warm(service)`` already ran (the
        ``evaluate`` template and ``PredictionService.warm`` both call it,
        and it is what decides fallback / pool availability)."""
        self._batch_lock.acquire()
        try:
            self._delegate = None
            self._fallback = False
            self._parent_eval = []
            jobs = list(jobs)
            self._jobs = jobs
            if self._fallback_reason is not None:
                self._delegate = ThreadBackend()
                self._fallback = True
                self._delegate.submit(service, jobs)
                return
            workers = [worker for worker in self._workers if worker.alive()]
            dispatch, deferred = _split_structural(service, jobs)
            if len(dispatch) <= 1 or not workers:
                self._delegate = SerialBackend()
                self._delegate.submit(service, jobs)
                return
            self._deferred = deferred
            self.sync_stats["batches"] += 1
            # Placement goes through the pluggable policy: it sees
            # immutable job/worker views (artifact keys, acked epochs,
            # store sharing) and returns one share per worker.  Workers
            # handed an empty share sit this batch out entirely -- no
            # sync, so nothing ships to them; that skipped ship is the
            # saving locality-aware placement exists to harvest.
            shares = self._policy.assign(
                self._job_specs(service, jobs, dispatch),
                self._worker_snapshots(service, workers))
            for counter in ("placements", "locality_hits",
                            "ship_bytes_avoided"):
                self.sync_stats[counter] = self._policy.stats[counter]
            assignments: List[Tuple[_PoolWorker, List[int]]] = [
                (workers[slot], assigned)
                for slot, assigned in enumerate(shares) if assigned]
            # Sync (and collect the epoch ack from) every worker that will
            # see jobs this batch.  Jobs themselves are NOT sent here:
            # drain interleaves scatter and gather with a bounded in-flight
            # window, because pipes are fixed-size OS buffers -- scattering
            # a large batch wholesale while a worker blocks sending a large
            # result would deadlock both sides.  A worker whose pipe dies
            # at any point hands its share to the parent (identical
            # results, identical accounting).
            synced: List[Tuple[_PoolWorker, List[int]]] = []
            for worker, assigned in assignments:
                try:
                    self._sync_worker(service, worker)
                except _CONN_FAILURES:
                    self.resilience_stats["worker_deaths"] += 1
                    self._discard_worker(worker)
                    reason = (f"{self.name} worker failed during cache "
                              f"sync; evaluated on parent")
                    self._parent_eval.extend(
                        (index, reason) for index in assigned)
                else:
                    synced.append((worker, assigned))
            self._assignments = synced
            self._service = service
        except BaseException:
            self._batch_lock.release()
            raise

    def drain(self) -> List[PredictionResult]:
        try:
            if self._delegate is not None:
                delegate, self._delegate = self._delegate, None
                try:
                    results = delegate.drain()
                finally:
                    delegate.close()
                if self._fallback:
                    self._fallback = False
                    reason = self._fallback_reason or "fork unavailable"
                    for result in results:
                        result.metadata.setdefault("backend_fallback", reason)
                return results
            service, jobs = self._service, self._jobs
            assignments, self._assignments = self._assignments, []
            payloads: List[Tuple] = []
            errors: List[Tuple[int, str]] = []
            done: set = set()
            #: index -> reason; evaluated on the parent after the loop.
            missing: Dict[int, str] = {}
            #: index -> reason recorded whenever the resilience machinery
            #: touched a job (per-job ``backend_fallback`` metadata).
            fallback_reasons: Dict[int, str] = {}
            for index, reason in self._parent_eval:
                missing[index] = reason
                fallback_reasons[index] = reason
            self._parent_eval = []
            plan = faults.current_fault_plan()
            lease = self.lease_timeout or 0.0
            no_deadline = float("inf")
            stats = self.resilience_stats
            # Interleaved scatter/gather: each worker holds at most
            # ``max_inflight`` unanswered jobs, and the parent sends the
            # next one only after receiving a result, so it is always
            # draining worker pipes and can never deadlock against a
            # worker blocked in ``send`` on a large result.  Each in-flight
            # job carries a lease deadline; liveness is probed whenever
            # the pool goes quiet (see the class attributes).
            states: Dict[_PoolWorker,
                         Tuple[Deque[int], Dict[int, float]]] = {}
            by_conn: Dict[object, _PoolWorker] = {}
            pending: set = set()
            #: Indices already speculatively re-dispatched once (a second
            #: lease expiry falls back to the parent, bounding copies).
            redispatched: set = set()
            for worker, assigned in assignments:
                states[worker] = (deque(assigned), {})
                by_conn[worker.conn] = worker
                pending.update(assigned)

            #: Workers that finished their share cleanly: still synced and
            #: alive, so re-dispatch can pull them back in as targets.
            standby: List[_PoolWorker] = []
            #: Workers departing cleanly: no new jobs are sent to them,
            #: and once their in-flight work answers they leave the pool.
            departing: set = set()

            def _retire(worker: _PoolWorker, clean: bool = False) -> None:
                del states[worker]
                del by_conn[worker.conn]
                departing.discard(worker)
                if clean:
                    standby.append(worker)

            def _unretire() -> Optional[_PoolWorker]:
                while standby:
                    worker = standby.pop()
                    if not worker.alive():
                        stats["worker_deaths"] += 1
                        self._discard_worker(worker)
                        continue
                    states[worker] = (deque(), {})
                    by_conn[worker.conn] = worker
                    return worker
                return None

            def _live_target(index: int,
                             exclude: Optional[_PoolWorker]
                             ) -> Optional[_PoolWorker]:
                # Re-dispatch target selection goes through the policy
                # (default: least-loaded live worker, the pre-policy
                # behaviour); candidates already holding a copy of
                # ``index`` -- or on their way out -- are filtered here.
                candidates: List[_PoolWorker] = []
                snapshots: List[WorkerSnapshot] = []
                for candidate, (queue, inflight) in states.items():
                    if (candidate is exclude or candidate in departing
                            or index in inflight or index in queue):
                        continue
                    snapshots.append(WorkerSnapshot(
                        slot=len(candidates),
                        load=len(queue) + len(inflight)))
                    candidates.append(candidate)
                if not candidates:
                    return None
                slot = self._policy.select_target(JobSpec(index=index),
                                                  snapshots)
                return None if slot is None else candidates[slot]

            def _reassign(index: int, exclude: Optional[_PoolWorker],
                          reason_worker: str, reason_parent: str
                          ) -> Optional[_PoolWorker]:
                # Hand one unresolved index to another live worker --
                # active or pulled back from standby -- or to the parent
                # as last resort (also when this copy was already a
                # speculative one -- at most two live copies).
                target = (None if index in redispatched
                          else _live_target(index, exclude)
                          or _unretire())
                if target is None:
                    missing[index] = reason_parent
                    fallback_reasons[index] = reason_parent
                    pending.discard(index)
                    stats["parent_evaluations"] += 1
                else:
                    states[target][0].append(index)
                    redispatched.add(index)
                    fallback_reasons[index] = reason_worker
                    stats["redispatched_jobs"] += 1
                return target

            def _fail(worker: _PoolWorker, why: str) -> None:
                # Worker died (or its connection did) mid-batch: its
                # unanswered and unsent share re-dispatches to the
                # surviving workers (parent as last resort) and the next
                # warm() replaces it.  The dead connection cannot deliver
                # a late duplicate, so these re-dispatches do not count
                # against the one-speculative-copy bound.
                queue, inflight = states[worker]
                stats["worker_deaths"] += 1
                _retire(worker)
                self._discard_worker(worker)
                reason_worker = (f"{self.name} worker {why}; job "
                                 f"re-dispatched to a live worker")
                reason_parent = (f"{self.name} worker {why}; job "
                                 f"evaluated on parent")
                targets = set()
                for index in list(inflight) + list(queue):
                    if index in done or index in missing:
                        continue
                    redispatched.discard(index)
                    target = _reassign(index, None, reason_worker,
                                       reason_parent)
                    if target is not None:
                        targets.add(target)
                for target in targets:
                    if target in states and not _top_up(target):
                        _fail(target, "connection failed during "
                                      "re-dispatch")

            def _top_up(worker: _PoolWorker) -> bool:
                if worker in departing:
                    return True  # draining out: no new work
                queue, inflight = states[worker]
                while queue and len(inflight) < self.max_inflight:
                    index = queue[0]
                    if index in done or index in missing:
                        queue.popleft()  # resolved elsewhere meanwhile
                        continue
                    if (plan.job_frame_action(index) == "corrupt"
                            and hasattr(worker.conn,
                                        "corrupt_next_frame")):
                        worker.conn.corrupt_next_frame()
                    try:
                        worker.conn.send(("job", index, jobs[index]))
                    except _CONN_FAILURES:
                        return False
                    queue.popleft()
                    inflight[index] = (time.monotonic() + lease
                                       if lease else no_deadline)
                return True

            def _finish_departure(worker: _PoolWorker) -> None:
                # In-flight work answered (or there was none): the
                # departure is complete.  Close the connection politely
                # and drop the worker from the pool.
                if worker in states:
                    _retire(worker)
                departing.discard(worker)
                try:
                    worker.conn.send(("close",))
                except _CONN_FAILURES:
                    pass
                self._discard_worker(worker)

            def _rebalance(joined: _PoolWorker) -> None:
                # Pull unsent queued jobs onto a just-joined worker until
                # its outstanding count is within one of the most-loaded
                # donor's.  Only never-sent jobs move (popped off donor
                # queue tails), so exactly-once -- and with it
                # byte-identity -- is untouched.
                while True:
                    donor = None
                    donor_total = -1
                    for candidate, (queue, inflight) in states.items():
                        if candidate is joined or candidate in departing:
                            continue
                        total = len(queue) + len(inflight)
                        if queue and total > donor_total:
                            donor, donor_total = candidate, total
                    jq, jinf = states[joined]
                    if (donor is None
                            or donor_total <= len(jq) + len(jinf) + 1):
                        return
                    jq.append(states[donor][0].pop())
                    stats["rebalanced_jobs"] += 1

            def _admit(spec: str) -> None:
                # Bootstrap a mid-batch joiner through the ordinary warm
                # machinery.  The parent cache does not change while a
                # batch drains (the merge happens after this loop), so
                # the joiner sees exactly the pre-batch state every other
                # worker was synced to -- byte-identity holds.
                worker = self._admit_member(service, spec)
                if worker is None:
                    return
                try:
                    self._sync_worker(service, worker)
                except _CONN_FAILURES:
                    stats["worker_deaths"] += 1
                    self._discard_worker(worker)
                    return
                stats["joins"] += 1
                states[worker] = (deque(), {})
                by_conn[worker.conn] = worker
                self._policy.on_membership_change(joined=(spec,))
                _rebalance(worker)
                if not _top_up(worker):
                    _fail(worker, "connection failed right after joining")

            def _depart(spec: str) -> None:
                for worker in list(states):
                    if self._member_spec(worker) != spec:
                        continue
                    stats["leaves"] += 1
                    departing.add(worker)
                    self._retire_member(spec)
                    self._policy.on_membership_change(left=(spec,))
                    # Unsent queue leftovers move to live workers now (a
                    # plain move -- no second copy exists); in-flight
                    # jobs may still answer before the connection closes,
                    # which is what makes the departure clean.
                    queue, inflight = states[worker]
                    while queue:
                        index = queue.popleft()
                        if index in done or index in missing:
                            continue
                        redispatched.discard(index)
                        target = _reassign(
                            index, worker,
                            f"{self.name} job re-queued off a departing "
                            f"worker",
                            f"{self.name} job stranded on a departing "
                            f"worker; evaluated on parent")
                        if (target is not None and target in states
                                and not _top_up(target)):
                            _fail(target, "connection failed during "
                                          "re-dispatch")
                    if worker in states and not states[worker][1]:
                        _finish_departure(worker)
                    return

            def _membership_pass(index: Optional[int] = None) -> None:
                # Apply queued membership changes: fault-plan rules
                # anchored to the job whose result just arrived, then any
                # live ``join()`` / ``leave()`` requests.
                events: List[Tuple[str, str]] = []
                if index is not None:
                    events.extend(plan.membership_events(index))
                while True:
                    try:
                        events.append(self._membership.popleft())
                    except IndexError:
                        break
                for action, spec in events:
                    if action == "join":
                        _admit(spec)
                    else:
                        _depart(spec)

            def _liveness_pass() -> None:
                now = time.monotonic()
                for worker in list(states):
                    if worker not in states:
                        continue  # failed by a cascading _fail
                    if not worker.alive():
                        _fail(worker, "process died silently")
                        continue
                    if not worker.supports_ping:
                        continue
                    if worker.ping_token is not None:
                        if now - worker.ping_sent_at > self.ping_timeout:
                            _fail(worker,
                                  f"did not answer a liveness ping "
                                  f"within {self.ping_timeout:g}s")
                        continue
                    if now - worker.last_ping_at < self.ping_interval:
                        continue
                    self._ping_counter += 1
                    worker.ping_token = self._ping_counter
                    worker.ping_sent_at = worker.last_ping_at = now
                    stats["pings_sent"] += 1
                    try:
                        worker.conn.send(("ping", worker.ping_token))
                    except _CONN_FAILURES:
                        _fail(worker, "connection failed on liveness "
                                      "ping")

            def _lease_pass() -> None:
                now = time.monotonic()
                for worker in list(states):
                    if worker not in states:
                        continue
                    queue, inflight = states[worker]
                    expired = False
                    for index, deadline in list(inflight.items()):
                        if deadline > now or index in done:
                            continue
                        # Expired lease: the straggler's copy stays
                        # tracked (first result wins either way) but can
                        # only expire once.
                        expired = True
                        stats["lease_expirations"] += 1
                        inflight[index] = no_deadline
                        target = _reassign(
                            index, worker,
                            f"{self.name} job lease expired after "
                            f"{lease:g}s; speculatively re-dispatched",
                            f"{self.name} job lease expired after "
                            f"{lease:g}s; evaluated on parent")
                        if (target is not None and target in states
                                and not _top_up(target)):
                            _fail(target, "connection failed during "
                                          "re-dispatch")
                    if not expired or worker not in states:
                        continue
                    # An expired lease marks this worker a straggler: its
                    # unsent queue leftovers would strand behind it (they
                    # are topped up only after it answers), so hand them
                    # off now.  Unsent means no second copy exists -- a
                    # plain move, not a speculative one.
                    while queue:
                        index = queue.popleft()
                        if index in done or index in missing:
                            continue
                        redispatched.discard(index)
                        target = _reassign(
                            index, worker,
                            f"{self.name} job re-queued off a straggling "
                            f"worker",
                            f"{self.name} job stranded behind a straggling "
                            f"worker; evaluated on parent")
                        if (target is not None and target in states
                                and not _top_up(target)):
                            _fail(target, "connection failed during "
                                          "re-dispatch")

            def _wait_timeout() -> float:
                now = time.monotonic()
                bound = self.ping_interval
                for worker, (queue, inflight) in states.items():
                    if (worker.supports_ping
                            and worker.ping_token is not None):
                        bound = min(bound, worker.ping_sent_at
                                    + self.ping_timeout - now)
                    for deadline in inflight.values():
                        if deadline is not no_deadline:
                            bound = min(bound, deadline - now)
                return min(max(bound, 0.05), self.ping_interval)

            for worker in list(states):
                if worker not in states:
                    continue  # failed by a cascading _fail
                if not _top_up(worker):
                    _fail(worker, "connection failed during dispatch")
                elif not states[worker][1]:  # pragma: no cover - guard
                    _retire(worker, clean=True)  # empty share: idle standby
            _membership_pass()
            while states and pending:
                ready = mp_connection.wait(list(by_conn), _wait_timeout())
                for conn in ready:
                    worker = by_conn.get(conn)
                    if worker is None:
                        continue  # retired earlier in this ready set
                    try:
                        message = conn.recv()
                    except _CONN_FAILURES:
                        _fail(worker, "died mid-batch")
                        continue
                    if message[0] == "pong":
                        worker.ping_token = None
                        stats["pongs_received"] += 1
                        continue
                    queue, inflight = states[worker]
                    index = message[1]
                    inflight.pop(index, None)
                    duplicate = index in done
                    if duplicate:
                        # A speculative copy lost the race: first result
                        # won, this one is discarded without replaying
                        # its accounting a second time.
                        stats["duplicate_results"] += 1
                    elif message[0] == "error":
                        done.add(index)
                        pending.discard(index)
                        missing.pop(index, None)
                        errors.append((index, message[2]))
                    else:
                        done.add(index)
                        pending.discard(index)
                        missing.pop(index, None)
                        payloads.append(message[1:])
                        if message[3] is not None:
                            # Fresh emulation: remember which worker
                            # already holds these artifacts so the next
                            # sync does not ship them back.
                            try:
                                key = service._artifact_key(jobs[index])
                            except (NotImplementedError, TypeError):
                                key = None
                            if key is not None:
                                while len(self._artifact_origin) >= 4096:
                                    self._artifact_origin.pop(
                                        next(iter(self._artifact_origin)))
                                self._artifact_origin[key] = worker
                    if not duplicate:
                        # First result for this index: membership rules
                        # anchored to it (and any queued join/leave
                        # requests) apply now, at a deterministic
                        # protocol point.
                        _membership_pass(index)
                    if worker not in states:
                        continue  # departed/failed during membership
                    if not _top_up(worker):
                        _fail(worker, "connection failed during dispatch")
                    elif worker in departing and not inflight:
                        _finish_departure(worker)
                    elif not queue and not inflight:
                        # Share done: park it on standby so an expiring
                        # lease elsewhere can re-dispatch to it.
                        _retire(worker, clean=True)
                _membership_pass()
                _liveness_pass()
                if lease:
                    _lease_pass()
            # A worker still owing an answer at loop end (its job went to
            # the parent when its lease ran out) cannot return to the
            # pool: the late result would desync the next batch's sync
            # ack.  Discard it; the next warm() tops the pool back up.
            # Workers holding only unsent queue leftovers are clean.
            for worker in list(states):
                if states[worker][1]:
                    stats["stragglers_discarded"] += 1
                    _retire(worker)
                    self._discard_worker(worker)
            for index in sorted(pending):  # pragma: no cover - guard
                if index not in done and index not in missing:
                    reason = f"{self.name} pool exhausted; evaluated on parent"
                    missing[index] = reason
                    fallback_reasons[index] = reason
            # Merge whatever succeeded even when part of the batch failed:
            # workers cached that work in their fork-local copies, so the
            # parent must record it too or the two drift apart.  Merge in
            # input order, not arrival order: near max_entries the merge's
            # put order decides which entry the parent evicts, and a serial
            # run puts in input order.
            payloads.sort(key=lambda payload: payload[0])
            results = _merge_batch(service, jobs, payloads)
            if errors:
                index, detail = errors[0]
                raise BackendWorkerError(
                    f"{self.name} worker failed on job {index}:\n{detail}")
            for index in sorted(missing):
                if index in done:  # pragma: no cover - protocol guard
                    continue
                results[index] = service.predict(jobs[index])
            for index in self._deferred:
                results[index] = service.predict(jobs[index])
            self._deferred = []
            for index, reason in fallback_reasons.items():
                result = results[index]
                if result is not None:
                    result.metadata.setdefault("backend_fallback", reason)
            return results  # type: ignore[return-value]
        finally:
            self._batch_lock.release()


class PersistentBackend(PooledBackend):
    """Long-lived fork-based worker pool with incremental cache shipping."""

    name = "persistent"

    def __init__(self, sync_timeout: Optional[float] = None,
                 lease_timeout: Optional[float] = None,
                 scheduler: Optional[str] = None) -> None:
        super().__init__(sync_timeout=sync_timeout,
                         lease_timeout=lease_timeout, scheduler=scheduler)
        self._fork_context = None
        #: Workers forked so far: numbers workers in spawn order for
        #: ``worker``-scoped fault rules.
        self._spawned = 0

    def _ready(self, service: "PredictionService") -> bool:
        if self._fallback_reason is not None:
            return False
        if self._fork_context is None:
            try:
                self._fork_context = multiprocessing.get_context("fork")
            except ValueError:
                self._fallback_reason = "fork unavailable"
                return False
        return True

    def _top_up(self, service: "PredictionService") -> None:
        """Fork workers up to ``service.max_workers``.

        New workers fork with the parent's *current* cache and provider
        memos inherited copy-on-write, so their sync cursor is the cache's
        current epoch.
        """
        desired = max(int(service.max_workers), 1)
        if desired <= 1 and not self._workers:
            return  # serial degenerate: no pool needed
        while len(self._workers) < desired:
            epoch, kernel_len, collective_len = \
                self._bootstrap_cursor(service)
            parent_conn, child_conn = self._fork_context.Pipe()
            process = self._fork_context.Process(
                target=_pool_worker_main,
                args=(child_conn, service, self._spawned), daemon=True)
            self._spawned += 1
            process.start()
            child_conn.close()
            self._workers.append(_PersistentWorker(
                process, parent_conn, epoch, kernel_len, collective_len))


class SocketBackend(PooledBackend):
    """Multi-host worker pool: the persistent lifecycle over TCP sockets.

    Workers are remote ``repro worker-host`` processes.  There is no fork
    inheritance across machines, so ``warm`` bootstraps each worker by
    shipping the warmed service once -- estimator suite, shared-provider
    memos, host profile and current cache contents travel in a single
    pickled ``("warm", service)`` message -- after a version handshake
    (:mod:`repro.service.wire`).  From then on the worker is
    indistinguishable from a forked one: the same sync deltas, job
    dispatch, result payloads and parent-side input-order merge, so
    results and cache accounting stay byte-identical to a serial run
    (enforced by ``tests/test_backend_conformance.py`` over localhost).

    Worker addresses come from ``PredictionService(backend="socket",
    workers=["host:port", ...])``, the CLI ``--worker-hosts`` flag, or the
    ``REPRO_WORKER_HOSTS`` environment variable (comma-separated), one
    worker per address.  Connections are attempted with capped
    exponential backoff + jitter (``connect_attempts`` tries per warm);
    if *no* address has ever served a worker the warm still raises
    :class:`BackendWorkerError` (misconfiguration should fail fast).
    Once the pool has been up, workers that die are discarded, their
    leased jobs re-dispatch to survivors, and every ``warm`` retries the
    missing addresses -- a restarted ``repro worker-host`` rejoins
    mid-run and re-warms through the ordinary snapshot/delta resync.  A
    protocol-version mismatch always raises
    :class:`~repro.service.wire.WireProtocolError`.
    """

    name = "socket"
    #: Seconds to wait for a TCP connect + handshake per address.
    connect_timeout = 10.0
    #: Seconds a remote worker gets to unpickle the warm payload and ack.
    warm_timeout = 120.0
    #: Reconnect policy: each unreachable address is attempted up to
    #: ``connect_attempts`` times per warm with capped exponential backoff
    #: (base ``connect_backoff`` seconds doubling up to
    #: ``connect_backoff_cap``) plus deterministic per-address jitter, so
    #: a worker host that is restarting -- or briefly partitioned -- is
    #: picked back up instead of failing on the first refusal.
    connect_attempts = 3
    connect_backoff = 0.2
    connect_backoff_cap = 2.0

    def __init__(self, addresses: Optional[Sequence[str]] = None,
                 sync_timeout: Optional[float] = None,
                 lease_timeout: Optional[float] = None,
                 scheduler: Optional[str] = None) -> None:
        super().__init__(sync_timeout=sync_timeout,
                         lease_timeout=lease_timeout, scheduler=scheduler)
        #: Explicit address list (overrides service / environment).
        self._addresses: List[str] = list(addresses or [])
        self._ever_connected = False
        #: Addresses that have served a worker at least once this pool's
        #: lifetime: connecting one again is a rejoin, counted in
        #: ``resilience_stats["reconnects"]``.
        self._served_addresses: set = set()
        #: (address, reason) pairs from the most recent warm's failed
        #: connection attempts (observability; also raised when fatal).
        self.connect_errors: List[Tuple[str, str]] = []

    def _configured_addresses(self, service: "PredictionService"
                              ) -> List[str]:
        if self._addresses:
            return self._addresses
        hosts = getattr(service, "worker_hosts", None)
        if hosts:
            return list(hosts)
        env = os.environ.get("REPRO_WORKER_HOSTS", "")
        return [address.strip() for address in env.split(",")
                if address.strip()]

    def _ready(self, service: "PredictionService") -> bool:
        addresses = self._configured_addresses(service)
        if not addresses:
            raise ValueError(
                "socket backend has no worker hosts: pass "
                "PredictionService(backend='socket', "
                "workers=['host:port', ...]), use the CLI --worker-hosts "
                "flag, or set REPRO_WORKER_HOSTS (start remote workers "
                "with `repro worker-host`)")
        self._addresses = addresses
        return True

    def _connect_with_backoff(self, address: str):
        """Connect to one address, retrying with capped backoff + jitter.

        The jitter is seeded from the address string, so a given
        pool/address pair retries on the same deterministic schedule run
        after run (no wall-clock randomness in tests), while different
        addresses still decorrelate their retry storms.
        """
        from repro.service import wire

        rng = random.Random(f"{self.name}:{address}")
        delay = self.connect_backoff
        attempts = max(int(self.connect_attempts), 1)
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            try:
                return wire.connect(address, timeout=self.connect_timeout)
            except (OSError, EOFError) as exc:
                last_error = exc
                if attempt + 1 < attempts:
                    time.sleep(delay * (0.5 + 0.5 * rng.random()))
                    delay = min(delay * 2.0, self.connect_backoff_cap)
        raise last_error

    def _top_up(self, service: "PredictionService") -> None:
        """Connect (and bootstrap) one worker per not-yet-served address.

        An address whose previous worker was discarded (death, straggler,
        dropped connection) is simply unserved again: the next warm()
        lands back here, reconnects with backoff, and the ordinary
        snapshot/delta sync path re-warms the rejoined worker -- elastic
        rejoin falls out of the same machinery as first contact.
        """
        from repro.service import wire

        served = {worker.address for worker in self._workers}
        failures: List[Tuple[str, str]] = []
        fresh: List[Tuple[str, wire.WireConnection]] = []
        for address in self._addresses:
            if address in served:
                continue
            try:
                # A handshake version mismatch (WireProtocolError, not an
                # OSError) deliberately propagates: that is never a host
                # to silently skip.
                conn = self._connect_with_backoff(address)
            except (OSError, EOFError) as exc:
                failures.append((address, f"{type(exc).__name__}: {exc}"))
                continue
            fresh.append((address, conn))
        if fresh:
            # One cursor and one pickle pass per wire format for the whole
            # fan-out: the payload (trained suite + cache) can be multi-MB,
            # so serialising it per host would dominate multi-host warms.
            # Columnar-capable peers get the trace-artifact columns raw
            # (format 3), older peers the plain pickle; both decode to the
            # same objects.  Cursor read before the pickle: anything put in
            # between is re-shipped by the first delta (idempotent).
            epoch, kernel_len, collective_len = \
                self._bootstrap_cursor(service)
            payloads: Dict[int, bytes] = {}

            def _warm_payload(conn: "wire.WireConnection"
                              ) -> Tuple[bytes, int]:
                fmt = wire.format_for_peer(conn)
                if fmt not in payloads:
                    payloads[fmt] = wire.dumps_for_format(
                        ("warm", service), fmt)
                return payloads[fmt], fmt
        for position, (address, conn) in enumerate(fresh):
            try:
                payload, fmt = _warm_payload(conn)
                conn.send_bytes(payload, fmt)
                if not conn.poll(self.warm_timeout):
                    raise _WorkerUnresponsive(
                        f"worker host {address} did not ack the warm "
                        f"payload within {self.warm_timeout}s")
                ack = conn.recv()
                if ack != ("warmed",):
                    raise wire.WireProtocolError(
                        f"worker host {address} answered {ack!r} to the "
                        f"warm payload, expected ('warmed',)")
            except wire.WireProtocolError:
                conn.close()
                for _, remaining in fresh[position + 1:]:
                    remaining.close()  # raising mid-fan-out must not leak
                raise
            except (OSError, EOFError) as exc:
                conn.close()
                failures.append((address, f"{type(exc).__name__}: {exc}"))
                continue
            if address in self._served_addresses:
                self.resilience_stats["reconnects"] += 1
            self._served_addresses.add(address)
            self._workers.append(_SocketWorker(
                conn, epoch, kernel_len, collective_len, address))
        self.connect_errors = failures
        if self._workers:
            self._ever_connected = True
        elif failures and not self._ever_connected:
            detail = "; ".join(f"{address}: {reason}"
                               for address, reason in failures)
            raise BackendWorkerError(
                f"socket backend could not reach any worker host: {detail}")

    # ------------------------------------------------------------------
    # dynamic membership
    # ------------------------------------------------------------------
    def _member_spec(self, worker: _PoolWorker) -> Optional[str]:
        return getattr(worker, "address", None)

    def _register_member(self, spec: str) -> bool:
        if spec not in self._addresses:
            self._addresses.append(spec)
        return True

    def _retire_member(self, spec: str) -> None:
        # Forget the address so later warms do not reconnect the departed
        # host; ``_served_addresses`` is kept -- if the same host joins
        # again that is a rejoin and counts as a reconnect.
        self._addresses = [address for address in self._addresses
                           if address != spec]

    def _admit_member(self, service: "PredictionService",
                      spec: str) -> Optional[_PoolWorker]:
        """Mid-batch join: connect, handshake and warm one worker host.

        The same bootstrap/snapshot-resync machinery a ``warm()``-time
        (re)connect uses -- the joiner receives the warmed service as of
        the batch's pre-submit state (the parent cache does not change
        while a batch drains), so it is indistinguishable from a worker
        that was present at submit.  Unreachable or misbehaving hosts
        decline the join (recorded in ``connect_errors``) instead of
        failing the batch; a protocol-version mismatch still raises.
        """
        from repro.service import wire

        with self._closed_lock:
            if any(getattr(worker, "address", None) == spec
                   for worker in self._workers):
                return None  # already a member
        try:
            conn = self._connect_with_backoff(spec)
        except (OSError, EOFError) as exc:
            self.connect_errors.append((spec,
                                        f"{type(exc).__name__}: {exc}"))
            return None
        epoch, kernel_len, collective_len = self._bootstrap_cursor(service)
        try:
            fmt = wire.format_for_peer(conn)
            conn.send_bytes(wire.dumps_for_format(("warm", service), fmt),
                            fmt)
            if not conn.poll(self.warm_timeout):
                raise _WorkerUnresponsive(
                    f"worker host {spec} did not ack the warm payload "
                    f"within {self.warm_timeout}s")
            ack = conn.recv()
            if ack != ("warmed",):
                raise wire.WireProtocolError(
                    f"worker host {spec} answered {ack!r} to the warm "
                    f"payload, expected ('warmed',)")
        except wire.WireProtocolError:
            conn.close()
            raise
        except (OSError, EOFError) as exc:
            conn.close()
            self.connect_errors.append((spec,
                                        f"{type(exc).__name__}: {exc}"))
            return None
        worker = _SocketWorker(conn, epoch, kernel_len, collective_len, spec)
        with self._closed_lock:
            if spec not in self._addresses:
                self._addresses.append(spec)
            if spec in self._served_addresses:
                self.resilience_stats["reconnects"] += 1
            self._served_addresses.add(spec)
            self._workers.append(worker)
            self._ever_connected = True
        return worker


_BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
    PersistentBackend.name: PersistentBackend,
    SocketBackend.name: SocketBackend,
}


def get_backend(name: str) -> EvaluationBackend:
    """Instantiate an evaluation backend by name."""
    try:
        return _BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"unknown evaluation backend {name!r}; "
            f"expected one of {sorted(_BACKENDS)}") from None
