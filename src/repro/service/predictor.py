"""The prediction service: cached, parallel trial evaluation.

:class:`PredictionService` is the layer Maya-Search, the benchmarks and the
CLI talk to instead of driving :class:`~repro.core.pipeline.MayaPipeline`
directly.  One service instance is bound to one pipeline (one cluster + one
estimator configuration) and owns:

* an :class:`~repro.service.cache.ArtifactCache` (optionally shared between
  services over the same cluster, e.g. a learned and an oracle pipeline),
* a shared duration provider whose per-shape kernel memo persists across
  trials, and
* a thread pool for batch evaluation (``predict_many``).

Returned results carry ``metadata["service_cache"]`` --
``"prediction"`` (all four stages skipped), ``"artifacts"`` (emulation +
collation reused, estimation + simulation re-run) or ``"miss"`` (cold) --
which the search runner surfaces as trial statuses and cache-hit accounting.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import (
    EmulationArtifacts,
    MayaPipeline,
    PredictionResult,
)
from repro.core.simulator.providers import EstimatedDurationProvider
from repro.hardware.cluster import ClusterSpec
from repro.service.cache import ArtifactCache, CacheStats
from repro.workloads.job import TrainingJob


def _clone_result(result: PredictionResult, cache_level: str) -> PredictionResult:
    """Copy a result so callers can't mutate cached state; tag its origin.

    A prediction-level hit ran no pipeline stages at all, so its clone
    reports empty stage times rather than booking the original trial's
    work again (mirroring how reused artifacts report zero emulation).
    """
    metadata = dict(result.metadata)
    metadata["service_cache"] = cache_level
    stage_times = {} if cache_level == "prediction" else dict(result.stage_times)
    return replace(result, stage_times=stage_times, metadata=metadata)


class PredictionService:
    """Cache-aware, optionally parallel front-end to a Maya pipeline."""

    def __init__(
        self,
        cluster: Optional[ClusterSpec] = None,
        pipeline: Optional[MayaPipeline] = None,
        estimator_mode: str = "learned",
        cache: Optional[ArtifactCache] = None,
        enable_cache: bool = True,
        share_provider: bool = True,
        max_workers: int = 1,
    ) -> None:
        if pipeline is None:
            if cluster is None:
                raise ValueError("either a cluster or a pipeline is required")
            pipeline = MayaPipeline(cluster, estimator_mode=estimator_mode)
        self.pipeline = pipeline
        self.cluster = pipeline.cluster
        self.enable_cache = enable_cache
        self.share_provider = share_provider
        self.max_workers = max(int(max_workers), 1)
        self.cache = cache if cache is not None else ArtifactCache()
        self._provider: Optional[EstimatedDurationProvider] = None
        self._lock = threading.Lock()
        #: Per-artifact-key locks so structurally identical jobs evaluated
        #: concurrently emulate once (the second waits, then hits the cache).
        self._artifact_locks: Dict[Tuple, threading.Lock] = {}

    # ------------------------------------------------------------------
    # shared estimator provider
    # ------------------------------------------------------------------
    def provider(self) -> Optional[EstimatedDurationProvider]:
        """The cluster-wide shared duration provider (None when disabled)."""
        if not self.share_provider:
            return None
        with self._lock:
            if self._provider is None:
                self._provider = self.pipeline.make_provider()
            return self._provider

    def warm(self) -> None:
        """Force estimator training / provider construction up front.

        Called before fanning out to worker threads so they never race the
        lazily built estimator suite.
        """
        if self.share_provider:
            self.provider()
        else:
            _ = self.pipeline.suite

    # ------------------------------------------------------------------
    # cache keys
    # ------------------------------------------------------------------
    def _artifact_key(self, job: TrainingJob) -> Tuple:
        return (job.structural_signature(), self.pipeline.collation_fingerprint())

    def _prediction_key(self, job: TrainingJob) -> Tuple:
        return (job.signature(), self.pipeline.collation_fingerprint(),
                self.pipeline.estimator_fingerprint())

    # ------------------------------------------------------------------
    # cache-aware emulation
    # ------------------------------------------------------------------
    def artifacts_for(self, job: TrainingJob) -> EmulationArtifacts:
        """Emulation + collation artifacts for ``job``, cached structurally."""
        artifacts, _ = self._artifacts_for(job)
        return artifacts

    def _artifacts_for(self, job: TrainingJob) -> Tuple[EmulationArtifacts, bool]:
        if not self.enable_cache:
            return self.pipeline.emulate(job), False
        try:
            key = self._artifact_key(job)
        except (NotImplementedError, TypeError):
            return self.pipeline.emulate(job), False
        # Locks are never dropped (clearing could discard one a thread still
        # holds); growth is bounded by the number of distinct structural
        # keys seen, which a lock object per key is cheap enough for.
        with self._lock:
            key_lock = self._artifact_locks.setdefault(key, threading.Lock())
        with key_lock:
            cached = self.cache.get_artifacts(key)
            if cached is not None:
                return cached, True
            artifacts = self.pipeline.emulate(job)
            self.cache.put_artifacts(key, artifacts)
        return artifacts, False

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(self, job: TrainingJob) -> PredictionResult:
        """Predict ``job`` through the cache + shared provider."""
        if job.validate():
            # Invalid jobs are cheap to reject; never cached.
            return self.pipeline.predict(job)
        if not self.enable_cache:
            result = self.pipeline.predict(job, provider=self.provider())
            result.metadata.setdefault("service_cache", "disabled")
            return result
        try:
            key = self._prediction_key(job)
        except (NotImplementedError, TypeError):
            key = None
        if key is not None:
            cached = self.cache.get_prediction(key)
            if cached is not None:
                return _clone_result(cached, "prediction")
        artifacts, reused = self._artifacts_for(job)
        result = self.pipeline.predict(job, artifacts, provider=self.provider())
        if key is not None:
            self.cache.put_prediction(key, result)
        return _clone_result(result, "artifacts" if reused else "miss")

    def predict_many(self, jobs: Sequence[TrainingJob]) -> List[PredictionResult]:
        """Evaluate a batch of jobs, in parallel when configured.

        Results come back in input order.  Within one batch, jobs with equal
        full signatures are evaluated once; the duplicates resolve through
        the prediction cache afterwards.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        self.warm()

        # In-flight dedup: the first occurrence of each signature runs, the
        # rest replay the cached prediction once it lands.
        leaders: List[int] = []
        followers: List[int] = []
        if self.enable_cache:
            seen: Dict[Tuple, int] = {}
            for index, job in enumerate(jobs):
                try:
                    key = self._prediction_key(job)
                except (NotImplementedError, TypeError):
                    leaders.append(index)
                    continue
                if key in seen:
                    followers.append(index)
                else:
                    seen[key] = index
                    leaders.append(index)
        else:
            leaders = list(range(len(jobs)))

        results: List[Optional[PredictionResult]] = [None] * len(jobs)
        if self.max_workers > 1 and len(leaders) > 1:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                for index, result in zip(
                        leaders,
                        pool.map(self.predict, [jobs[i] for i in leaders])):
                    results[index] = result
        else:
            for index in leaders:
                results[index] = self.predict(jobs[index])
        for index in followers:
            results[index] = self.predict(jobs[index])
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def cache_stats(self) -> Dict[str, float]:
        return self.cache.stats.to_dict()
