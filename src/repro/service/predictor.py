"""The prediction service: cached, parallel trial evaluation.

:class:`PredictionService` is the layer Maya-Search, the benchmarks and the
CLI talk to instead of driving :class:`~repro.core.pipeline.MayaPipeline`
directly.  One service instance is bound to one pipeline (one cluster + one
estimator configuration) and owns:

* an :class:`~repro.service.cache.ArtifactCache` (optionally shared between
  services over the same cluster, e.g. a learned and an oracle pipeline),
* a shared duration provider whose per-shape kernel memo persists across
  trials, and
* an evaluation backend for batches (``predict_many``): ``serial``,
  ``thread``, fork-per-batch ``process``, the long-lived ``persistent``
  worker pool, or the multi-host ``socket`` pool evaluating on remote
  ``repro worker-host`` processes (see :mod:`repro.service.backends`);
  all five produce identical results.

The service owns its backend instance and exposes the backend lifecycle:
``warm()`` acquires long-lived resources (estimator suite, shared
provider and -- for the pooled backends -- the worker pool itself, forked
locally or bootstrapped over TCP), ``close()`` releases them, and the
service is a context manager (``with PredictionService(...) as
service:``) so pools never outlive their owner.  A service is picklable
(:meth:`PredictionService.__getstate__`): that is how the socket backend
ships a warmed service to its worker hosts.

Returned results carry ``metadata["service_cache"]`` --
``"prediction"`` (all four stages skipped), ``"artifacts"`` (emulation +
collation reused, estimation + simulation re-run) or ``"miss"`` (cold) --
which the search runner surfaces as trial statuses and cache-hit accounting.
``"artifacts"``-level results additionally carry
``metadata["artifact_tier"]`` (``"memory"`` or ``"store"``) naming the
cache tier that served the reuse; with ``store_dir=`` the service sits on
a disk-backed :class:`~repro.service.store.ArtifactStore` shared across
processes, so a fresh service warm-starts from artifacts earlier runs
persisted.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import (
    EmulationArtifacts,
    MayaPipeline,
    PredictionResult,
)
from repro.core.simulator.providers import EstimatedDurationProvider
from repro.hardware.cluster import ClusterSpec
from repro.service.backends import (
    BACKEND_NAMES,
    EvaluationBackend,
    get_backend,
    validate_timeout,
)
from repro.service.cache import ArtifactCache, CacheStats
from repro.service.scheduling import validate_scheduler
from repro.workloads.job import TrainingJob


def _clone_result(result: PredictionResult, cache_level: str,
                  tier: Optional[str] = None) -> PredictionResult:
    """Copy a result so callers can't mutate cached state; tag its origin.

    A prediction-level hit ran no pipeline stages at all, so its clone
    reports empty stage times rather than booking the original trial's
    work again (mirroring how reused artifacts report zero emulation).

    ``tier`` labels which cache tier satisfied an ``"artifacts"``-level
    hit (``"memory"`` or ``"store"``); any stale label inherited from a
    cached result (e.g. one seeded by a pooled merge) is dropped so the
    tag always describes *this* resolution.
    """
    metadata = dict(result.metadata)
    metadata["service_cache"] = cache_level
    if tier is not None:
        metadata["artifact_tier"] = tier
    else:
        metadata.pop("artifact_tier", None)
    stage_times = {} if cache_level == "prediction" else dict(result.stage_times)
    return replace(result, stage_times=stage_times, metadata=metadata)


class PredictionService:
    """Cache-aware, optionally parallel front-end to a Maya pipeline."""

    def __init__(
        self,
        cluster: Optional[ClusterSpec] = None,
        pipeline: Optional[MayaPipeline] = None,
        estimator_mode: str = "learned",
        cache: Optional[ArtifactCache] = None,
        enable_cache: bool = True,
        share_provider: bool = True,
        max_workers: int = 1,
        backend: str = "thread",
        workers: Optional[Sequence[str]] = None,
        sync_timeout: Optional[float] = None,
        lease_timeout: Optional[float] = None,
        store_dir: Optional[str] = None,
        scheduler: Optional[str] = None,
    ) -> None:
        if pipeline is None:
            if cluster is None:
                raise ValueError("either a cluster or a pipeline is required")
            pipeline = MayaPipeline(cluster, estimator_mode=estimator_mode)
        self.pipeline = pipeline
        self.cluster = pipeline.cluster
        self.enable_cache = enable_cache
        self.share_provider = share_provider
        self.max_workers = max(int(max_workers), 1)
        #: Remote worker addresses (``host:port`` of running ``repro
        #: worker-host`` processes) for the ``socket`` backend; ``None``
        #: falls back to the ``REPRO_WORKER_HOSTS`` environment variable.
        #: Ignored by the in-process backends.
        self.worker_hosts: Optional[List[str]] = (
            list(workers) if workers else None)
        #: Pooled-backend timeout overrides (``None`` leaves the backend
        #: to its own resolution: ``REPRO_SYNC_TIMEOUT`` /
        #: ``REPRO_LEASE_TIMEOUT`` env vars, then class defaults).
        #: Validated eagerly so a bad CLI/constructor value fails here,
        #: not mid-batch; must be set before the backend property below
        #: instantiates (and configures) the backend.
        self.sync_timeout: Optional[float] = (
            None if sync_timeout is None
            else validate_timeout("sync_timeout", sync_timeout))
        self.lease_timeout: Optional[float] = (
            None if lease_timeout is None
            else validate_timeout("lease_timeout", lease_timeout,
                                  allow_zero=True))
        #: Pooled-backend placement policy override ("round_robin",
        #: "least_loaded" or "locality"; ``None`` leaves the backend to
        #: its own resolution: ``REPRO_SCHEDULER``, then round_robin).
        #: Validated eagerly, like the timeouts above.
        self.scheduler: Optional[str] = (
            None if scheduler is None else validate_scheduler(scheduler))
        #: Batch-evaluation strategy ("serial", "thread", "process",
        #: "persistent" or "socket"); validated by the property setter,
        #: which also owns the backend instance's lifecycle.
        self._backend_impl: Optional[EvaluationBackend] = None
        self.backend = backend
        self.cache = cache if cache is not None else ArtifactCache()
        #: Root of the disk-backed artifact store this service attached
        #: (``None`` = memory-only caching).  The store itself lives on
        #: the cache (:attr:`ArtifactCache.store`) so services sharing a
        #: cache share its cold tier too.
        self.store_dir: Optional[str] = None
        if store_dir is not None:
            self.attach_store(store_dir)
        self._provider: Optional[EstimatedDurationProvider] = None
        self._lock = threading.Lock()
        #: Per-artifact-key locks so structurally identical jobs evaluated
        #: concurrently emulate once (the second waits, then hits the cache).
        self._artifact_locks: Dict[Tuple, threading.Lock] = {}
        #: Aggregate throughput counters surfaced by the CLI / benchmarks.
        self._throughput: Dict[str, float] = {
            "batches": 0, "trials": 0, "batch_wall_s": 0.0,
            "simulated_events": 0, "sim_wall_s": 0.0,
        }

    # ------------------------------------------------------------------
    # evaluation backend
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Name of the batch-evaluation backend used by ``predict_many``."""
        return self._backend

    @backend.setter
    def backend(self, name: str) -> None:
        if name not in BACKEND_NAMES:
            raise ValueError(f"unknown evaluation backend {name!r}; "
                             f"expected one of {sorted(BACKEND_NAMES)}")
        if self._backend_impl is not None:
            if self._backend_impl.name == name:
                return
            # Switching strategies releases the old backend's resources
            # (e.g. a persistent pool) before the new one exists.
            self._backend_impl.close()
        self._backend = name
        self._backend_impl = get_backend(name)
        self._configure_backend(self._backend_impl)

    def _configure_backend(self, impl: EvaluationBackend) -> None:
        """Apply service-level overrides to a pooled backend."""
        if getattr(self, "sync_timeout", None) is not None and \
                hasattr(impl, "sync_timeout"):
            impl.sync_timeout = self.sync_timeout
        if getattr(self, "lease_timeout", None) is not None and \
                hasattr(impl, "lease_timeout"):
            impl.lease_timeout = self.lease_timeout
        if getattr(self, "scheduler", None) is not None and \
                hasattr(impl, "set_scheduler"):
            impl.set_scheduler(self.scheduler)

    @property
    def backend_impl(self) -> EvaluationBackend:
        """The live backend instance (stateful for ``persistent``)."""
        return self._backend_impl

    # ------------------------------------------------------------------
    # tiered artifact store
    # ------------------------------------------------------------------
    @property
    def store(self):
        """The cache's disk-backed cold tier, or ``None``."""
        return getattr(self.cache, "store", None)

    def attach_store(self, store_dir) -> None:
        """Attach (or create) the disk store at ``store_dir``.

        Raises :class:`~repro.service.store.StoreFormatError` when the
        directory was written by an incompatible ``repro`` -- attaching
        must refuse-and-report, never silently misread.  A cache that
        already has a store keeps it (shared-cache services attach once).
        """
        from repro.service.store import ArtifactStore

        self.store_dir = str(store_dir)
        if getattr(self.cache, "store", None) is None:
            self.cache.store = ArtifactStore(store_dir)

    def store_stats(self) -> Optional[Dict[str, object]]:
        """Disk-store entry/size/op counters, or ``None`` when detached."""
        store = self.store
        return None if store is None else store.stats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (worker pools); idempotent."""
        if self._backend_impl is not None:
            self._backend_impl.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # serialisation (socket-backend worker bootstrap)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Pickle support for shipping a warmed service to a worker host.

        Locks cannot cross process boundaries and the backend instance
        (with its pool of pipes or sockets) belongs to the parent, so both
        are dropped; the unpickled copy evaluates serially -- exactly what
        a pool worker should do.  Everything that makes predictions equal
        (pipeline + trained estimator suite, shared provider memos, cache
        contents, config flags) travels as-is.

        The artifact store never travels: it wraps process-local paths
        and file handles (the cache's own ``__getstate__`` leaves it
        behind), and ``store_dir`` is cleared because the parent's path
        means nothing on a remote worker host -- each receiving process
        attaches its own store (``--store-dir`` / ``REPRO_STORE_DIR``).
        """
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_artifact_locks"] = {}
        state["_backend_impl"] = None
        state["_backend"] = "serial"
        state["worker_hosts"] = None
        state["store_dir"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._artifact_locks = {}
        self._backend_impl = get_backend(self._backend)

    # ------------------------------------------------------------------
    # shared estimator provider
    # ------------------------------------------------------------------
    def provider(self) -> Optional[EstimatedDurationProvider]:
        """The cluster-wide shared duration provider (None when disabled)."""
        if not self.share_provider:
            return None
        with self._lock:
            if self._provider is None:
                self._provider = self.pipeline.make_provider()
            return self._provider

    def warm(self) -> None:
        """Force estimator training / provider construction up front, then
        let the backend acquire its long-lived resources.

        Ordering matters: the persistent (and process) pools fork *after*
        the estimator suite exists, so workers inherit the trained state
        instead of each training their own copy.
        """
        self._warm_pipeline()
        self._backend_impl.warm(self)

    def _warm_pipeline(self) -> None:
        """Estimator/provider warm-up only (no backend resources)."""
        if self.share_provider:
            self.provider()
        else:
            _ = self.pipeline.suite

    # ------------------------------------------------------------------
    # cache keys
    # ------------------------------------------------------------------
    def _artifact_key(self, job: TrainingJob) -> Tuple:
        return (job.structural_signature(), self.pipeline.collation_fingerprint())

    def _prediction_key(self, job: TrainingJob) -> Tuple:
        return (job.signature(), self.pipeline.collation_fingerprint(),
                self.pipeline.estimator_fingerprint())

    def request_key(self, job: TrainingJob) -> Optional[Tuple]:
        """Public prediction-identity key, or ``None`` when unkeyable.

        Two jobs with equal keys produce byte-identical predictions, so a
        multiplexing layer (the prediction server) can coalesce them into
        one evaluation.  ``None`` (unhashable / unsigned job types) means
        "never coalesce".
        """
        try:
            return self._prediction_key(job)
        except (NotImplementedError, TypeError):
            return None

    # ------------------------------------------------------------------
    # cache-aware emulation
    # ------------------------------------------------------------------
    def artifacts_for(self, job: TrainingJob) -> EmulationArtifacts:
        """Emulation + collation artifacts for ``job``, cached structurally."""
        artifacts, _ = self._artifacts_for(job)
        return artifacts

    def _artifacts_for(self, job: TrainingJob
                       ) -> Tuple[EmulationArtifacts, Optional[str]]:
        """Artifacts plus the cache tier that served them.

        The second element is ``"memory"`` / ``"store"`` for hits and
        ``None`` for a fresh (or uncacheable) emulation.
        """
        if not self.enable_cache:
            return self.pipeline.emulate(job), None
        try:
            key = self._artifact_key(job)
        except (NotImplementedError, TypeError):
            return self.pipeline.emulate(job), None
        # Locks are never dropped (clearing could discard one a thread still
        # holds); growth is bounded by the number of distinct structural
        # keys seen, which a lock object per key is cheap enough for.
        with self._lock:
            key_lock = self._artifact_locks.setdefault(key, threading.Lock())
        with key_lock:
            cached, tier = self.cache.lookup_artifacts(key)
            if cached is not None:
                return cached, tier
            artifacts = self.pipeline.emulate(job)
            self.cache.put_artifacts(key, artifacts)
        return artifacts, None

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(self, job: TrainingJob) -> PredictionResult:
        """Predict ``job`` through the cache + shared provider."""
        if job.validate():
            # Invalid jobs are cheap to reject; never cached.
            return self.pipeline.predict(job)
        if not self.enable_cache:
            result = self.pipeline.predict(job, provider=self.provider())
            result.metadata.setdefault("service_cache", "disabled")
            return result
        try:
            key = self._prediction_key(job)
        except (NotImplementedError, TypeError):
            key = None
        if key is not None:
            cached = self.cache.get_prediction(key)
            if cached is not None:
                return _clone_result(cached, "prediction")
        artifacts, tier = self._artifacts_for(job)
        result = self.pipeline.predict(job, artifacts, provider=self.provider())
        if key is not None:
            self.cache.put_prediction(key, result)
        return _clone_result(result, "artifacts" if tier else "miss", tier)

    def predict_many(self, jobs: Sequence[TrainingJob]) -> List[PredictionResult]:
        """Evaluate a batch of jobs through the configured backend.

        Results come back in input order.  Within one batch, jobs with equal
        full signatures are evaluated once; the duplicates resolve through
        the prediction cache afterwards.  All backends (``serial``,
        ``thread``, ``process``, ``persistent``, ``socket``) produce
        identical results -- only wall-clock behaviour differs (the
        conformance contract of ``tests/backend_conformance.py``).
        """
        jobs = list(jobs)
        if not jobs:
            return []
        self.warm()

        # In-flight dedup: the first occurrence of each signature runs, the
        # rest replay the cached prediction once it lands.
        leaders: List[int] = []
        leader_keys: Dict[int, Tuple] = {}
        followers: List[int] = []
        if self.enable_cache:
            seen: Dict[Tuple, int] = {}
            for index, job in enumerate(jobs):
                try:
                    key = self._prediction_key(job)
                except (NotImplementedError, TypeError):
                    leaders.append(index)
                    continue
                if key in seen:
                    followers.append(index)
                else:
                    seen[key] = index
                    leaders.append(index)
                    leader_keys[index] = key
        else:
            leaders = list(range(len(jobs)))

        start = time.perf_counter()
        results: List[Optional[PredictionResult]] = [None] * len(jobs)
        # Resolve prediction-level hits on the calling thread: no point
        # shipping a trial to a worker (or forking one) just to read the
        # cache the worker inherited from us anyway.
        dispatch: List[int] = []
        for index in leaders:
            key = leader_keys.get(index)
            if key is None or jobs[index].validate():
                dispatch.append(index)
                continue
            # Peek first: a miss here must not be counted (the evaluating
            # worker's own lookup will count it); a hit re-reads through
            # the counted path.
            cached = (self.cache.get_prediction(key)
                      if self.cache.peek_prediction(key) is not None else None)
            if cached is not None:
                results[index] = _clone_result(cached, "prediction")
            else:
                dispatch.append(index)
        if dispatch:
            # Stateless backends get a fresh instance per batch so
            # concurrent predict_many calls never share submit/drain state;
            # the persistent backend reuses its pool (and serialises
            # batches behind its own lock).
            backend = (self._backend_impl if self._backend_impl.persistent
                       else get_backend(self.backend))
            for index, result in zip(
                    dispatch,
                    backend.evaluate(self, [jobs[i] for i in dispatch])):
                results[index] = result
        for index in followers:
            results[index] = self.predict(jobs[index])
        self._record_throughput([results[i] for i in leaders],
                                time.perf_counter() - start)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def cache_stats(self) -> Dict[str, float]:
        return self.cache.stats.to_dict()

    def resilience_stats(self) -> Dict[str, int]:
        """The backend's fault-handling counters (empty for non-pooled)."""
        return dict(getattr(self._backend_impl, "resilience_stats", None)
                    or {})

    def _record_throughput(self, leader_results: Sequence[PredictionResult],
                           batch_wall: float) -> None:
        """Fold one batch's simulation counters into the aggregate stats.

        Prediction-level cache hits ran no simulation this call, so their
        (reused) report counters are excluded.
        """
        events = 0
        sim_wall = 0.0
        for result in leader_results:
            if result is None or result.report is None:
                continue
            if result.metadata.get("service_cache") == "prediction":
                continue
            metadata = result.report.metadata
            events += int(metadata.get("processed_events", 0) or 0)
            sim_wall += float(metadata.get("wall_time_s", 0.0) or 0.0)
        with self._lock:
            throughput = self._throughput
            throughput["batches"] += 1
            throughput["trials"] += len(leader_results)
            throughput["batch_wall_s"] += batch_wall
            throughput["simulated_events"] += events
            throughput["sim_wall_s"] += sim_wall

    def throughput_stats(self) -> Dict[str, object]:
        """Aggregate backend / throughput statistics for `predict_many`."""
        with self._lock:
            throughput = dict(self._throughput)
        batch_wall = throughput["batch_wall_s"]
        sim_wall = throughput["sim_wall_s"]
        throughput["backend"] = self.backend
        throughput["workers"] = self.max_workers
        throughput["trials_per_sec"] = (
            throughput["trials"] / batch_wall if batch_wall > 0.0 else 0.0)
        throughput["events_per_sec"] = (
            throughput["simulated_events"] / sim_wall if sim_wall > 0.0
            else 0.0)
        return throughput
