"""Disk-backed, content-addressed cold tier of the artifact cache.

:class:`ArtifactStore` persists :class:`~repro.core.pipeline.EmulationArtifacts`
under a *store directory* so the expensive emulation + collation work one
process pays survives into every later ``repro search`` / ``compare`` /
``serve`` invocation -- and so a fleet of service processes on one
filesystem shares a single artifact corpus.  It is the cold tier beneath
the in-memory :class:`~repro.service.cache.ArtifactCache`: memory misses
fall through to :meth:`get`, fresh puts write through via :meth:`put`.

Layout (``store_dir/``)::

    store-format.json             # {"store_format": 1, "protocol": 1}
    objects/<dd>/<digest>.art     # one entry per artifact key

Entries are **content-addressed**: the filename digest is the SHA-256 of
``repr(key)``, where keys are the same ``(structural_signature,
collation_fingerprint)`` tuples the in-memory artifact level uses.  Keys
are tuples of primitives, so their ``repr`` is deterministic across
processes and Python runs -- two processes deriving the same key address
the same file, and a concurrent double-write is harmless (last writer
wins with equivalent content).

Entry file format::

    b"MAYS" | fmt:1 byte | length:8 bytes BE | payload | sha256 trailer

The payload is the pickled ``(key, artifacts)`` pair serialised by the
**wire encoders** (:func:`repro.service.wire.dumps_columnar` where numpy
is available, else :func:`~repro.service.wire.dumps`): an on-disk entry
holds the same bytes the socket backend would ship for that artifact,
which is what lets pooled workers resolve :class:`StoreRef` markers from
disk instead of receiving snapshot payloads, and sets up mmap-able
column files later.  The trailer is the SHA-256 of header + payload.

Durability rules:

* **Atomic writes.**  Entries are written to a uniquely named temp file
  in the same directory, flushed + fsynced, then published with
  ``os.replace``.  Readers therefore only ever see absent or complete
  files; interleaved writers cannot corrupt an entry.
* **Partial/corrupt files are data loss, never errors.**  A truncated
  file (crash mid-write before the rename -- or a hand-truncated final
  file), a checksum mismatch, or garbage bytes make :meth:`get` return
  ``None`` (a plain miss) and bump the ``corrupt`` counter.
  :meth:`verify` re-checksums every entry and can quarantine bad files
  (renamed to ``*.corrupt``) so they stop being rescanned.
* **Versioning.**  The store directory carries a ``store-format.json``
  stamp with the store format *and* the wire protocol version; opening a
  store written by an incompatible ``repro`` refuses with
  :class:`StoreFormatError` naming both sides (never silently misreads).

Eviction is size-budgeted LRU by file mtime (:meth:`gc`); reads touch
mtime so warm entries survive.  A store object holds no open file
descriptors between calls and is never picklable -- the hot tier's
``__getstate__`` drops it, and worker processes attach their own
(:mod:`repro.service.worker_host` reads ``--store-dir`` /
``REPRO_STORE_DIR``).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

#: On-disk entry format version.  Bump on any incompatible change to the
#: entry layout or the key scheme; old stores are then refused, not
#: misread.
STORE_FORMAT = 1

#: First bytes of every entry file ("MAYa Store"; the wire frames use
#: b"MAYA", a store file is deliberately not a valid wire frame).
ENTRY_MAGIC = b"MAYS"

#: fixed-size entry header: magic, payload format byte (the wire format
#: the payload was encoded with), payload length.
_ENTRY_HEADER = struct.Struct(">4sBQ")

#: sha256 digest size of the integrity trailer.
_TRAILER_LEN = hashlib.sha256().digest_size

#: Name of the version stamp at the store root.
FORMAT_FILE = "store-format.json"

#: Environment variable the CLI / worker hosts read for a default store
#: directory (the fleet-wide "one shared store" switch).
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: Default size budget for :meth:`ArtifactStore.gc` (256 MiB).
DEFAULT_SIZE_BUDGET = 256 * 1024 * 1024


class StoreError(RuntimeError):
    """A store operation failed in a way the caller must hear about."""


class StoreFormatError(StoreError):
    """The store directory was written by an incompatible ``repro``."""


class StoreRef:
    """Marker shipped in sync deltas instead of artifact payloads.

    A parent syncing a worker that shares its store (a forked
    ``persistent`` worker) replaces each store-held entry's value with a
    ``StoreRef``; the worker resolves it from disk, and acks a
    ``sync-miss`` for any key a concurrent ``gc`` removed underneath it
    (the parent then re-ships those entries inline).  Deliberately tiny
    and pickle-friendly: the whole point is not shipping the payload.
    """

    __slots__ = ("key",)

    def __init__(self, key: Tuple) -> None:
        self.key = key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StoreRef({self.key!r})"

    def __getstate__(self):
        return self.key

    def __setstate__(self, key):
        self.key = key


def key_digest(key: Tuple) -> str:
    """Content address of ``key``: SHA-256 of its deterministic repr."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class ArtifactStore:
    """Disk-backed, content-addressed artifact store (cold cache tier).

    Thread-safe; safe to share across processes pointing at one
    directory (atomic-rename writes, content-addressed last-writer-wins).
    Never picklable: the owning cache drops it on ``__getstate__`` and
    each process attaches its own instance.
    """

    def __init__(self, root, size_budget: int = DEFAULT_SIZE_BUDGET,
                 create: bool = True) -> None:
        self.root = Path(root)
        if size_budget < 1:
            raise ValueError("size_budget must be at least 1 byte")
        self.size_budget = int(size_budget)
        self._lock = threading.Lock()
        self._tmp_counter = 0
        #: Per-process operation counters (surfaced by ``repro cache
        #: stats``); deliberately *not* part of :class:`CacheStats` --
        #: conformance compares cache accounting, not disk traffic.
        self.counters: Dict[str, int] = {
            "gets": 0, "hits": 0, "misses": 0, "puts": 0,
            "put_skips": 0, "corrupt": 0, "evicted": 0,
        }
        self._objects = self.root / "objects"
        if create:
            self._objects.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise StoreError(f"store directory {self.root} does not exist")
        self._check_format(create)

    # ------------------------------------------------------------------
    # format stamp
    # ------------------------------------------------------------------
    def _format_stamp(self) -> Dict[str, int]:
        from repro.service import wire
        return {"store_format": STORE_FORMAT, "protocol": wire.PROTOCOL}

    def _check_format(self, create: bool) -> None:
        """Stamp a fresh store; refuse an incompatible existing one."""
        stamp_path = self.root / FORMAT_FILE
        expected = self._format_stamp()
        try:
            recorded = json.loads(stamp_path.read_text())
        except FileNotFoundError:
            if not create:
                raise StoreFormatError(
                    f"{self.root} has no {FORMAT_FILE}; not an artifact "
                    f"store (or one from before versioning)")
            # First writer wins; a concurrent stamp of the same content is
            # fine (os.replace), and a mismatched one is caught next open.
            self._atomic_write(stamp_path,
                               json.dumps(expected).encode("utf-8"))
            return
        except (OSError, ValueError) as exc:
            raise StoreFormatError(
                f"unreadable store format stamp {stamp_path}: {exc}")
        if not isinstance(recorded, dict) or recorded != expected:
            raise StoreFormatError(
                f"store {self.root} was written with format "
                f"{recorded!r}, but this repro speaks {expected!r}; "
                f"point --store-dir at a fresh directory or upgrade the "
                f"older side")

    # ------------------------------------------------------------------
    # paths / encoding
    # ------------------------------------------------------------------
    def _entry_path(self, key: Tuple) -> Path:
        digest = key_digest(key)
        return self._objects / digest[:2] / f"{digest}.art"

    def contains(self, key: Tuple) -> bool:
        """Whether an entry file exists (no integrity check: readers
        handle corruption as a miss anyway)."""
        try:
            return self._entry_path(key).is_file()
        except (TypeError, ValueError):
            return False

    def _encode(self, key: Tuple, artifacts) -> bytes:
        """Serialise one entry: wire-encoded payload + checksummed frame.

        The payload bytes are exactly what the socket backend would ship
        for this artifact (columnar where numpy is available).
        """
        from repro.core.columnar import HAVE_NUMPY
        from repro.service import wire
        if HAVE_NUMPY:
            fmt = wire._FORMAT_PICKLE_COLUMNAR
            payload = wire.dumps_columnar((key, artifacts))
        else:
            fmt = wire._FORMAT_PICKLE
            payload = wire.dumps((key, artifacts))
        body = _ENTRY_HEADER.pack(ENTRY_MAGIC, fmt, len(payload)) + payload
        return body + hashlib.sha256(body).digest()

    def _decode(self, data: bytes):
        """Decode + integrity-check one entry file; None when invalid."""
        from repro.service import wire
        if len(data) < _ENTRY_HEADER.size + _TRAILER_LEN:
            return None
        magic, fmt, length = _ENTRY_HEADER.unpack_from(data)
        if magic != ENTRY_MAGIC:
            return None
        body_len = _ENTRY_HEADER.size + length
        if len(data) != body_len + _TRAILER_LEN:
            return None
        body, trailer = data[:body_len], data[body_len:]
        if hashlib.sha256(body).digest() != trailer:
            return None
        try:
            return wire.decode_payload(fmt, data[_ENTRY_HEADER.size:body_len])
        except Exception:
            return None

    def _atomic_write(self, path: Path, data: bytes) -> None:
        """temp file + fsync + ``os.replace``: readers never see partials."""
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self._tmp_counter += 1
            counter = self._tmp_counter
        tmp = path.parent / f".tmp-{os.getpid()}-{counter}-{path.name}"
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------
    def get(self, key: Tuple):
        """The stored artifacts for ``key``, or ``None``.

        Corrupt / partial files count as misses (and bump ``corrupt``);
        a hit touches the entry's mtime so LRU ``gc`` keeps warm entries.
        """
        self.counters["gets"] += 1
        path = self._entry_path(key)
        try:
            data = path.read_bytes()
        except (FileNotFoundError, OSError):
            self.counters["misses"] += 1
            return None
        decoded = self._decode(data)
        if decoded is None:
            self.counters["corrupt"] += 1
            self.counters["misses"] += 1
            return None
        stored_key, artifacts = decoded
        if stored_key != key:  # digest collision / tampered file
            self.counters["corrupt"] += 1
            self.counters["misses"] += 1
            return None
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry raced away
            pass
        self.counters["hits"] += 1
        return artifacts

    def put(self, key: Tuple, artifacts) -> bool:
        """Persist ``artifacts`` under ``key``; True when bytes were written.

        An existing entry is left in place (content-addressed: an entry
        for the same key is equivalent), so steady-state warm runs do no
        write IO.  Unpicklable artifacts are skipped silently -- the
        store is an optimisation, never a correctness dependency.
        """
        path = self._entry_path(key)
        if path.is_file():
            self.counters["put_skips"] += 1
            return False
        try:
            data = self._encode(key, artifacts)
        except Exception:
            self.counters["put_skips"] += 1
            return False
        self._atomic_write(path, data)
        self.counters["puts"] += 1
        return True

    # ------------------------------------------------------------------
    # maintenance: scan / stats / gc / verify
    # ------------------------------------------------------------------
    def _iter_entries(self) -> Iterator[Path]:
        """Every published entry file (temp and quarantined files skipped)."""
        if not self._objects.is_dir():
            return
        for bucket in sorted(self._objects.iterdir()):
            if not bucket.is_dir():
                continue
            for path in sorted(bucket.iterdir()):
                if path.suffix == ".art" and not path.name.startswith("."):
                    yield path

    def stats(self) -> Dict[str, object]:
        """Entry count + on-disk bytes, plus this process's op counters."""
        entries = 0
        total_bytes = 0
        for path in self._iter_entries():
            try:
                total_bytes += path.stat().st_size
            except OSError:  # pragma: no cover - entry raced away
                continue
            entries += 1
        return {
            "store_dir": str(self.root),
            "store_format": STORE_FORMAT,
            "entries": entries,
            "total_bytes": total_bytes,
            "size_budget_bytes": self.size_budget,
            "counters": dict(self.counters),
        }

    def gc(self, size_budget: Optional[int] = None) -> Dict[str, int]:
        """Evict oldest-mtime entries until the store fits the budget.

        Also sweeps orphaned temp files (crash leftovers).  Safe against
        concurrent readers/writers: deleting a file a reader just opened
        is fine (POSIX), and a concurrently re-put entry simply survives
        with a fresh mtime.
        """
        budget = self.size_budget if size_budget is None else int(size_budget)
        if budget < 0:
            raise ValueError("size_budget must be >= 0")
        removed = 0
        freed = 0
        aged: List[Tuple[float, int, Path]] = []
        total = 0
        if self._objects.is_dir():
            for bucket in list(self._objects.iterdir()):
                if not bucket.is_dir():
                    continue
                for path in list(bucket.iterdir()):
                    if path.name.startswith(".tmp-"):
                        # Crash leftover: a live writer holds its temp file
                        # only for the instant before os.replace.
                        try:
                            size = path.stat().st_size
                            path.unlink()
                            removed += 1
                            freed += size
                        except OSError:  # pragma: no cover - raced away
                            pass
                        continue
                    if path.suffix != ".art":
                        continue
                    try:
                        stat = path.stat()
                    except OSError:  # pragma: no cover - raced away
                        continue
                    aged.append((stat.st_mtime, stat.st_size, path))
                    total += stat.st_size
        aged.sort(key=lambda item: (item[0], item[2].name))
        for mtime, size, path in aged:
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced away
                continue
            total -= size
            removed += 1
            freed += size
            self.counters["evicted"] += 1
        return {"removed": removed, "freed_bytes": freed,
                "remaining_bytes": total}

    def verify(self, quarantine: bool = False) -> Dict[str, object]:
        """Re-checksum every entry; optionally quarantine corrupt files.

        Quarantined files are renamed to ``<name>.corrupt`` so scans and
        lookups stop touching them but the bytes stay inspectable.
        """
        checked = 0
        corrupt: List[str] = []
        quarantined: List[str] = []
        for path in list(self._iter_entries()):
            checked += 1
            try:
                data = path.read_bytes()
            except OSError:  # pragma: no cover - entry raced away
                continue
            if self._valid_frame(data):
                continue
            corrupt.append(path.name)
            if quarantine:
                try:
                    path.rename(path.with_suffix(".art.corrupt"))
                    quarantined.append(path.name)
                except OSError:  # pragma: no cover - raced away
                    pass
        return {"checked": checked, "corrupt": sorted(corrupt),
                "quarantined": sorted(quarantined)}

    @staticmethod
    def _valid_frame(data: bytes) -> bool:
        """Structural + checksum validity (no unpickling: ``verify`` must
        be safe on stores written by other processes)."""
        if len(data) < _ENTRY_HEADER.size + _TRAILER_LEN:
            return False
        magic, _, length = _ENTRY_HEADER.unpack_from(data)
        if magic != ENTRY_MAGIC:
            return False
        body_len = _ENTRY_HEADER.size + length
        if len(data) != body_len + _TRAILER_LEN:
            return False
        return hashlib.sha256(data[:body_len]).digest() == data[body_len:]

    # ------------------------------------------------------------------
    # pickling: refused
    # ------------------------------------------------------------------
    def __reduce__(self):
        raise TypeError(
            "ArtifactStore is not picklable: each process must attach its "
            "own store (see PredictionService(store_dir=...), "
            "`repro worker-host --store-dir` and REPRO_STORE_DIR)")
