"""Content-addressed caching of emulation artifacts and predictions.

The cache has two levels, both keyed on job signatures (see
:meth:`repro.workloads.job.TrainingJob.structural_signature`):

* **artifact level** -- :class:`~repro.core.pipeline.EmulationArtifacts`
  keyed by the *structural* signature (the knob subset that determines the
  trace shape) plus the pipeline's collation fingerprint.  A hit skips
  emulation and collation entirely; only estimation and simulation re-run.
* **prediction level** -- finished
  :class:`~repro.core.pipeline.PredictionResult` objects keyed by the *full*
  signature plus the estimator fingerprint.  A hit skips all four stages
  (the paper's trial result reuse).

Both levels are safe to share across threads; the service's parallel
``predict_many`` path and multiple services (e.g. a learned and an oracle
pipeline over the same cluster) can point at one cache instance so
structurally identical jobs emulate exactly once.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.core.pipeline import EmulationArtifacts, PredictionResult


@dataclass
class CacheStats:
    """Counters surfaced by benchmarks, ``SearchResult`` and the CLI."""

    artifact_hits: int = 0
    artifact_misses: int = 0
    prediction_hits: int = 0
    prediction_misses: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups across both cache levels."""
        return (self.prediction_hits + self.prediction_misses
                + self.artifact_hits + self.artifact_misses)

    @property
    def hits(self) -> int:
        """Lookups resolved without re-running pipeline stages."""
        return self.prediction_hits + self.artifact_hits

    @property
    def hit_rate(self) -> float:
        """Share of all lookups served from the cache (always in [0, 1])."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "artifact_hits": self.artifact_hits,
            "artifact_misses": self.artifact_misses,
            "prediction_hits": self.prediction_hits,
            "prediction_misses": self.prediction_misses,
            "hits": self.hits,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


class ArtifactCache:
    """Two-level, thread-safe cache of emulation artifacts and predictions."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._artifacts: Dict[Tuple, EmulationArtifacts] = {}
        self._predictions: Dict[Tuple, PredictionResult] = {}

    # ------------------------------------------------------------------
    # artifact level
    # ------------------------------------------------------------------
    def get_artifacts(self, key: Tuple) -> Optional[EmulationArtifacts]:
        with self._lock:
            artifacts = self._artifacts.get(key)
            if artifacts is None:
                self.stats.artifact_misses += 1
                return None
            self.stats.artifact_hits += 1
            # Reused artifacts cost nothing to "produce": report zeroed
            # emulation / collation stage times for the borrowing trial.
            return replace(artifacts,
                           stage_times={"emulation": 0.0, "collation": 0.0})

    def put_artifacts(self, key: Tuple, artifacts: EmulationArtifacts) -> None:
        with self._lock:
            self._evict(self._artifacts)
            self._artifacts[key] = artifacts

    def peek_artifacts(self, key: Tuple) -> Optional[EmulationArtifacts]:
        """Lookup without touching hit/miss counters (merge bookkeeping)."""
        with self._lock:
            return self._artifacts.get(key)

    # ------------------------------------------------------------------
    # prediction level
    # ------------------------------------------------------------------
    def get_prediction(self, key: Tuple) -> Optional[PredictionResult]:
        with self._lock:
            result = self._predictions.get(key)
            if result is None:
                self.stats.prediction_misses += 1
                return None
            self.stats.prediction_hits += 1
            return result

    def put_prediction(self, key: Tuple, result: PredictionResult) -> None:
        with self._lock:
            self._evict(self._predictions)
            self._predictions[key] = result

    def peek_prediction(self, key: Tuple) -> Optional[PredictionResult]:
        """Lookup without touching hit/miss counters (merge bookkeeping)."""
        with self._lock:
            return self._predictions.get(key)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _evict(self, table: Dict) -> None:
        """FIFO eviction keeping each level under ``max_entries``."""
        while len(table) >= self.max_entries:
            table.pop(next(iter(table)))

    def __len__(self) -> int:
        with self._lock:
            return len(self._artifacts) + len(self._predictions)

    def clear(self) -> None:
        with self._lock:
            self._artifacts.clear()
            self._predictions.clear()
            self.stats = CacheStats()
