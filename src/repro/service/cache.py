"""Content-addressed caching of emulation artifacts and predictions.

The cache has two levels, both keyed on job signatures (see
:meth:`repro.workloads.job.TrainingJob.structural_signature`):

* **artifact level** -- :class:`~repro.core.pipeline.EmulationArtifacts`
  keyed by the *structural* signature (the knob subset that determines the
  trace shape) plus the pipeline's collation fingerprint.  A hit skips
  emulation and collation entirely; only estimation and simulation re-run.
* **prediction level** -- finished
  :class:`~repro.core.pipeline.PredictionResult` objects keyed by the *full*
  signature plus the estimator fingerprint.  A hit skips all four stages
  (the paper's trial result reuse).

Both levels are safe to share across threads; the service's parallel
``predict_many`` path and multiple services (e.g. a learned and an oracle
pipeline over the same cluster) can point at one cache instance so
structurally identical jobs emulate exactly once.

The artifact level additionally keeps a **sync journal** for the pooled
evaluation backends (``persistent`` over fork pipes, ``socket`` over TCP
to remote worker hosts): every ``put_artifacts`` advances a monotonic
epoch, and :meth:`delta_since` returns exactly the entries a long-lived
worker whose cache copy was last synced at a given epoch is missing.
Entries evicted in the meantime simply never appear in the delta (the
worker not having them matches the parent not having them); an epoch the
journal cannot serve (ahead of the parent, or negative) signals a stale
worker that must receive a full :meth:`snapshot` instead.

The delta protocol's invariants, which both pooled backends rely on:

* **Only puts travel.**  A delta never names evictions, so any eviction
  (or :meth:`clear`) after a worker's acked epoch makes that worker's
  cursor unserviceable -- :meth:`delta_since` returns ``None`` and the
  parent must ship a full :meth:`snapshot`, replacing the worker's table
  wholesale.  A worker can therefore never serve an artifact the parent
  no longer has.
* **Origin filtering** happens above this journal: the parent remembers
  which worker freshly emulated each artifact and drops that entry from
  the producer's own delta (it already holds an equivalent local copy).
* **No worker-side capacity eviction.**  :meth:`apply_artifact_delta`
  mirrors the parent's table verbatim instead of choosing its own
  victims, because a locally chosen victim could differ from the
  parent's and make the worker miss where a serial run hits.
* **Input-order merge.**  The parent folds worker payloads back in batch
  input order (not arrival order), so near ``max_entries`` the merge
  evicts the same victim a serial run would -- byte-identical accounting
  is the conformance contract of ``tests/backend_conformance.py``.

Entries are content-keyed tuples and reference no parent memory, which is
what lets the same journal serve fork pipes and sockets unchanged: the
cache is what makes the delta protocol "wire-shaped".

**Tiering.**  The artifact level can sit on top of a disk-backed
:class:`~repro.service.store.ArtifactStore` (the *cold tier*, attached
via :attr:`ArtifactCache.store`): a memory miss falls through to the
store, and fresh puts write through to it.  A store hit **hydrates**
through the exact same journalled put path a fresh emulation takes --
the epoch advances, capacity eviction runs, and pooled workers receive
the hydrated entry through the ordinary delta protocol.  That is the
*hydration-as-resync invariant*: a fresh service warming from disk is
indistinguishable (to the journal, to workers, to eviction) from one
that re-emulated everything, so results stay byte-identical to a cold
serial run no matter which tier satisfied each lookup.  Accounting is
tier-labelled (``memory_hits`` + ``store_hits`` partition
``artifact_hits``); sync/hydration traffic never touches the counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import EmulationArtifacts, PredictionResult


@dataclass
class CacheStats:
    """Counters surfaced by benchmarks, ``SearchResult`` and the CLI."""

    artifact_hits: int = 0
    artifact_misses: int = 0
    prediction_hits: int = 0
    prediction_misses: int = 0
    #: Tier split of ``artifact_hits`` (their sum always equals it):
    #: hits served by the in-memory hot tier vs the disk-backed store.
    memory_hits: int = 0
    store_hits: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups across both cache levels."""
        return (self.prediction_hits + self.prediction_misses
                + self.artifact_hits + self.artifact_misses)

    @property
    def hits(self) -> int:
        """Lookups resolved without re-running pipeline stages."""
        return self.prediction_hits + self.artifact_hits

    @property
    def hit_rate(self) -> float:
        """Share of all lookups served from the cache (always in [0, 1])."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "artifact_hits": self.artifact_hits,
            "artifact_misses": self.artifact_misses,
            "prediction_hits": self.prediction_hits,
            "prediction_misses": self.prediction_misses,
            "memory_hits": self.memory_hits,
            "store_hits": self.store_hits,
            "hits": self.hits,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


class ArtifactCache:
    """Two-level, thread-safe cache of emulation artifacts and predictions."""

    def __init__(self, max_entries: int = 256, store=None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.stats = CacheStats()
        #: Optional disk-backed cold tier
        #: (:class:`repro.service.store.ArtifactStore`).  Never pickled:
        #: a store holds process-local paths/locks, so each process
        #: attaches its own (see :meth:`__getstate__`).
        self._store = store
        self._lock = threading.Lock()
        self._artifacts: Dict[Tuple, EmulationArtifacts] = {}
        self._predictions: Dict[Tuple, PredictionResult] = {}
        #: Monotonic artifact-put counter (the persistent backend's sync
        #: epoch) and the epoch at which each live entry was (last) put.
        self._epoch = 0
        self._artifact_epochs: Dict[Tuple, int] = {}
        #: Epoch at the most recent artifact eviction (or ``clear``).  The
        #: delta protocol only ships puts, so a worker synced before an
        #: eviction may still hold the evicted entry -- its next delta
        #: request is refused and it receives a full snapshot instead.
        self._eviction_epoch = 0

    # ------------------------------------------------------------------
    # tiering (disk-backed cold tier)
    # ------------------------------------------------------------------
    @property
    def store(self):
        """The attached cold tier, or ``None`` (memory-only cache)."""
        return self._store

    @store.setter
    def store(self, store) -> None:
        with self._lock:
            self._store = store

    # ------------------------------------------------------------------
    # artifact level
    # ------------------------------------------------------------------
    def get_artifacts(self, key: Tuple) -> Optional[EmulationArtifacts]:
        artifacts, _ = self.lookup_artifacts(key)
        return artifacts

    def lookup_artifacts(self, key: Tuple) -> Tuple[
            Optional[EmulationArtifacts], str]:
        """Tiered lookup: ``(artifacts, tier)``.

        ``tier`` is ``"memory"``, ``"store"`` or ``"miss"``.  A store hit
        hydrates the memory tier through the journalled put path (epoch
        advance + capacity eviction, no write-back), so to the sync
        journal -- and therefore to every pooled worker -- a disk-warmed
        entry is indistinguishable from a freshly emulated one.
        """
        with self._lock:
            artifacts = self._artifacts.get(key)
            if artifacts is not None:
                self.stats.artifact_hits += 1
                self.stats.memory_hits += 1
                # Reused artifacts cost nothing to "produce": report zeroed
                # emulation / collation stage times for the borrowing trial.
                return replace(
                    artifacts,
                    stage_times={"emulation": 0.0, "collation": 0.0}), "memory"
            if self._store is not None:
                artifacts = self._store.get(key)
                if artifacts is not None:
                    self.stats.artifact_hits += 1
                    self.stats.store_hits += 1
                    self._put_artifacts_locked(key, artifacts,
                                               write_through=False)
                    return replace(
                        artifacts,
                        stage_times={"emulation": 0.0,
                                     "collation": 0.0}), "store"
            self.stats.artifact_misses += 1
            return None, "miss"

    def put_artifacts(self, key: Tuple, artifacts: EmulationArtifacts) -> None:
        with self._lock:
            self._put_artifacts_locked(key, artifacts, write_through=True)

    def _put_artifacts_locked(self, key: Tuple,
                              artifacts: EmulationArtifacts,
                              write_through: bool) -> None:
        if key not in self._artifacts:
            # Re-putting a live key replaces its value in place and must
            # NOT evict: at capacity the victim would be an unrelated
            # entry, and bumping the eviction epoch would force every
            # pooled worker into a needless full-snapshot resync.
            self._evict_artifacts()
        self._epoch += 1
        self._artifacts[key] = artifacts
        self._artifact_epochs[key] = self._epoch
        if write_through and self._store is not None:
            # Fresh artifacts persist to the cold tier; store-hydrated
            # ones (write_through=False) came from there.
            self._store.put(key, artifacts)

    def hydrate_from_store(self, key: Tuple) -> bool:
        """Mirror a pooled worker's store-tier hit into the memory tier.

        Merge bookkeeping (never counts stats: the worker's own lookup
        was already replayed): under a pooled backend the store hit
        happened in the worker process, so the parent hydrates its own
        memory tier from its own store -- in batch input order -- to
        land in exactly the state a serial run's lookup would have left.
        """
        with self._lock:
            if key in self._artifacts:
                return True
            if self._store is None:
                return False
            artifacts = self._store.get(key)
            if artifacts is None:
                return False
            self._put_artifacts_locked(key, artifacts, write_through=False)
            return True

    def peek_artifacts(self, key: Tuple) -> Optional[EmulationArtifacts]:
        """Lookup without touching hit/miss counters (merge bookkeeping)."""
        with self._lock:
            return self._artifacts.get(key)

    # ------------------------------------------------------------------
    # sync journal (persistent-backend cache-delta protocol)
    # ------------------------------------------------------------------
    @property
    def sync_epoch(self) -> int:
        """Epoch of the newest artifact put (0 for an empty journal)."""
        with self._lock:
            return self._epoch

    def delta_since(self, epoch: int) -> Optional[
            Tuple[int, List[Tuple[Tuple, EmulationArtifacts]]]]:
        """Artifact entries put after ``epoch``, oldest first.

        Returns ``(current_epoch, entries)``, or ``None`` when this journal
        cannot bring a worker synced at ``epoch`` up to date with puts
        alone: the epoch was never issued (negative, or ahead of the
        current epoch), or an eviction / ``clear`` happened after it (the
        worker may hold entries the parent dropped).  The caller must then
        fall back to a full :meth:`snapshot`, which replaces the worker's
        table wholesale.
        """
        with self._lock:
            if epoch < 0 or epoch > self._epoch:
                return None
            if epoch < self._eviction_epoch:
                return None
            entries = sorted(
                ((seq, key) for key, seq in self._artifact_epochs.items()
                 if seq > epoch),
                key=lambda item: item[0])
            return self._epoch, [(key, self._artifacts[key])
                                 for _, key in entries]

    def keys_synced_at(self, epoch: int) -> frozenset:
        """Artifact keys a worker synced at ``epoch`` is known to hold.

        Every live key whose put epoch is at or before ``epoch`` -- i.e.
        what a delta shipped at that epoch (or earlier) delivered.  Used
        by locality-aware placement to score workers by what they already
        have; returns the empty set for epochs the journal cannot vouch
        for (pre-journal, future, or behind an eviction), mirroring the
        cases where :meth:`delta_since` forces a full resync.
        """
        with self._lock:
            if epoch <= 0 or epoch > self._epoch:
                return frozenset()
            if epoch < self._eviction_epoch:
                return frozenset()
            return frozenset(key for key, seq in self._artifact_epochs.items()
                             if seq <= epoch)

    def snapshot(self) -> Tuple[int, List[Tuple[Tuple, EmulationArtifacts]]]:
        """Every live artifact entry in put order, plus the current epoch."""
        with self._lock:
            entries = sorted(self._artifact_epochs.items(),
                             key=lambda item: item[1])
            return self._epoch, [(key, self._artifacts[key])
                                 for key, _ in entries]

    def apply_artifact_delta(
            self, entries: Sequence[Tuple[Tuple, EmulationArtifacts]],
            full: bool = False) -> None:
        """Fold a parent-shipped delta (or full snapshot) into this cache.

        Used on the worker side of the persistent backend; never touches the
        hit/miss counters -- sync traffic is bookkeeping, not lookups.
        Capacity eviction deliberately does *not* run here: the parent
        already bounds its table, and an independently chosen local victim
        (this cache's insertion order can differ from the parent's put
        order) would make the worker miss where a serial run hits, breaking
        byte-identical cache accounting.  The worker mirrors the parent's
        table instead of policing its own size; any transient overshoot is
        corrected by the full resync the parent's next eviction forces.
        """
        with self._lock:
            if full:
                self._artifacts.clear()
                self._artifact_epochs.clear()
            for key, artifacts in entries:
                self._artifacts[key] = artifacts

    # ------------------------------------------------------------------
    # prediction level
    # ------------------------------------------------------------------
    def get_prediction(self, key: Tuple) -> Optional[PredictionResult]:
        with self._lock:
            result = self._predictions.get(key)
            if result is None:
                self.stats.prediction_misses += 1
                return None
            self.stats.prediction_hits += 1
            return result

    def put_prediction(self, key: Tuple, result: PredictionResult) -> None:
        with self._lock:
            self._evict(self._predictions)
            self._predictions[key] = result

    def peek_prediction(self, key: Tuple) -> Optional[PredictionResult]:
        """Lookup without touching hit/miss counters (merge bookkeeping)."""
        with self._lock:
            return self._predictions.get(key)

    def drop_predictions(self) -> None:
        """Clear only the prediction level, leaving stats untouched.

        Persistent-worker hygiene: the parent resolves every prediction-
        level hit before dispatch, so a dispatched job by definition has no
        prediction on the parent -- a worker-local entry for it could only
        be one the parent has since evicted.  Workers drop the level before
        each job so they can never serve (and mis-account) such a hit.
        """
        with self._lock:
            self._predictions.clear()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _evict(self, table: Dict) -> None:
        """FIFO eviction keeping each level under ``max_entries``."""
        while len(table) >= self.max_entries:
            table.pop(next(iter(table)))

    def _evict_artifacts(self) -> None:
        """Artifact-level eviction: prunes the journal and records the
        eviction epoch so pre-eviction workers get a full resync."""
        while len(self._artifacts) >= self.max_entries:
            evicted = next(iter(self._artifacts))
            self._artifacts.pop(evicted)
            self._artifact_epochs.pop(evicted, None)
            # Stamp the epoch of the *incoming* put (epoch increments after
            # this runs): a worker synced at exactly the current epoch saw
            # the evicted entry and must resync too.
            self._eviction_epoch = self._epoch + 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._artifacts) + len(self._predictions)

    def clear(self) -> None:
        with self._lock:
            self._artifacts.clear()
            self._predictions.clear()
            self._artifact_epochs.clear()
            # Workers synced at any epoch up to now still hold the dropped
            # entries; refuse their deltas until they full-resync.
            self._eviction_epoch = self._epoch + 1
            self.stats = CacheStats()

    # ------------------------------------------------------------------
    # serialisation (socket-backend worker bootstrap)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Pickle support: the lock stays behind, the tables travel.

        A cache shipped inside a ``("warm", service)`` bootstrap payload
        arrives as the worker's starting mirror of the parent's table;
        subsequent sync deltas keep it current.  The attached store (if
        any) stays behind with the lock: it wraps process-local paths
        and would otherwise smuggle open file handles into the pickle --
        the receiving process attaches its own store instead (worker
        hosts honour ``--store-dir`` / ``REPRO_STORE_DIR``).
        """
        with self._lock:
            state = self.__dict__.copy()
        state["_lock"] = None
        state["_store"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._store = None
