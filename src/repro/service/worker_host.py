"""The remote end of the ``socket`` evaluation backend.

``repro worker-host`` runs :func:`serve` on a machine that should
evaluate prediction jobs for a parent :class:`~repro.service.PredictionService`
elsewhere.  The life of one parent connection:

1. **Handshake** -- both sides exchange wire-protocol versions
   (:func:`repro.service.wire.handshake`); a mismatch is refused with a
   clear error on both ends.
2. **Bootstrap** -- the parent sends one ``("warm", service)`` message
   carrying its warmed service (trained estimator suite, shared-provider
   memos, host profile and current artifact cache).  There is no fork
   inheritance across machines, so this single payload replaces it; the
   worker acks ``("warmed",)`` once the service is live.
3. **Worker loop** -- :func:`repro.service.backends._pool_worker_main`
   takes over: apply ``sync`` cache deltas (acking each epoch), evaluate
   ``job`` messages through the ordinary cache-aware ``predict`` path,
   ship back results (plus freshly emulated artifacts as JSON traces),
   until ``close`` or EOF.  This is the *same* loop a forked persistent
   worker runs -- only the transport differs.

Each connection is served on its own thread with its own unpickled
service, so one worker host can outlive many parents (and --
sequentially or concurrently -- serve several).  Run one worker-host
process per worker you want an individual parent to use; a parent
connects once per configured address.

.. warning::
   The wire protocol is pickle-based and unauthenticated: a connecting
   parent fully controls this process.  Bind to localhost or a trusted
   private network only (see :mod:`repro.service.wire`).
"""

from __future__ import annotations

import contextlib
import os
import socket
import subprocess
import sys
import threading
import traceback
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from repro.service import wire
from repro.service.backends import _pool_worker_main
from repro.service.store import STORE_DIR_ENV, ArtifactStore

#: Set in every worker-host process before it serves connections; lets
#: shipped code (and tests injecting failures) detect that it is running
#: remotely rather than on the parent.
WORKER_HOST_ENV = "REPRO_WORKER_HOST"


def _log(message: str) -> None:
    print(f"worker-host: {message}", file=sys.stderr, flush=True)


def _serve_connection(sock: socket.socket, peer,
                      store_dir: Optional[str] = None) -> None:
    """Drive one parent connection from handshake to EOF.

    Every failure is contained to this connection: a protocol mismatch, a
    dropped parent, and also arbitrary exceptions such as an unpicklable
    warm payload (version skew between parent and worker host) are
    logged, the connection is closed, and the host keeps serving.

    ``store_dir`` attaches this host's own disk-backed artifact store to
    the unpickled service (stores never travel in the warm payload:
    :meth:`repro.service.cache.ArtifactCache.__getstate__` drops them),
    so worker-side lookups fall through to the shared cold tier exactly
    like the parent's do.
    """
    conn = wire.WireConnection(sock)
    try:
        try:
            wire.handshake(conn)
            message = conn.recv()
            if not (isinstance(message, tuple) and message
                    and message[0] == "warm" and len(message) == 2):
                raise wire.WireProtocolError(
                    f"expected the ('warm', service) bootstrap message "
                    f"first, got {message!r}")
            service = message[1]
            if store_dir:
                service.attach_store(store_dir)
            conn.send(("warmed",))
            _log(f"parent {peer} warmed; entering worker loop")
            _pool_worker_main(conn, service)
            _log(f"parent {peer} disconnected")
        except wire.WireProtocolError as exc:
            _log(f"rejected parent {peer}: {exc}")
        except (EOFError, OSError) as exc:
            _log(f"parent {peer} dropped: {exc}")
        except Exception:
            _log(f"failed serving parent {peer}:\n{traceback.format_exc()}")
    finally:
        conn.close()


def serve(host: str = "127.0.0.1", port: int = 0,
          once: bool = False, store_dir: Optional[str] = None) -> None:
    """Listen for parent services and evaluate their jobs until killed.

    Prints ``worker-host listening on <host>:<port>`` as the first stdout
    line (flushed) so drivers spawning local workers with ``--port 0``
    can discover the ephemeral port.  ``once`` serves a single parent
    connection to completion and returns (used by tests).

    ``store_dir`` (default: ``REPRO_STORE_DIR``) points this host at a
    shared artifact-store directory; every served connection's service
    gets it attached, and an incompatible store refuses at startup (not
    per-connection) with a clear error.
    """
    os.environ[WORKER_HOST_ENV] = "1"
    if store_dir is None:
        store_dir = os.environ.get(STORE_DIR_ENV) or None
    if store_dir:
        # Fail fast on a format mismatch before accepting any parent.
        ArtifactStore(store_dir)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        listener.bind((host, port))
        listener.listen()
        bound_host, bound_port = listener.getsockname()[:2]
        print(f"worker-host listening on {bound_host}:{bound_port}",
              flush=True)
        while True:
            sock, peer = listener.accept()
            if once:
                _serve_connection(sock, peer, store_dir)
                return
            thread = threading.Thread(target=_serve_connection,
                                      args=(sock, peer, store_dir),
                                      daemon=True)
            thread.start()
    finally:
        listener.close()


def start_local_worker_host(
    python: Optional[str] = None,
    extra_pythonpath: Sequence[str] = (),
    port: int = 0,
    extra_env: Optional[dict] = None,
) -> "subprocess.Popen":
    """Start one localhost worker-host subprocess (caller terminates it).

    The subprocess gets this package's ``src`` root (plus
    ``extra_pythonpath`` entries, e.g. a test directory whose classes the
    parent will pickle) prepended to ``PYTHONPATH`` and any ``extra_env``
    entries (e.g. a fault plan + worker id for chaos tests) merged in.
    The chosen address is parsed from the first stdout line and stored on
    the returned process as ``process.worker_address``.
    """
    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    parts = [str(src_root), *[str(entry) for entry in extra_pythonpath]]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    if extra_env:
        env.update({key: str(value) for key, value in extra_env.items()})
    process = subprocess.Popen(
        [python or sys.executable, "-m", "repro", "worker-host",
         "--host", "127.0.0.1", "--port", str(port)],
        stdout=subprocess.PIPE, text=True, env=env)
    line = process.stdout.readline()
    if "listening on" not in line:
        process.terminate()
        raise RuntimeError(
            f"worker-host subprocess failed to start "
            f"(first output line: {line!r})")
    process.worker_address = line.strip().rsplit(" ", 1)[-1]
    return process


def stop_local_worker_host(process: "subprocess.Popen") -> None:
    """Terminate (and reap) one spawned worker-host subprocess."""
    process.terminate()
    try:
        process.wait(timeout=5)
    except subprocess.TimeoutExpired:  # pragma: no cover - safety
        process.kill()
        process.wait()
    if process.stdout is not None:
        process.stdout.close()


@contextlib.contextmanager
def spawn_local_worker_hosts(
    count: int,
    python: Optional[str] = None,
    extra_pythonpath: Sequence[str] = (),
    env_per_host: Optional[Sequence[Optional[dict]]] = None,
    ports: Optional[Sequence[int]] = None,
) -> Iterator[List[str]]:
    """Spawn ``count`` localhost worker-host subprocesses; yield addresses.

    The development-convenience twin of running ``repro worker-host`` on
    real machines: tests and ``bench_sim_throughput.py`` use it to
    exercise the socket backend over loopback.  Each subprocess binds an
    ephemeral port (or the matching ``ports`` entry, which membership
    tests use to pre-announce a joiner's address before it exists) and is
    terminated when the context exits.  ``env_per_host`` optionally
    supplies extra environment entries for each host (chaos tests use it
    to install per-worker fault plans); see
    :func:`start_local_worker_host` for the common setup.
    """
    processes: List[subprocess.Popen] = []
    addresses: List[str] = []
    try:
        for position in range(count):
            extra_env = None
            if env_per_host is not None and position < len(env_per_host):
                extra_env = env_per_host[position]
            port = 0
            if ports is not None and position < len(ports):
                port = ports[position]
            process = start_local_worker_host(
                python=python, extra_pythonpath=extra_pythonpath,
                port=port, extra_env=extra_env)
            processes.append(process)
            addresses.append(process.worker_address)
        yield addresses
    finally:
        for process in processes:
            process.terminate()
        for process in processes:
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover - safety
                process.kill()
                process.wait()
            if process.stdout is not None:
                process.stdout.close()
