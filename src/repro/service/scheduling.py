"""Pluggable job-placement policies for the pooled evaluation backends.

:class:`~repro.service.backends.PooledBackend` historically striped each
batch round-robin over the live worker list.  This module extracts that
decision behind a :class:`SchedulerPolicy` interface (the scheduler-zoo
shape of ``atumanov/ray-scheduler-prototype``: several placement policies
behind one interface, compared by replaying the same workload) so that
placement can weigh per-worker load and artifact locality without
touching the dispatch/drain machinery:

``round_robin``
    The pre-refactor striping, byte-for-byte: job *p* of the dispatch
    list lands on worker ``p % width`` where ``width`` is
    ``min(workers, jobs)``.  This is the byte-identity reference -- the
    scheduler conformance harness holds every other policy to the same
    results and cache accounting.

``least_loaded``
    Greedy shortest-queue: each job (in dispatch order) goes to the
    worker with the fewest outstanding jobs (pre-existing load plus jobs
    assigned earlier in this batch), lowest slot winning ties.  No
    worker ever ends more than one job above the minimum.

``locality``
    Least-loaded biased by estimated ship cost: a worker whose acked
    sync epoch already covers the job's artifact key (or which produced
    the artifact itself, or which shares the parent's disk store and can
    hydrate the key from it) costs zero ship; any other worker pays a
    penalty of at least one job-unit, scaled by the artifact's estimated
    wire size.  An equally-loaded zero-ship worker therefore always
    wins over one that would need the artifact shipped.

Placement never changes *results*: the pooled backends merge in input
order and evaluate exactly once, so every policy stays byte-identical to
serial (``tests/scheduler_conformance.py`` enforces it).  What placement
changes is how many bytes the cache-delta sync ships and how evenly the
batch spreads -- the counters in :attr:`SchedulerPolicy.stats` (surfaced
through ``sync_stats`` and the server stats payload) and the
``bench_sim_throughput.py --schedulers`` leg measure exactly that.

Policies are pure and synchronous: they see immutable
:class:`JobSpec` / :class:`WorkerSnapshot` views and return index
shares, which makes them directly unit-testable
(``tests/test_scheduling.py`` property-tests the invariants above on
randomized scenarios, no backend required).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SCHEDULER_NAMES", "SCHEDULER_ENV", "JobSpec", "WorkerSnapshot",
    "SchedulerPolicy", "RoundRobinPolicy", "LeastLoadedPolicy",
    "LocalityPolicy", "get_scheduler", "validate_scheduler",
]

#: Environment variable selecting the default placement policy (the
#: ``PredictionService(scheduler=)`` argument and ``--scheduler`` CLI
#: flag override it; unset means ``round_robin``).
SCHEDULER_ENV = "REPRO_SCHEDULER"


@dataclass(frozen=True)
class JobSpec:
    """Placement-relevant view of one dispatchable job."""

    #: Position in the submitted batch (what the policy hands out).
    index: int
    #: The job's artifact cache key, or ``None`` when the job type does
    #: not support structural keying (placement then ignores locality).
    artifact_key: Optional[Tuple] = None
    #: Whether the parent's memory cache holds the artifact -- i.e. the
    #: next sync would ship it to workers that lack it.  Cold jobs are
    #: ``False``: nothing ships either way, every worker costs the same.
    artifact_cached: bool = False
    #: Whether the parent's disk store holds the artifact, making it free
    #: for any ``shares_store`` worker (the ``StoreRef`` skip-ship path).
    in_store: bool = False
    #: Estimated wire bytes a snapshot/delta ship of this artifact would
    #: cost (a proxy, not a measurement -- see
    #: ``PooledBackend._estimate_ship_bytes``).
    ship_bytes: int = 0


@dataclass(frozen=True)
class WorkerSnapshot:
    """Placement-relevant view of one live pool worker."""

    #: Position in the candidate list the policy was handed (shares are
    #: returned parallel to it).
    slot: int
    #: Outstanding jobs (queued + in flight) before this assignment.
    load: int = 0
    #: The cache sync epoch this worker last acked.
    acked_epoch: int = 0
    #: Whether the worker reads the parent's disk store directly
    #: (fork-local workers with an attached ``--store-dir``): store-held
    #: artifacts reach it as tiny ``StoreRef`` messages, never payloads.
    shares_store: bool = False
    #: Artifact keys this worker already holds: everything synced at or
    #: before its acked epoch, plus artifacts it emulated itself.
    held_keys: frozenset = field(default_factory=frozenset)


class SchedulerPolicy:
    """Places dispatchable jobs onto pool workers.

    Stateless between batches except for the monotonic :attr:`stats`
    counters; safe to reuse across batches and services.
    """

    name = "?"

    def __init__(self) -> None:
        #: Monotonic placement counters, copied into the owning backend's
        #: ``sync_stats`` after every assignment:
        #:
        #: ``placements``
        #:     jobs placed (one per dispatched job).
        #: ``locality_hits``
        #:     placements of an artifact-holding job onto a zero-ship
        #:     worker (recorded by *every* policy, so round_robin's
        #:     accidental hit rate is comparable to locality's).
        #: ``ship_bytes_avoided``
        #:     estimated wire bytes those zero-ship placements saved.
        #: ``membership_changes``
        #:     join/leave notifications received mid-run.
        self.stats: Dict[str, int] = {
            "placements": 0, "locality_hits": 0,
            "ship_bytes_avoided": 0, "membership_changes": 0,
        }

    # -- placement ----------------------------------------------------
    def assign(self, jobs: Sequence[JobSpec],
               workers: Sequence[WorkerSnapshot]) -> List[List[int]]:
        """Partition ``jobs`` into per-worker shares.

        Returns one list of job indices per worker, parallel to
        ``workers``; each share preserves dispatch order (the backends
        send a worker's share strictly in order).  Every job appears in
        exactly one share.  Empty shares are legal -- the backend skips
        syncing (and therefore shipping anything to) an idle worker.
        """
        raise NotImplementedError

    def select_target(self, job: JobSpec,
                      workers: Sequence[WorkerSnapshot]) -> Optional[int]:
        """Pick a re-dispatch target for one orphaned/straggling job.

        Called by the drain loop when a job must move (worker death,
        expired lease, clean departure).  Returns the chosen worker's
        ``slot`` or ``None`` when no candidate fits.  The default --
        least-loaded candidate, first slot winning ties -- is the
        pre-refactor behaviour and what every built-in policy uses:
        mid-batch the artifacts were already synced to every
        participating worker, so locality is moot for re-dispatch.
        """
        best: Optional[int] = None
        best_load: Optional[int] = None
        for worker in workers:
            if best_load is None or worker.load < best_load:
                best, best_load = worker.slot, worker.load
        return best

    # -- membership ---------------------------------------------------
    def on_membership_change(self, joined: Sequence[object] = (),
                             left: Sequence[object] = ()) -> None:
        """Notify the policy that workers joined or departed mid-run.

        Built-in policies are stateless over membership (they re-read
        worker snapshots every assignment), so the base implementation
        only counts the event; stateful policies (e.g. one amortising a
        placement plan) override this to invalidate their state.
        """
        self.stats["membership_changes"] += len(joined) + len(left)

    # -- accounting ---------------------------------------------------
    def zero_ship(self, job: JobSpec, worker: WorkerSnapshot) -> bool:
        """True when placing ``job`` on ``worker`` ships no artifact."""
        if job.artifact_key is None:
            return False
        if job.artifact_key in worker.held_keys:
            return True
        return worker.shares_store and job.in_store

    def _record(self, job: JobSpec, worker: WorkerSnapshot) -> None:
        self.stats["placements"] += 1
        if job.artifact_cached and self.zero_ship(job, worker):
            self.stats["locality_hits"] += 1
            self.stats["ship_bytes_avoided"] += job.ship_bytes


class RoundRobinPolicy(SchedulerPolicy):
    """The pre-refactor striping, kept byte-for-byte as the reference."""

    name = "round_robin"

    def assign(self, jobs: Sequence[JobSpec],
               workers: Sequence[WorkerSnapshot]) -> List[List[int]]:
        shares: List[List[int]] = [[] for _ in workers]
        if not jobs or not workers:
            return shares
        width = min(len(workers), len(jobs))
        for position, job in enumerate(jobs):
            worker = workers[position % width]
            shares[position % width].append(job.index)
            self._record(job, worker)
        return shares


class LeastLoadedPolicy(SchedulerPolicy):
    """Greedy shortest-queue placement, lowest slot winning ties."""

    name = "least_loaded"

    def assign(self, jobs: Sequence[JobSpec],
               workers: Sequence[WorkerSnapshot]) -> List[List[int]]:
        shares: List[List[int]] = [[] for _ in workers]
        if not jobs or not workers:
            return shares
        loads = [worker.load for worker in workers]
        for job in jobs:
            slot = min(range(len(workers)), key=lambda s: (loads[s], s))
            shares[slot].append(job.index)
            loads[slot] += 1
            self._record(job, workers[slot])
        return shares


class LocalityPolicy(SchedulerPolicy):
    """Least-loaded placement biased by estimated artifact-ship cost.

    Score = outstanding load + ship penalty.  The penalty is zero for a
    zero-ship worker (acked epoch covers the key, worker produced the
    artifact, or a shared store can hydrate it) and at least
    :data:`MIN_SHIP_PENALTY` job-units otherwise, growing with the
    artifact's estimated wire size -- so an equally-loaded zero-ship
    worker always wins, and a large artifact tolerates a longer queue
    before being shipped elsewhere.
    """

    name = "locality"

    #: A needed ship costs at least this many job-units, so ties on load
    #: always break toward the worker that ships nothing.
    MIN_SHIP_PENALTY = 1.0
    #: Ship-size normaliser: a ship of this many estimated bytes costs
    #: one extra job-unit of penalty on top of the minimum.
    BYTES_PER_JOB_UNIT = 1 << 20

    def assign(self, jobs: Sequence[JobSpec],
               workers: Sequence[WorkerSnapshot]) -> List[List[int]]:
        shares: List[List[int]] = [[] for _ in workers]
        if not jobs or not workers:
            return shares
        loads = [worker.load for worker in workers]
        for job in jobs:
            slot = min(range(len(workers)),
                       key=lambda s: (loads[s]
                                      + self._ship_penalty(job, workers[s]),
                                      s))
            shares[slot].append(job.index)
            loads[slot] += 1
            self._record(job, workers[slot])
        return shares

    def _ship_penalty(self, job: JobSpec, worker: WorkerSnapshot) -> float:
        if not job.artifact_cached or self.zero_ship(job, worker):
            # Cold jobs ship nothing anywhere; zero-ship workers already
            # hold (or can hydrate) the artifact.
            return 0.0
        return self.MIN_SHIP_PENALTY + job.ship_bytes / self.BYTES_PER_JOB_UNIT


_SCHEDULERS = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    LocalityPolicy.name: LocalityPolicy,
}

#: Registered policy names (ARCHITECTURE.md must document every one --
#: ``tools/check_docs.py`` enforces it).
SCHEDULER_NAMES = tuple(_SCHEDULERS)


def validate_scheduler(name: str) -> str:
    """Return ``name`` if it is a registered policy, else raise."""
    if name not in _SCHEDULERS:
        raise ValueError(f"unknown scheduler policy {name!r}; "
                         f"expected one of {sorted(_SCHEDULERS)}")
    return name


def get_scheduler(name: str) -> SchedulerPolicy:
    """Instantiate a placement policy by registered name."""
    return _SCHEDULERS[validate_scheduler(name)]()
