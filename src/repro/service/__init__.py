"""Prediction-service layer.

The service sits between Maya-Search (and the benchmark/CLI drivers) and the
:class:`~repro.core.pipeline.MayaPipeline` and owns the cross-trial
optimizations the paper's search loop relies on (Sections 5, 7.3-7.4):

* a content-addressed :class:`ArtifactCache` keyed by *structural
  signatures*, so trials that differ only in non-structural knobs (or are
  re-proposed outright) reuse emulation + collation artifacts; beneath
  it, an optional disk-backed :class:`ArtifactStore` cold tier
  (:mod:`repro.service.store`) shares that corpus across processes and
  runs,
* batched :meth:`PredictionService.predict_many` evaluation behind a
  pluggable backend (:mod:`repro.service.backends`): ``serial``, a
  ``thread`` pool, a fork-per-batch ``process`` pool that sidesteps the
  GIL while inheriting warmed estimator state copy-on-write, a
  long-lived ``persistent`` pool kept in sync by incremental cache
  deltas, or a multi-host ``socket`` pool speaking the same delta
  protocol to remote ``repro worker-host`` processes over the
  length-prefixed wire format in :mod:`repro.service.wire` (all five
  share one ``warm``/``submit``/``drain``/``close`` lifecycle), and
* a per-cluster shared :class:`~repro.core.simulator.providers.EstimatedDurationProvider`
  whose kernel-duration memo persists across trials.
"""

from repro.service.backends import (
    BACKEND_NAMES,
    BackendWorkerError,
    EvaluationBackend,
    PersistentBackend,
    PooledBackend,
    ProcessBackend,
    SerialBackend,
    SocketBackend,
    ThreadBackend,
    get_backend,
    validate_timeout,
)
from repro.service.cache import ArtifactCache, CacheStats
from repro.service.faults import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    install_fault_plan,
)
from repro.service.predictor import PredictionService
from repro.service.scheduling import (
    SCHEDULER_NAMES,
    JobSpec,
    SchedulerPolicy,
    WorkerSnapshot,
    get_scheduler,
    validate_scheduler,
)
from repro.service.server import (
    PredictionClient,
    PredictionServer,
    ServerBusyError,
)
from repro.service.store import (
    ArtifactStore,
    StoreError,
    StoreFormatError,
    StoreRef,
)
from repro.service.wire import PROTOCOL, WireProtocolError

__all__ = [
    "ArtifactCache",
    "ArtifactStore",
    "BACKEND_NAMES",
    "BackendWorkerError",
    "CacheStats",
    "EvaluationBackend",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "JobSpec",
    "PersistentBackend",
    "PooledBackend",
    "PredictionClient",
    "PredictionServer",
    "PredictionService",
    "ProcessBackend",
    "PROTOCOL",
    "SCHEDULER_NAMES",
    "SchedulerPolicy",
    "SerialBackend",
    "ServerBusyError",
    "SocketBackend",
    "StoreError",
    "StoreFormatError",
    "StoreRef",
    "ThreadBackend",
    "WireProtocolError",
    "WorkerSnapshot",
    "get_backend",
    "get_scheduler",
    "install_fault_plan",
    "validate_scheduler",
    "validate_timeout",
]
