"""Prediction-service layer.

The service sits between Maya-Search (and the benchmark/CLI drivers) and the
:class:`~repro.core.pipeline.MayaPipeline` and owns the cross-trial
optimizations the paper's search loop relies on (Sections 5, 7.3-7.4):

* a content-addressed :class:`ArtifactCache` keyed by *structural
  signatures*, so trials that differ only in non-structural knobs (or are
  re-proposed outright) reuse emulation + collation artifacts,
* batched :meth:`PredictionService.predict_many` evaluation behind a
  pluggable backend (:mod:`repro.service.backends`): ``serial``, a
  ``thread`` pool, a fork-per-batch ``process`` pool that sidesteps the
  GIL while inheriting warmed estimator state copy-on-write, or a
  long-lived ``persistent`` pool kept in sync by incremental cache deltas
  (all four share one ``warm``/``submit``/``drain``/``close`` lifecycle),
  and
* a per-cluster shared :class:`~repro.core.simulator.providers.EstimatedDurationProvider`
  whose kernel-duration memo persists across trials.
"""

from repro.service.backends import (
    BACKEND_NAMES,
    BackendWorkerError,
    EvaluationBackend,
    PersistentBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
)
from repro.service.cache import ArtifactCache, CacheStats
from repro.service.predictor import PredictionService

__all__ = [
    "ArtifactCache",
    "BACKEND_NAMES",
    "BackendWorkerError",
    "CacheStats",
    "EvaluationBackend",
    "PersistentBackend",
    "PredictionService",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "get_backend",
]
