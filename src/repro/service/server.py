"""Long-lived prediction server: many clients, one warm service.

``repro serve`` keeps one warmed :class:`~repro.service.PredictionService`
(trained estimator suite, artifact cache, pooled evaluation backend)
alive behind a TCP endpoint speaking the :mod:`repro.service.wire`
framing, so the paper's trial-result reuse pays off *across* processes:
every search, benchmark or notebook that connects shares the same cache
and the same worker pool instead of re-warming its own.

The life of one client connection mirrors the worker-host protocol:

1. **Handshake** -- the server sends its JSON hello immediately on
   accept; the client's first frame must be a JSON hello too
   (:meth:`~repro.service.wire.WireConnection.recv_json_only` semantics:
   nothing is unpickled before the protocol check passes).
2. **Request loop** -- post-handshake frames are pickled tuples:

   ========================================  =================================
   client -> server                          server -> client
   ========================================  =================================
   ``("predict", request_id, [job, ...])``   ``("results", request_id, [...])``
   ``("stats", request_id)``                 ``("stats", request_id, payload)``
   ``("shutdown", request_id)``              ``("shutting-down", request_id)``
   ..                                        ``("busy", request_id, info)``
   ..                                        ``("error", request_id, detail)``
   ========================================  =================================

   Results come back in the request's input order.  Replies are matched
   to requests by ``request_id`` (client-chosen, opaque to the server),
   so one connection can have a ``stats`` answered while a ``predict``
   is still evaluating.

**Fairness and cross-client coalescing.**  Queued ``predict`` requests
drain round-robin: each dispatch round takes at most one request per
client and merges them into a *single* ``predict_many`` batch.  That
generalises the batch-level in-flight dedup to cross-client request
coalescing -- two clients asking for the same job signature share one
evaluation (the second resolves through the prediction cache), counted
in ``stats`` as ``coalesced_jobs`` / ``cross_client_coalesced`` -- and
bounds any one client's share of a round to one request, so a client
flooding a search cannot starve the others.

**Admission control.**  The server queues at most ``max_pending``
``predict`` requests; beyond that it answers ``("busy", request_id,
info)`` with the queue depth and a suggested retry delay instead of
buffering unboundedly.  :class:`PredictionClient` retries busy replies
with backoff (bounded by ``busy_retries``) before surfacing
:class:`ServerBusyError`.

**Graceful shutdown.**  A ``shutdown`` request (or
:meth:`PredictionServer.stop`) stops accepting connections, answers any
late ``predict`` with ``("shutting-down", request_id)``, drains every
already-queued request through the dispatcher, delivers the results,
then closes the evaluation backend (worker pools included) and every
client connection.

.. warning::
   Like the worker-host protocol, post-handshake frames are
   unauthenticated pickle: a connecting client fully controls the server
   process.  Bind to localhost or a trusted private network only.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.service import wire
from repro.service.predictor import PredictionService

#: Request kinds a client may send post-handshake.  ``tools/check_docs.py``
#: asserts ARCHITECTURE.md documents every entry of both vocabularies.
REQUEST_KINDS = ("predict", "stats", "shutdown")
#: Reply kinds the server may send post-handshake.
REPLY_KINDS = ("results", "stats", "busy", "error", "shutting-down")

#: Default admission-control bound on queued ``predict`` requests.
DEFAULT_MAX_PENDING = 64


class ServerBusyError(RuntimeError):
    """The server's admission-control queue is full and retries ran out.

    ``info`` carries the structured busy reply (queue depth, bound and
    suggested retry delay) so callers can implement their own backoff.
    """

    def __init__(self, info) -> None:
        self.info: Dict[str, object] = (
            dict(info) if isinstance(info, dict) else {"detail": info})
        super().__init__(
            f"prediction server is at capacity "
            f"(queue {self.info.get('queue_depth')}/"
            f"{self.info.get('max_pending')})")


def _log(message: str) -> None:
    print(f"prediction-server: {message}", file=sys.stderr, flush=True)


async def _read_message(reader: asyncio.StreamReader, json_only: bool = False):
    """Read and decode one wire frame from an asyncio stream.

    Same validation as :meth:`WireConnection.recv` (magic, length cap),
    shared via :func:`wire.parse_header` / :func:`wire.decode_payload`.
    """
    header = await reader.readexactly(wire.HEADER_SIZE)
    fmt, length = wire.parse_header(header)
    payload = await reader.readexactly(length)
    return wire.decode_payload(fmt, payload, json_only=json_only)


class _ClientState:
    """Per-connection bookkeeping: queue, negotiated features, send lock."""

    def __init__(self, client_id: int, writer: asyncio.StreamWriter,
                 features: frozenset) -> None:
        self.client_id = client_id
        self.writer = writer
        self.features = features
        #: Queued ``(request_id, jobs)`` predict requests, FIFO per client;
        #: the dispatcher takes one per client per round (fairness).
        self.queue: Deque[Tuple[object, List]] = deque()
        #: Serialises writes: the handler answers ``stats`` inline while
        #: the dispatcher delivers ``results`` on the same stream.
        self.send_lock = asyncio.Lock()


class PredictionServer:
    """Asyncio TCP server multiplexing clients over one warm service.

    Single-threaded on its event loop; only ``predict_many`` batches run
    off-loop (one at a time, on a dedicated executor thread), so the
    server stays responsive to ``stats`` / handshakes mid-batch while
    evaluation order -- and therefore cache accounting -- stays exactly
    as serial as the service itself.
    """

    def __init__(self, service: PredictionService, host: str = "127.0.0.1",
                 port: int = 0,
                 max_pending: int = DEFAULT_MAX_PENDING) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self._service = service
        self._host = host
        self._port = port
        self.max_pending = max_pending
        #: ``host:port`` actually bound (set by :meth:`start`; with
        #: ``port=0`` the OS picks an ephemeral port).
        self.address: Optional[str] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._stop_task: Optional[asyncio.Task] = None
        self._handlers: set = set()
        self._clients: Dict[int, _ClientState] = {}
        self._client_ids = itertools.count(1)
        #: Round-robin order over connected client ids.
        self._rotation: Deque[int] = deque()
        self._pending = 0
        self._work: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._shutting_down = False
        self._counters: Dict[str, int] = {
            "requests": 0, "jobs": 0, "batches": 0,
            "coalesced_jobs": 0, "cross_client_coalesced": 0,
            "busy_rejections": 0, "connections": 0,
        }
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Predict requests queued but not yet dispatched."""
        return self._pending

    @property
    def service(self) -> PredictionService:
        return self._service

    async def start(self) -> None:
        """Warm the service, bind the listener, start the dispatcher."""
        self._loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._stopped = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="prediction-batch")
        # Warm off-loop: estimator training / pool bootstrap can take
        # seconds and must not block the accept path once we listen.
        await self._loop.run_in_executor(self._executor, self._service.warm)
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._port)
        bound = self._server.sockets[0].getsockname()
        self.address = f"{bound[0]}:{bound[1]}"
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def serve_forever(self) -> None:
        """Block until the server has fully stopped."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: drain queued work, then release everything.

        Idempotent; a second call waits for the first to finish.  New
        ``predict`` requests arriving while draining get a
        ``shutting-down`` reply instead of queueing.
        """
        if self._shutting_down:
            await self._stopped.wait()
            return
        self._shutting_down = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._work.set()
        if self._dispatcher is not None:
            await self._dispatcher
        for client in list(self._clients.values()):
            client.writer.close()
        current = asyncio.current_task()
        handlers = [task for task in self._handlers if task is not current]
        if handlers:
            await asyncio.gather(*handlers, return_exceptions=True)
        self._executor.shutdown(wait=True)
        self._service.close()
        self._stopped.set()

    def stop_threadsafe(self, timeout: float = 60.0) -> None:
        """Request :meth:`stop` from outside the event loop and wait.

        The companion to :func:`start_server_thread`: after it returns,
        the server's backend is closed and (if thread-hosted) the thread
        has exited.
        """
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            future = asyncio.run_coroutine_threadsafe(self.stop(), loop)
            future.result(timeout)
        except RuntimeError:  # loop already shut down under us
            pass
        if self._thread is not None:
            self._thread.join(timeout)

    # ------------------------------------------------------------------
    # per-connection handler
    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            self._handlers.discard(task)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            writer.write(wire.encode_json_frame(wire.local_hello()))
            await writer.drain()
            hello = await _read_message(reader, json_only=True)
            features = wire.validate_hello(hello)
        except (wire.WireError, ValueError, asyncio.IncompleteReadError,
                ConnectionError, OSError) as exc:
            _log(f"rejected client: {exc}")
            writer.close()
            return
        client = _ClientState(next(self._client_ids), writer, features)
        self._clients[client.client_id] = client
        self._rotation.append(client.client_id)
        self._counters["connections"] += 1
        try:
            while True:
                try:
                    message = await _read_message(reader)
                except (asyncio.IncompleteReadError, ConnectionError,
                        OSError):
                    break  # client hung up
                except wire.WireError as exc:
                    _log(f"client {client.client_id} sent a bad frame: "
                         f"{exc}")
                    break
                await self._handle_request(client, message)
        finally:
            self._clients.pop(client.client_id, None)
            try:
                self._rotation.remove(client.client_id)
            except ValueError:
                pass
            # Abandon the departed client's queued requests: there is no
            # stream left to answer them on.
            self._pending -= len(client.queue)
            client.queue.clear()
            writer.close()

    async def _handle_request(self, client: _ClientState, message) -> None:
        if not (isinstance(message, tuple) and len(message) >= 2):
            await self._send(client, ("error", None,
                                      f"malformed request {message!r}"))
            return
        kind, request_id = message[0], message[1]
        if kind == "predict":
            jobs = list(message[2]) if len(message) > 2 else []
            if self._shutting_down:
                await self._send(client, ("shutting-down", request_id))
                return
            if self._pending >= self.max_pending:
                self._counters["busy_rejections"] += 1
                await self._send(client, ("busy", request_id, {
                    "reason": "queue-full",
                    "queue_depth": self._pending,
                    "max_pending": self.max_pending,
                    "retry_after_s": 0.05,
                }))
                return
            client.queue.append((request_id, jobs))
            self._pending += 1
            self._work.set()
        elif kind == "stats":
            await self._send(client, ("stats", request_id,
                                      self.stats_payload()))
        elif kind == "shutdown":
            await self._send(client, ("shutting-down", request_id))
            if self._stop_task is None:
                self._stop_task = asyncio.ensure_future(self.stop())
        else:
            await self._send(client, ("error", request_id,
                                      f"unknown request kind {kind!r}; "
                                      f"expected one of {REQUEST_KINDS}"))

    async def _send(self, client: _ClientState, message) -> None:
        """Write one reply frame; a vanished client is not an error."""
        try:
            frame = wire.encode_frame(message, client.features)
            async with client.send_lock:
                client.writer.write(frame)
                await client.writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            pass  # the handler's read loop notices and cleans up

    # ------------------------------------------------------------------
    # dispatcher (fair batching + cross-client coalescing)
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            if self._pending == 0:
                if self._shutting_down:
                    return
                self._work.clear()
                # Re-check under the cleared event: an enqueue between the
                # check above and clear() re-set it, so nothing is lost.
                if self._pending == 0 and not self._shutting_down:
                    await self._work.wait()
                continue
            round_requests = self._assemble_round()
            if round_requests:
                await self._evaluate_round(round_requests)

    def _assemble_round(self) -> List[Tuple[_ClientState, object, List]]:
        """Take at most one queued request per client, round-robin."""
        round_requests: List[Tuple[_ClientState, object, List]] = []
        for _ in range(len(self._rotation)):
            client_id = self._rotation[0]
            self._rotation.rotate(-1)
            client = self._clients.get(client_id)
            if client is None or not client.queue:
                continue
            request_id, jobs = client.queue.popleft()
            self._pending -= 1
            round_requests.append((client, request_id, jobs))
        return round_requests

    async def _evaluate_round(
            self,
            round_requests: List[Tuple[_ClientState, object, List]]) -> None:
        merged: List = []
        slices: List[Tuple[_ClientState, object, int, int]] = []
        key_owner: Dict[Tuple, _ClientState] = {}
        for client, request_id, jobs in round_requests:
            slices.append((client, request_id, len(merged), len(jobs)))
            merged.extend(jobs)
            for job in jobs:
                key = self._service.request_key(job)
                if key is None:
                    continue
                owner = key_owner.get(key)
                if owner is None:
                    key_owner[key] = client
                else:
                    self._counters["coalesced_jobs"] += 1
                    if owner is not client:
                        self._counters["cross_client_coalesced"] += 1
        self._counters["batches"] += 1
        self._counters["requests"] += len(round_requests)
        self._counters["jobs"] += len(merged)
        try:
            results = await self._loop.run_in_executor(
                self._executor, self._service.predict_many, merged)
        except Exception as exc:  # noqa: BLE001 - forwarded to clients
            detail = f"{type(exc).__name__}: {exc}"
            _log(f"batch of {len(merged)} jobs failed: {detail}")
            for client, request_id, _, _ in slices:
                await self._send(client, ("error", request_id, detail))
            return
        for client, request_id, start, count in slices:
            await self._send(client, ("results", request_id,
                                      results[start:start + count]))

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats_payload(self) -> Dict[str, object]:
        """The ``stats`` reply: cache, throughput, resilience and queue.

        The ``cache`` block carries the tier-labelled hit counters
        (``memory_hits`` / ``store_hits``); ``store`` reports the disk
        tier's entry count, byte footprint and per-process op counters,
        or ``None`` when the service runs memory-only.
        """
        service = self._service
        backend_impl = service.backend_impl
        return {
            "cache": service.cache_stats(),
            "store": (service.store_stats()
                      if hasattr(service, "store_stats") else None),
            "throughput": service.throughput_stats(),
            "resilience": service.resilience_stats(),
            "sync": dict(getattr(backend_impl, "sync_stats", None) or {}),
            "server": {
                **self._counters,
                "queue_depth": self._pending,
                "max_pending": self.max_pending,
                "clients": len(self._clients),
                "pool_size": backend_impl.pool_size(),
                "scheduler": getattr(backend_impl, "scheduler", None),
                "shutting_down": self._shutting_down,
            },
        }


# ----------------------------------------------------------------------
# blocking entry points
# ----------------------------------------------------------------------
def serve(service: PredictionService, host: str = "127.0.0.1", port: int = 0,
          max_pending: int = DEFAULT_MAX_PENDING) -> None:
    """Run a server until interrupted (the ``repro serve`` entry point).

    Prints ``prediction-server listening on <host>:<port>`` as the first
    flushed stdout line so drivers spawning a localhost server with
    ``--port 0`` can discover the ephemeral port (the worker-host
    convention).  The backend is closed on the way out, interrupt
    included.
    """

    async def _run() -> None:
        server = PredictionServer(service, host=host, port=port,
                                  max_pending=max_pending)
        await server.start()
        print(f"prediction-server listening on {server.address}", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass


def start_server_thread(service: PredictionService, host: str = "127.0.0.1",
                        port: int = 0,
                        max_pending: int = DEFAULT_MAX_PENDING,
                        timeout: float = 120.0) -> PredictionServer:
    """Run a server on a daemon thread; return it once it is listening.

    For in-process embedding (tests, notebooks): the caller keeps the
    handle -- ``server.address`` to connect, ``server.stop_threadsafe()``
    to shut down and join the thread.
    """
    server = PredictionServer(service, host=host, port=port,
                              max_pending=max_pending)
    started = threading.Event()
    failures: List[BaseException] = []

    async def _main() -> None:
        try:
            await server.start()
        except BaseException as exc:
            failures.append(exc)
            raise
        finally:
            started.set()
        await server.serve_forever()

    def _thread_main() -> None:
        try:
            asyncio.run(_main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via failures
            if not failures:
                failures.append(exc)

    thread = threading.Thread(target=_thread_main, daemon=True,
                              name="prediction-server")
    server._thread = thread
    thread.start()
    if not started.wait(timeout):
        raise TimeoutError("prediction server failed to start in time")
    if failures:
        raise RuntimeError("prediction server failed to start") \
            from failures[0]
    return server


def start_local_server(cluster: str = "v100-8", estimator: str = "analytical",
                       backend: str = "serial", jobs: int = 1, port: int = 0,
                       max_pending: int = DEFAULT_MAX_PENDING,
                       python: Optional[str] = None,
                       extra_pythonpath: Sequence[str] = (),
                       extra_env: Optional[dict] = None,
                       ) -> "subprocess.Popen":
    """Start one localhost ``repro serve`` subprocess (caller stops it).

    The chosen address is parsed from the first stdout line and stored on
    the returned process as ``process.server_address`` -- the same
    convention as :func:`repro.service.worker_host.start_local_worker_host`.
    """
    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    parts = [str(src_root), *[str(entry) for entry in extra_pythonpath]]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    if extra_env:
        env.update({key: str(value) for key, value in extra_env.items()})
    process = subprocess.Popen(
        [python or sys.executable, "-m", "repro", "serve",
         "--cluster", cluster, "--estimator", estimator,
         "--backend", backend, "--jobs", str(jobs),
         "--max-pending", str(max_pending),
         "--host", "127.0.0.1", "--port", str(port)],
        stdout=subprocess.PIPE, text=True, env=env)
    line = process.stdout.readline()
    if "listening on" not in line:
        process.terminate()
        raise RuntimeError(
            f"prediction-server subprocess failed to start "
            f"(first output line: {line!r})")
    process.server_address = line.strip().rsplit(" ", 1)[-1]
    return process


def stop_local_server(process: "subprocess.Popen") -> None:
    """Terminate (and reap) one spawned server subprocess."""
    process.terminate()
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:  # pragma: no cover - safety
        process.kill()
        process.wait()
    if process.stdout is not None:
        process.stdout.close()


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
class PredictionClient:
    """Synchronous client for a running prediction server.

    Duck-types the :class:`PredictionService` surface the search runner
    uses (``predict`` / ``predict_many`` / ``cache_stats`` /
    ``throughput_stats`` / ``close`` plus the ``max_workers`` /
    ``backend`` / ``pipeline`` attributes), so
    :class:`~repro.search.runner.MayaTrialEvaluator` can point a whole
    search at a remote warm server by swapping its service out
    (``MayaTrialEvaluator(..., server="host:port")``).

    Transport failures (server restart, dropped network) are retried by
    reconnecting with exponential backoff up to ``reconnect_attempts``
    times per request; re-sending a ``predict`` is idempotent because
    results are cached server-side.  ``busy`` replies (admission
    control) back off separately, bounded by ``busy_retries``, then
    surface :class:`ServerBusyError`.  Thread-safe: one request is in
    flight at a time per client.
    """

    def __init__(self, address: str, timeout: float = 60.0,
                 reconnect_attempts: int = 8, retry_delay: float = 0.1,
                 busy_retries: int = 8) -> None:
        wire.parse_address(address)  # fail fast on a malformed address
        self.address = address
        self.timeout = timeout
        self.reconnect_attempts = max(int(reconnect_attempts), 0)
        self.retry_delay = retry_delay
        self.busy_retries = max(int(busy_retries), 0)
        #: Service-surface parity for the search runner; evaluation
        #: happens server-side, so these are descriptive only.
        self.pipeline = None
        self.backend = "server"
        self.max_workers = 1
        self.enable_cache = True
        #: Client-side observability (tests, benchmarks).
        self.reconnect_count = 0
        self.busy_replies = 0
        self._conn: Optional[wire.WireConnection] = None
        self._lock = threading.Lock()
        self._request_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _roundtrip(self, kind: str, *payload) -> tuple:
        """Send one request, wait for its reply; reconnect on failure."""
        with self._lock:
            last_error: Optional[BaseException] = None
            for attempt in range(self.reconnect_attempts + 1):
                if attempt:
                    self.reconnect_count += 1
                    time.sleep(min(self.retry_delay * (2 ** (attempt - 1)),
                                   2.0))
                request_id = next(self._request_ids)
                try:
                    if self._conn is None:
                        self._conn = wire.connect(self.address,
                                                  timeout=self.timeout)
                    self._conn.send((kind, request_id, *payload))
                    while True:
                        reply = self._conn.recv()
                        if (isinstance(reply, tuple) and len(reply) >= 2
                                and reply[1] == request_id):
                            return reply
                        # Stale reply to an earlier, abandoned request
                        # (e.g. results for a predict whose busy-retry
                        # superseded it): skip to ours.
                except (EOFError, OSError, wire.WireError) as exc:
                    last_error = exc
                    self._drop_connection_locked()
            raise ConnectionError(
                f"prediction server at {self.address} unreachable after "
                f"{self.reconnect_attempts + 1} attempts "
                f"(last error: {last_error})")

    def _drop_connection_locked(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def _drop_connection(self) -> None:
        with self._lock:
            self._drop_connection_locked()

    # ------------------------------------------------------------------
    # service surface
    # ------------------------------------------------------------------
    def warm(self) -> None:
        """No-op: the server warmed its service before listening."""

    def predict_many(self, jobs: Sequence) -> List:
        """Evaluate a batch on the server; results in input order."""
        jobs = list(jobs)
        if not jobs:
            return []
        for busy_attempt in range(self.busy_retries + 1):
            reply = self._roundtrip("predict", jobs)
            kind = reply[0]
            if kind == "results":
                return list(reply[2])
            if kind == "busy":
                self.busy_replies += 1
                info = reply[2] if len(reply) > 2 else {}
                if busy_attempt >= self.busy_retries:
                    raise ServerBusyError(info)
                delay = float(info.get("retry_after_s", self.retry_delay)
                              if isinstance(info, dict) else self.retry_delay)
                time.sleep(min(delay * (busy_attempt + 1), 2.0))
                continue
            if kind == "shutting-down":
                self._drop_connection()
                raise ConnectionError(
                    f"prediction server at {self.address} is shutting down")
            if kind == "error":
                raise RuntimeError(f"prediction server error: {reply[2]}")
            raise wire.WireProtocolError(
                f"unexpected reply kind {kind!r} from prediction server; "
                f"expected one of {REPLY_KINDS}")
        raise AssertionError("unreachable")  # pragma: no cover

    def predict(self, job):
        return self.predict_many([job])[0]

    def stats(self) -> Dict[str, object]:
        """The server's full ``stats`` payload (cache / throughput /
        resilience / queue)."""
        reply = self._roundtrip("stats")
        if reply[0] != "stats":
            raise wire.WireProtocolError(
                f"unexpected reply kind {reply[0]!r} to a stats request")
        return reply[2]

    def cache_stats(self) -> Dict[str, float]:
        return self.stats()["cache"]

    def throughput_stats(self) -> Dict[str, object]:
        return self.stats()["throughput"]

    def resilience_stats(self) -> Dict[str, int]:
        return self.stats()["resilience"]

    def server_stats(self) -> Dict[str, object]:
        return self.stats()["server"]

    def shutdown_server(self) -> None:
        """Ask the server to drain and exit, then drop the connection."""
        try:
            self._roundtrip("shutdown")
        finally:
            self.close()

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "PredictionClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
