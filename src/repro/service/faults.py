"""Deterministic fault injection for the pooled evaluation backends.

The resilience machinery in :mod:`repro.service.backends` -- liveness
pings, job leases with speculative re-dispatch, reconnect-with-backoff --
only earns its keep if every failure path can be exercised on demand and
*reproducibly*.  This module supplies that: a :class:`FaultPlan` is a
seeded, declarative list of :class:`FaultRule` entries that the worker
loop (:func:`repro.service.backends._pool_worker_main`) and the parent's
scatter/gather consult at well-defined hook points.  Every trigger is a
piece of plan state (a job index, a sync epoch, a per-process worker id,
a fired counter) -- never wall-clock randomness -- so a chaos scenario
replays identically run after run and the conformance harness can assert
byte-identical results against a serial evaluation.

Rule schema (JSON, via ``REPRO_FAULT_PLAN``, or :class:`FaultRule`)::

    {"seed": 0,
     "rules": [
       {"action": "kill",    "job": 2, "when": "before", "worker": 0},
       {"action": "slow",    "job": 1, "delay_s": 1.5,   "worker": 1},
       {"action": "drop",    "job": 1, "when": "after"},
       {"action": "drop",    "epoch": 3},
       {"action": "delay",   "epoch": 2, "delay_s": 0.5},
       {"action": "corrupt", "job": 2}
     ]}

Actions and where they fire:

``kill``
    Worker side.  ``os._exit`` the evaluating process before (or after)
    it handles the job whose batch index matches ``job`` -- a crashed
    worker process / worker host.
``slow``
    Worker side.  Sleep ``delay_s`` (plus ``(factor - 1)`` times the
    measured evaluation time for ``when: after``) around the matching
    job -- a straggler, used to drive jobs past their lease deadline.
``drop``
    Worker side.  Close the connection cleanly at the matching job or at
    the first sync whose epoch is ``>= epoch`` -- a lost network path
    whose host stays up and can be reconnected to.
``delay``
    Worker side.  Sleep ``delay_s`` before acking the matching sync --
    drives the parent's sync timeout.
``corrupt``
    Parent side.  Deliberately corrupt the wire frame carrying the
    matching job dispatch (:meth:`~repro.service.wire.WireConnection.corrupt_next_frame`),
    so the receiving worker host rejects the stream and hangs up.
``join`` / ``leave``
    Parent side.  When the result for the matching ``job`` arrives, ask
    the pooled backend to admit (``join``) or cleanly retire (``leave``)
    the worker host at ``address`` -- deterministic mid-batch membership
    churn for the elastic-scheduling chaos tests, applied through the
    same code path as a live ``backend.join()`` / ``backend.leave()``.

``worker`` scopes a rule to one worker: forked persistent workers are
numbered in spawn order, remote worker hosts read ``REPRO_FAULT_WORKER``
(one id per host).  Rules are one-shot by default (``once: false`` makes
them recurring) and one-shot state lives in the plan instance, so a
worker host that serves several connections in a row fires each rule at
most once across all of them.

Install a plan programmatically with :func:`install_fault_plan` (forked
workers inherit it) or via the ``REPRO_FAULT_PLAN`` environment variable
(JSON; how worker-host subprocesses receive theirs).  Without either,
every hook is a no-op through the shared :data:`NO_FAULTS` plan.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Environment variable holding a JSON fault plan (see module docstring).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Environment variable numbering a worker-host process for ``worker``-
#: scoped rules (forked workers are numbered by the parent instead).
FAULT_WORKER_ENV = "REPRO_FAULT_WORKER"

#: Exit status used by ``kill`` rules, distinguishable from real crashes.
KILL_EXIT_CODE = 43

_ACTIONS = ("kill", "slow", "drop", "delay", "corrupt", "join", "leave")
_WHENS = ("before", "after")

#: Parent-side membership actions (elastic pool churn); never applied by
#: the worker-side hooks, so one JSON plan can arm both sides.
_MEMBERSHIP_ACTIONS = ("join", "leave")


class FaultInjected(RuntimeError):
    """Raised by ``drop`` rules: the worker loop closes its connection."""


@dataclass
class FaultRule:
    """One declarative fault: a trigger plus an action.

    Triggers: ``job`` matches the batch index carried in a job message
    (``when`` picks the before/after-evaluation hook), ``epoch`` matches
    the first cache sync whose epoch is >= the value.  ``worker``
    restricts the rule to one worker id; ``None`` matches every worker.
    """

    action: str
    job: Optional[int] = None
    when: str = "before"
    epoch: Optional[int] = None
    worker: Optional[int] = None
    delay_s: float = 0.0
    factor: float = 1.0
    once: bool = True
    #: Worker-host address for membership (``join`` / ``leave``) rules.
    address: Optional[str] = None
    #: How many times this rule has fired (plan state, not configuration).
    fired: int = 0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; "
                             f"expected one of {_ACTIONS}")
        if self.when not in _WHENS:
            raise ValueError(f"fault rule 'when' must be one of {_WHENS}, "
                             f"got {self.when!r}")
        if self.job is None and self.epoch is None:
            raise ValueError(f"fault rule {self.action!r} needs a trigger: "
                             f"set 'job' or 'epoch'")
        if self.action in _MEMBERSHIP_ACTIONS and self.address is None:
            raise ValueError(f"fault rule {self.action!r} needs the "
                             f"'address' of the worker host to add/remove")
        if self.delay_s < 0 or self.factor < 1.0:
            raise ValueError("fault rule delays must be >= 0 and factors "
                             ">= 1.0")

    def spent(self) -> bool:
        return self.once and self.fired > 0

    def matches_worker(self, worker_id: Optional[int]) -> bool:
        return self.worker is None or self.worker == worker_id


class FaultPlan:
    """A seeded, stateful set of fault rules consulted at the hook points.

    The plan object *is* the chaos scenario: rules fire purely on plan
    state (indices, epochs, fired counters), and ``seed`` feeds
    :attr:`rng` for scenarios that want reproducible pseudo-random
    choices (e.g. picking a victim job), so two runs with the same plan
    inject exactly the same faults at exactly the same protocol points.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0,
                 worker_id: Optional[int] = None) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        #: Deterministic generator for plan-construction helpers; never
        #: consulted implicitly by the hooks themselves.
        self.rng = random.Random(seed)
        #: Which worker this process is, for ``worker``-scoped rules
        #: (``None`` on the parent and on unnumbered workers).
        self.worker_id = worker_id
        #: Hook-invocation counters (observability / test assertions).
        self.stats: Dict[str, int] = {"jobs_seen": 0, "syncs_seen": 0,
                                      "faults_fired": 0}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Dict,
                  worker_id: Optional[int] = None) -> "FaultPlan":
        rules = [FaultRule(**rule) for rule in payload.get("rules", ())]
        return cls(rules=rules, seed=int(payload.get("seed", 0)),
                   worker_id=worker_id)

    @classmethod
    def from_json(cls, text: str,
                  worker_id: Optional[int] = None) -> "FaultPlan":
        return cls.from_dict(json.loads(text), worker_id=worker_id)

    def to_json(self) -> str:
        rules = []
        for rule in self.rules:
            entry = {"action": rule.action, "when": rule.when,
                     "delay_s": rule.delay_s, "factor": rule.factor,
                     "once": rule.once}
            for key in ("job", "epoch", "worker", "address"):
                if getattr(rule, key) is not None:
                    entry[key] = getattr(rule, key)
            rules.append(entry)
        return json.dumps({"seed": self.seed, "rules": rules})

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def _fire(self, rule: FaultRule) -> None:
        rule.fired += 1
        self.stats["faults_fired"] += 1

    def _job_rules(self, index: int, when: str) -> List[FaultRule]:
        return [rule for rule in self.rules
                if rule.job == index and rule.when == when
                and rule.action not in _MEMBERSHIP_ACTIONS
                and not rule.spent() and rule.matches_worker(self.worker_id)]

    # ------------------------------------------------------------------
    # worker-side hooks (called from the pool worker loop)
    # ------------------------------------------------------------------
    def before_job(self, index: int) -> None:
        """Hook before a worker evaluates batch index ``index``."""
        self.stats["jobs_seen"] += 1
        for rule in self._job_rules(index, "before"):
            self._fire(rule)
            self._apply_worker_action(rule, elapsed=0.0)

    def after_job(self, index: int, elapsed: float = 0.0) -> None:
        """Hook after a worker evaluated (and answered) ``index``."""
        for rule in self._job_rules(index, "after"):
            self._fire(rule)
            self._apply_worker_action(rule, elapsed=elapsed)

    def on_sync(self, epoch: int) -> None:
        """Hook before a worker acks cache-sync ``epoch``."""
        self.stats["syncs_seen"] += 1
        for rule in self.rules:
            if (rule.epoch is None or rule.spent()
                    or not rule.matches_worker(self.worker_id)
                    or epoch < rule.epoch):
                continue
            self._fire(rule)
            if rule.action == "delay":
                time.sleep(rule.delay_s)
            elif rule.action == "drop":
                raise FaultInjected(f"fault plan dropped the connection at "
                                    f"sync epoch {epoch}")
            elif rule.action == "kill":  # pragma: no cover - symmetry
                os._exit(KILL_EXIT_CODE)

    def _apply_worker_action(self, rule: FaultRule, elapsed: float) -> None:
        if rule.action == "kill":
            os._exit(KILL_EXIT_CODE)
        elif rule.action == "slow":
            time.sleep(rule.delay_s + (rule.factor - 1.0) * elapsed)
        elif rule.action == "drop":
            raise FaultInjected(f"fault plan dropped the connection at job "
                                f"{rule.job}")
        # "corrupt" is parent-side only; ignore it here so one JSON plan
        # can be installed on both sides.

    # ------------------------------------------------------------------
    # parent-side hooks (called from the scatter/gather loop)
    # ------------------------------------------------------------------
    def job_frame_action(self, index: int) -> Optional[str]:
        """Action to apply to the outbound frame dispatching ``index``."""
        for rule in self.rules:
            if (rule.action == "corrupt" and rule.job == index
                    and not rule.spent()):
                self._fire(rule)
                return rule.action
        return None

    def membership_events(self, index: int) -> List[tuple]:
        """Membership changes triggered by the result of job ``index``.

        Consulted by the pooled backends' drain loop when a job's first
        result arrives: every un-spent ``join`` / ``leave`` rule whose
        ``job`` matches fires and is returned as an ``(action, address)``
        pair for the backend to apply -- a deterministic stand-in for a
        live ``backend.join()`` / ``backend.leave()`` call, anchored to a
        protocol point instead of wall clock.
        """
        events = []
        for rule in self.rules:
            if (rule.action in _MEMBERSHIP_ACTIONS and rule.job == index
                    and not rule.spent()):
                self._fire(rule)
                events.append((rule.action, rule.address))
        return events


#: Shared no-op plan: every hook falls through instantly.
NO_FAULTS = FaultPlan()

#: Programmatically installed plan (parent process and its forked
#: workers); takes precedence over the environment.
_INSTALLED: Optional[FaultPlan] = None

#: Cache of the environment-derived plan, keyed by the raw JSON so plan
#: *state* (fired counters) survives repeated lookups but a changed
#: environment is picked up.
_ENV_PLAN: Optional[tuple] = None


def install_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-wide (``None`` clears it).

    Forked (``persistent``) workers inherit the installed plan at fork
    time, which is how a chaos test arms local workers; remote worker
    hosts read ``REPRO_FAULT_PLAN`` from their environment instead.
    """
    global _INSTALLED
    _INSTALLED = plan


def local_worker_id() -> Optional[int]:
    """This process's worker id for ``worker``-scoped rules, if numbered."""
    raw = os.environ.get(FAULT_WORKER_ENV)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def current_fault_plan(worker_id: Optional[int] = None) -> FaultPlan:
    """The active plan: installed > environment > :data:`NO_FAULTS`.

    ``worker_id`` (fork-time numbering) overrides the environment-derived
    id; the environment plan is parsed once and its instance cached so
    rule state persists across calls and connections.
    """
    if _INSTALLED is not None:
        if worker_id is not None:
            _INSTALLED.worker_id = worker_id
        return _INSTALLED
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        return NO_FAULTS
    global _ENV_PLAN
    if _ENV_PLAN is None or _ENV_PLAN[0] != raw:
        _ENV_PLAN = (raw, FaultPlan.from_json(raw,
                                              worker_id=local_worker_id()))
    plan = _ENV_PLAN[1]
    if worker_id is not None:
        plan.worker_id = worker_id
    return plan
