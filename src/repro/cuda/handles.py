"""Virtual device handles: pointers, streams and events.

The paper stresses that the emulator "creates and manages virtual resources
and handles that are returned to the application" and flags misuse (invalid
streams, uninitialised descriptors).  These classes are those handles.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class DevicePointer:
    """Opaque device memory pointer returned by ``cudaMalloc``."""

    address: int
    size: int
    device: int

    def __int__(self) -> int:
        return self.address


@dataclass
class CudaStream:
    """A CUDA stream handle.

    ``stream_id`` 0 is the default (legacy) stream of the device.
    """

    stream_id: int
    device: int
    priority: int = 0
    destroyed: bool = False

    def check_valid(self) -> None:
        from repro.cuda.errors import CudaInvalidHandleError

        if self.destroyed:
            raise CudaInvalidHandleError(
                f"stream {self.stream_id} on device {self.device} was destroyed"
            )


@dataclass
class CudaEvent:
    """A CUDA event handle.

    ``version`` counts how many times the event has been recorded; the
    simulator's wait map keys on ``(event_id, version)`` exactly as in
    Algorithm 3 of the paper.
    """

    event_id: int
    device: int
    version: int = 0
    recorded_on_stream: Optional[int] = None
    destroyed: bool = False

    def check_valid(self) -> None:
        from repro.cuda.errors import CudaInvalidHandleError

        if self.destroyed:
            raise CudaInvalidHandleError(f"event {self.event_id} was destroyed")


class HandleAllocator:
    """Monotonic id allocator shared by all handle namespaces of a device."""

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)

    def next_id(self) -> int:
        return next(self._counter)
