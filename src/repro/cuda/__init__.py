"""Virtual CUDA runtime.

This package stands in for the accelerator driver stack the paper's emulator
interposes on (CUDA runtime/driver API, cuBLAS, cuDNN, NCCL).  It exposes the
same *narrow-waist* API surface -- memory management, streams, events,
kernel launches, library handles and collectives -- and fully tracks device
state (allocations, handle validity, stream/event relationships,
communicator membership) without executing any numerical work.

Every API call is reported to an optional *interceptor* callback; Maya's
transparent device emulator (:mod:`repro.core.emulator`) registers itself as
that interceptor to build execution traces, exactly like the LD_PRELOAD shim
described in Section 6 of the paper.
"""

from repro.cuda.api_records import ApiCallRecord, ApiKind
from repro.cuda.errors import (
    CudaError,
    CudaInvalidHandleError,
    CudaInvalidValueError,
    CudaOutOfMemoryError,
)
from repro.cuda.handles import CudaEvent, CudaStream, DevicePointer
from repro.cuda.memory import DeviceMemoryManager
from repro.cuda.runtime import CudaRuntime
from repro.cuda.cublas import CublasHandle
from repro.cuda.cudnn import CudnnHandle
from repro.cuda.nccl import NcclCommunicator, NcclUniqueId

__all__ = [
    "ApiCallRecord",
    "ApiKind",
    "CudaError",
    "CudaInvalidHandleError",
    "CudaInvalidValueError",
    "CudaOutOfMemoryError",
    "CudaEvent",
    "CudaStream",
    "DevicePointer",
    "DeviceMemoryManager",
    "CudaRuntime",
    "CublasHandle",
    "CudnnHandle",
    "NcclCommunicator",
    "NcclUniqueId",
]
