"""Structured records describing intercepted device API calls.

The virtual runtime reports one :class:`ApiCallRecord` per API invocation to
its registered interceptor.  The record carries exactly the metadata the
paper says the emulator captures: the API name, the operation class, tensor
shapes / byte counts / dtypes, the target stream, and -- for collectives --
the communicator identity and sequence number needed for trace collation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class ApiKind(str, enum.Enum):
    """Coarse classification of device API calls."""

    KERNEL = "kernel"
    MEMCPY = "memcpy"
    MEMSET = "memset"
    MALLOC = "malloc"
    FREE = "free"
    STREAM = "stream"
    EVENT_RECORD = "event_record"
    STREAM_WAIT_EVENT = "stream_wait_event"
    EVENT_SYNCHRONIZE = "event_synchronize"
    STREAM_SYNCHRONIZE = "stream_synchronize"
    DEVICE_SYNCHRONIZE = "device_synchronize"
    COLLECTIVE = "collective"
    QUERY = "query"
    LIBRARY = "library"


@dataclass
class ApiCallRecord:
    """One intercepted device API call.

    Attributes
    ----------
    api:
        The CUDA-level symbol name (``"cudaMalloc"``, ``"cublasGemmEx"``,
        ``"ncclAllReduce"``...).
    kind:
        Coarse :class:`ApiKind` used for routing in the emulator/simulator.
    device:
        Device ordinal on which the call executes.
    stream:
        Stream identifier the operation is enqueued on (``None`` for purely
        host-side calls such as ``cudaMalloc``).
    kernel_class:
        Cost-model class (``"gemm"``, ``"elementwise"``, ``"memcpy_h2d"``,
        ``"all_reduce"``...) for kernels, copies and collectives.
    params:
        Operation metadata: FLOPs, bytes, GEMM dims, dtype, tensor shapes.
    collective:
        For collectives: ``{"comm_id", "seq", "ranks", "root"}``.
    event / wait_event:
        Event identifiers for ``cudaEventRecord`` / ``cudaStreamWaitEvent``.
    """

    api: str
    kind: ApiKind
    device: int
    stream: Optional[int] = None
    kernel_class: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    collective: Optional[Dict[str, Any]] = None
    event: Optional[int] = None
    wait_event: Optional[int] = None

    def is_device_work(self) -> bool:
        """Whether the call enqueues asynchronous work on a device stream."""
        return self.kind in (
            ApiKind.KERNEL,
            ApiKind.MEMCPY,
            ApiKind.MEMSET,
            ApiKind.COLLECTIVE,
        )
