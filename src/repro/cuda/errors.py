"""Error types raised by the virtual CUDA runtime.

Mirrors the failure modes the paper calls out under "Resource Tracking":
out-of-memory conditions, invalid memory accesses and misuse of virtual
handles (streams, events, library descriptors).
"""

from __future__ import annotations


class CudaError(RuntimeError):
    """Base class for all virtual-device errors."""


class CudaOutOfMemoryError(CudaError):
    """Raised when an allocation exceeds the emulated device capacity."""

    def __init__(self, requested: int, free: int, total: int) -> None:
        super().__init__(
            f"CUDA out of memory: tried to allocate {requested} bytes "
            f"({free} bytes free of {total})"
        )
        self.requested = requested
        self.free = free
        self.total = total


class CudaInvalidValueError(CudaError):
    """Raised for invalid arguments (negative sizes, bad pointers, ...)."""


class CudaInvalidHandleError(CudaError):
    """Raised when an uninitialised or destroyed handle is used."""


class NcclError(CudaError):
    """Raised for communicator misuse (rank mismatch, reused unique id...)."""
