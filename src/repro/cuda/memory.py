"""Device memory accounting for the virtual runtime.

The memory manager mirrors the behaviour a framework observes through
``cudaMalloc`` / ``cudaFree`` / ``cudaMemGetInfo``: it hands out virtual
addresses, enforces the device capacity (raising out-of-memory errors just
like real hardware), and tracks live/peak usage so the simulation report can
include peak memory -- one of the headline outputs in Figure 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.cuda.errors import CudaInvalidValueError, CudaOutOfMemoryError
from repro.cuda.handles import DevicePointer

#: Allocation granularity applied by the caching allocator, in bytes.
_ALLOC_GRANULARITY = 512


@dataclass
class MemoryStats:
    """Snapshot of allocator statistics."""

    allocated: int = 0
    peak_allocated: int = 0
    num_allocs: int = 0
    num_frees: int = 0


class DeviceMemoryManager:
    """Tracks allocations on one virtual device."""

    def __init__(self, device: int, capacity_bytes: int,
                 reserved_bytes: int = 0) -> None:
        if capacity_bytes <= 0:
            raise CudaInvalidValueError("device capacity must be positive")
        self.device = device
        self.capacity_bytes = capacity_bytes
        #: Bytes carved out for the driver/context, never allocatable.
        self.reserved_bytes = reserved_bytes
        self._allocations: Dict[int, int] = {}
        self._next_address = 0x10_0000
        self._stats = MemoryStats()

    # ------------------------------------------------------------------
    # allocation API
    # ------------------------------------------------------------------
    def malloc(self, nbytes: int) -> DevicePointer:
        """Allocate ``nbytes``; raises :class:`CudaOutOfMemoryError` if full."""
        if nbytes < 0:
            raise CudaInvalidValueError(f"cannot allocate {nbytes} bytes")
        rounded = self._round(nbytes)
        if self.allocated + rounded > self.usable_capacity:
            raise CudaOutOfMemoryError(
                requested=rounded, free=self.free_bytes, total=self.capacity_bytes
            )
        address = self._next_address
        self._next_address += max(rounded, _ALLOC_GRANULARITY)
        self._allocations[address] = rounded
        self._stats.allocated += rounded
        self._stats.num_allocs += 1
        self._stats.peak_allocated = max(
            self._stats.peak_allocated, self._stats.allocated
        )
        return DevicePointer(address=address, size=rounded, device=self.device)

    def free(self, pointer: DevicePointer) -> None:
        """Release an allocation; freeing an unknown pointer is an error."""
        size = self._allocations.pop(pointer.address, None)
        if size is None:
            raise CudaInvalidValueError(
                f"invalid device pointer 0x{pointer.address:x} passed to cudaFree"
            )
        self._stats.allocated -= size
        self._stats.num_frees += 1

    def owns(self, pointer: DevicePointer) -> bool:
        """Whether ``pointer`` refers to a live allocation on this device."""
        return pointer.address in self._allocations and pointer.device == self.device

    # ------------------------------------------------------------------
    # introspection (cudaMemGetInfo and friends)
    # ------------------------------------------------------------------
    @property
    def usable_capacity(self) -> int:
        return self.capacity_bytes - self.reserved_bytes

    @property
    def allocated(self) -> int:
        return self._stats.allocated

    @property
    def peak_allocated(self) -> int:
        return self._stats.peak_allocated

    @property
    def free_bytes(self) -> int:
        return self.usable_capacity - self.allocated

    def mem_get_info(self) -> Tuple[int, int]:
        """Return ``(free, total)`` exactly like ``cudaMemGetInfo``."""
        return self.free_bytes, self.capacity_bytes

    def stats(self) -> MemoryStats:
        """Return a copy of the allocator statistics."""
        return MemoryStats(
            allocated=self._stats.allocated,
            peak_allocated=self._stats.peak_allocated,
            num_allocs=self._stats.num_allocs,
            num_frees=self._stats.num_frees,
        )

    def reset_peak(self) -> None:
        """Reset the peak-usage watermark to the current allocation level."""
        self._stats.peak_allocated = self._stats.allocated

    @staticmethod
    def _round(nbytes: int) -> int:
        if nbytes == 0:
            return _ALLOC_GRANULARITY
        return ((nbytes + _ALLOC_GRANULARITY - 1) // _ALLOC_GRANULARITY
                * _ALLOC_GRANULARITY)
