"""NCCL front-end for the virtual runtime.

Implements the communicator lifecycle the paper describes under
"Inter-Device Dependencies": each worker obtains a unique id, calls
``ncclCommInitRank`` to join a communicator, and then issues collectives
whose trace records carry the communicator id and a per-communicator
sequence number.  The trace collator later matches collectives across
workers using exactly those two fields.

No data is exchanged between workers -- the control flow of DLT workloads
does not depend on collective results -- so communicators are pure
book-keeping objects.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.cuda.errors import NcclError
from repro.cuda.runtime import DEFAULT_STREAM, CudaRuntime
from repro.hardware.kernel_cost import dtype_size

_unique_id_counter = itertools.count(1)


@dataclass(frozen=True)
class NcclUniqueId:
    """Opaque communicator bootstrap id (``ncclGetUniqueId``).

    All ranks of one communicator must be constructed with the same unique
    id; in the real library it is broadcast out-of-band (e.g. via MPI or a
    TCP store), here the launcher simply shares the object.
    """

    value: int
    #: Optional human-readable tag (e.g. "tp", "dp", "pp") used in traces.
    tag: str = ""

    @staticmethod
    def generate(tag: str = "") -> "NcclUniqueId":
        return NcclUniqueId(value=next(_unique_id_counter), tag=tag)


#: Maps public collective names to cost-model kernel classes.
_COLLECTIVE_CLASSES = {
    "all_reduce": "all_reduce",
    "reduce_scatter": "reduce_scatter",
    "all_gather": "all_gather",
    "broadcast": "broadcast",
    "reduce": "reduce",
    "all_to_all": "all_to_all",
    "send": "send",
    "recv": "recv",
    "barrier": "barrier",
}


class NcclCommunicator:
    """A per-rank handle on a collective communication group."""

    def __init__(
        self,
        runtime: CudaRuntime,
        unique_id: NcclUniqueId,
        rank: int,
        world_ranks: Sequence[int],
    ) -> None:
        if rank not in world_ranks:
            raise NcclError(
                f"rank {rank} is not a member of communicator group {world_ranks}"
            )
        if len(set(world_ranks)) != len(world_ranks):
            raise NcclError(f"duplicate ranks in communicator group {world_ranks}")
        self._runtime = runtime
        self.unique_id = unique_id
        self.rank = rank
        self.world_ranks = tuple(world_ranks)
        self.nranks = len(world_ranks)
        self._seq = 0
        self._destroyed = False

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def all_reduce(self, count: int, dtype: str = "float16",
                   stream: int = DEFAULT_STREAM) -> None:
        self._emit("ncclAllReduce", "all_reduce", count, dtype, stream)

    def reduce_scatter(self, count: int, dtype: str = "float16",
                       stream: int = DEFAULT_STREAM) -> None:
        self._emit("ncclReduceScatter", "reduce_scatter", count, dtype, stream)

    def all_gather(self, count: int, dtype: str = "float16",
                   stream: int = DEFAULT_STREAM) -> None:
        self._emit("ncclAllGather", "all_gather", count, dtype, stream)

    def broadcast(self, count: int, root: int = 0, dtype: str = "float16",
                  stream: int = DEFAULT_STREAM) -> None:
        self._emit("ncclBroadcast", "broadcast", count, dtype, stream, root=root)

    def reduce(self, count: int, root: int = 0, dtype: str = "float16",
               stream: int = DEFAULT_STREAM) -> None:
        self._emit("ncclReduce", "reduce", count, dtype, stream, root=root)

    def all_to_all(self, count: int, dtype: str = "float16",
                   stream: int = DEFAULT_STREAM) -> None:
        self._emit("ncclAllToAll", "all_to_all", count, dtype, stream)

    def send(self, count: int, peer: int, dtype: str = "float16",
             stream: int = DEFAULT_STREAM) -> None:
        self._check_peer(peer)
        self._emit("ncclSend", "send", count, dtype, stream, peer=peer)

    def recv(self, count: int, peer: int, dtype: str = "float16",
             stream: int = DEFAULT_STREAM) -> None:
        self._check_peer(peer)
        self._emit("ncclRecv", "recv", count, dtype, stream, peer=peer)

    def barrier(self, stream: int = DEFAULT_STREAM) -> None:
        self._emit("ncclBarrier", "barrier", 0, "uint8", stream)

    def destroy(self) -> None:
        """``ncclCommDestroy``."""
        self._destroyed = True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _emit(self, api: str, op: str, count: int, dtype: str, stream: int,
              root: Optional[int] = None, peer: Optional[int] = None) -> None:
        if self._destroyed:
            raise NcclError("communicator used after ncclCommDestroy")
        if count < 0:
            raise NcclError(f"negative element count {count} for {api}")
        self._seq += 1
        nbytes = float(count * dtype_size(dtype))
        collective: Dict[str, object] = {
            "comm_id": self.unique_id.value,
            "comm_tag": self.unique_id.tag,
            "seq": self._seq,
            "op": op,
            "rank": self.rank,
            "nranks": self.nranks,
            "ranks": self.world_ranks,
        }
        if root is not None:
            collective["root"] = root
        if peer is not None:
            collective["peer"] = peer
        self._runtime.emit_collective(
            api=api,
            kernel_class=_COLLECTIVE_CLASSES[op],
            params={"bytes": nbytes, "count": float(count), "dtype": dtype},
            collective=collective,
            stream=stream,
        )

    def _check_peer(self, peer: int) -> None:
        if peer not in self.world_ranks:
            raise NcclError(
                f"peer rank {peer} is not a member of communicator "
                f"{self.world_ranks}"
            )


def comm_init_rank(
    runtime: CudaRuntime,
    unique_id: NcclUniqueId,
    rank: int,
    world_ranks: Sequence[int],
) -> NcclCommunicator:
    """``ncclCommInitRank`` -- create this rank's view of a communicator."""
    return NcclCommunicator(runtime, unique_id, rank, world_ranks)
