"""cuDNN front-end for the virtual runtime.

Provides the convolution / pooling entry points vision workloads exercise
(ResNet152 in Figure 10 of the paper).  Descriptors are configured
incrementally, mirroring cuDNN's stateful API, and launches carry the full
convolution geometry so the cost model and the learned estimators can
reproduce the per-kernel accuracy reported in Table 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cuda.errors import CudaInvalidHandleError, CudaInvalidValueError
from repro.cuda.runtime import DEFAULT_STREAM, CudaRuntime
from repro.hardware.kernel_cost import dtype_size


@dataclass
class ConvolutionDescriptor:
    """Geometry of a 2D convolution."""

    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int = 1
    padding: int = 0

    def output_hw(self, height: int, width: int) -> Tuple[int, int]:
        out_h = (height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (width + 2 * self.padding - self.kernel_size) // self.stride + 1
        return out_h, out_w


class CudnnHandle:
    """A ``cudnnHandle_t`` bound to one device context."""

    def __init__(self, runtime: CudaRuntime) -> None:
        self._runtime = runtime
        self._stream = DEFAULT_STREAM
        self._destroyed = False
        self._conv_desc: Optional[ConvolutionDescriptor] = None

    def set_stream(self, stream_id: int) -> None:
        """``cudnnSetStream``."""
        self._check_alive()
        self._stream = stream_id

    def set_convolution_descriptor(self, desc: ConvolutionDescriptor) -> None:
        """``cudnnSetConvolution2dDescriptor``."""
        self._check_alive()
        if desc.kernel_size <= 0 or desc.stride <= 0:
            raise CudaInvalidValueError("invalid convolution descriptor")
        self._conv_desc = desc

    def destroy(self) -> None:
        self._destroyed = True

    # ------------------------------------------------------------------
    # convolution launches
    # ------------------------------------------------------------------
    def convolution_forward(self, batch: int, height: int, width: int,
                            dtype: str = "float16") -> None:
        self._launch("cudnnConvolutionForward", "conv_forward",
                     batch, height, width, dtype)

    def convolution_backward_data(self, batch: int, height: int, width: int,
                                  dtype: str = "float16") -> None:
        self._launch("cudnnConvolutionBackwardData", "conv_backward_data",
                     batch, height, width, dtype)

    def convolution_backward_filter(self, batch: int, height: int, width: int,
                                    dtype: str = "float16") -> None:
        self._launch("cudnnConvolutionBackwardFilter", "conv_backward_filter",
                     batch, height, width, dtype)

    def pooling_forward(self, batch: int, channels: int, height: int,
                        width: int, dtype: str = "float16") -> None:
        """``cudnnPoolingForward`` -- modelled as a memory-bound kernel."""
        self._check_alive()
        elements = batch * channels * height * width
        self._runtime.launch_kernel(
            api="cudnnPoolingForward", kernel_class="pool",
            params={"elements": float(elements),
                    "bytes": float(2 * elements * dtype_size(dtype)),
                    "dtype": dtype},
            stream=self._stream,
        )

    def _launch(self, api: str, kernel_class: str, batch: int, height: int,
                width: int, dtype: str) -> None:
        self._check_alive()
        if self._conv_desc is None:
            raise CudaInvalidHandleError(
                f"{api} called before cudnnSetConvolution2dDescriptor"
            )
        desc = self._conv_desc
        out_h, out_w = desc.output_hw(height, width)
        flops = (2.0 * batch * out_h * out_w * desc.out_channels
                 * desc.in_channels * desc.kernel_size * desc.kernel_size)
        width_bytes = dtype_size(dtype)
        nbytes = float(width_bytes * (
            batch * desc.in_channels * height * width
            + batch * desc.out_channels * out_h * out_w
            + desc.in_channels * desc.out_channels * desc.kernel_size ** 2
        ))
        self._runtime.launch_kernel(
            api=api, kernel_class=kernel_class,
            params={
                "flops": flops, "bytes": nbytes, "dtype": dtype,
                "batch": batch,
                "m": batch * out_h * out_w,
                "n": desc.out_channels,
                "k": desc.in_channels * desc.kernel_size ** 2,
            },
            stream=self._stream,
        )

    def _check_alive(self) -> None:
        if self._destroyed:
            raise CudaInvalidHandleError("cudnn handle used after destroy")
