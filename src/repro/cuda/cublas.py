"""cuBLAS front-end for the virtual runtime.

The paper highlights that "operations involving opaque libraries like cuBLAS
... are built incrementally": a handle is created, a stream is attached,
matrices are described, and only then is the GEMM launched.  This module
reproduces that stateful sequence so the emulator has to track it the same
way the real shim does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cuda.errors import CudaInvalidHandleError, CudaInvalidValueError
from repro.cuda.runtime import DEFAULT_STREAM, CudaRuntime
from repro.hardware.kernel_cost import dtype_size


@dataclass
class _MatrixDescriptor:
    rows: int
    cols: int
    dtype: str


class CublasHandle:
    """A ``cublasHandle_t`` bound to one device context."""

    def __init__(self, runtime: CudaRuntime) -> None:
        self._runtime = runtime
        self._stream = DEFAULT_STREAM
        self._destroyed = False
        self._last_matrix: Optional[_MatrixDescriptor] = None

    # ------------------------------------------------------------------
    # state configuration
    # ------------------------------------------------------------------
    def set_stream(self, stream_id: int) -> None:
        """``cublasSetStream``."""
        self._check_alive()
        self._stream = stream_id

    def set_matrix(self, rows: int, cols: int, dtype: str = "float16") -> None:
        """``cublasSetMatrix`` -- describes an operand incrementally."""
        self._check_alive()
        if rows <= 0 or cols <= 0:
            raise CudaInvalidValueError("matrix dimensions must be positive")
        self._last_matrix = _MatrixDescriptor(rows=rows, cols=cols, dtype=dtype)

    def destroy(self) -> None:
        """``cublasDestroy``."""
        self._destroyed = True

    # ------------------------------------------------------------------
    # GEMM launches
    # ------------------------------------------------------------------
    def gemm_ex(
        self,
        m: int,
        n: int,
        k: int,
        dtype: str = "float16",
        batch: int = 1,
        api: str = "cublasGemmEx",
    ) -> None:
        """Launch a (possibly batched) GEMM of shape ``m x k @ k x n``."""
        self._check_alive()
        if min(m, n, k) <= 0 or batch <= 0:
            raise CudaInvalidValueError(
                f"invalid GEMM shape m={m} n={n} k={k} batch={batch}"
            )
        flops = 2.0 * m * n * k * batch
        width = dtype_size(dtype)
        nbytes = float(width * batch * (m * k + k * n + m * n))
        kernel_class = "batched_gemm" if batch > 1 else "gemm"
        self._runtime.launch_kernel(
            api=api,
            kernel_class=kernel_class,
            params={
                "m": m, "n": n, "k": k, "batch": batch,
                "flops": flops, "bytes": nbytes, "dtype": dtype,
            },
            stream=self._stream,
        )

    def sgemm(self, m: int, n: int, k: int, batch: int = 1) -> None:
        """``cublasSgemm_v2`` -- fp32 GEMM."""
        api = "cublasSgemmStridedBatched" if batch > 1 else "cublasSgemm_v2"
        self.gemm_ex(m, n, k, dtype="float32", batch=batch, api=api)

    def hgemm(self, m: int, n: int, k: int, batch: int = 1) -> None:
        """Half-precision GEMM (tensor-core path)."""
        api = "cublasGemmStridedBatchedEx" if batch > 1 else "cublasGemmEx"
        self.gemm_ex(m, n, k, dtype="float16", batch=batch, api=api)

    def lt_matmul(self, m: int, n: int, k: int, dtype: str = "bfloat16",
                  batch: int = 1) -> None:
        """``cublasLtMatmul`` -- the epilogue-fused matmul path."""
        self.gemm_ex(m, n, k, dtype=dtype, batch=batch, api="cublasLtMatmul")

    def _check_alive(self) -> None:
        if self._destroyed:
            raise CudaInvalidHandleError("cublas handle used after destroy")
