"""The virtual CUDA runtime for a single device.

One :class:`CudaRuntime` instance represents the CUDA context a single
training worker (rank) sees.  It implements the device-management subset of
the CUDA runtime/driver API that deep-learning frameworks exercise --
memory, streams, events, copies and kernel launches -- while tracking state
so that queries (``cudaMemGetInfo``) and misuse (invalid handles, OOM)
behave like real hardware.

Compute never executes; each call is summarised as an
:class:`~repro.cuda.api_records.ApiCallRecord` and forwarded to the
registered interceptor, which is how Maya's transparent emulator observes
the workload.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.cuda.api_records import ApiCallRecord, ApiKind
from repro.cuda.errors import CudaInvalidHandleError, CudaInvalidValueError
from repro.cuda.handles import CudaEvent, CudaStream, DevicePointer, HandleAllocator
from repro.cuda.memory import DeviceMemoryManager
from repro.hardware.gpu_specs import GPUSpec

Interceptor = Callable[[ApiCallRecord], None]

#: Default stream id (the CUDA legacy stream).
DEFAULT_STREAM = 0


class CudaRuntime:
    """Virtual CUDA context for one device owned by one worker."""

    def __init__(
        self,
        device: int,
        gpu: GPUSpec,
        interceptor: Optional[Interceptor] = None,
        reserved_bytes: int = 768 * 1024 * 1024,
    ) -> None:
        self.device = device
        self.gpu = gpu
        self.memory = DeviceMemoryManager(
            device=device,
            capacity_bytes=gpu.memory_bytes,
            reserved_bytes=reserved_bytes,
        )
        self._interceptor = interceptor
        self._handles = HandleAllocator()
        self._streams: Dict[int, CudaStream] = {
            DEFAULT_STREAM: CudaStream(stream_id=DEFAULT_STREAM, device=device)
        }
        self._events: Dict[int, CudaEvent] = {}
        self._kernel_count = 0

    # ------------------------------------------------------------------
    # interceptor plumbing
    # ------------------------------------------------------------------
    def set_interceptor(self, interceptor: Optional[Interceptor]) -> None:
        """Install (or remove) the API-call interceptor."""
        self._interceptor = interceptor

    def _emit(self, record: ApiCallRecord) -> None:
        if self._interceptor is not None:
            self._interceptor(record)

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------
    def cuda_malloc(self, nbytes: int) -> DevicePointer:
        pointer = self.memory.malloc(nbytes)
        self._emit(ApiCallRecord(
            api="cudaMalloc", kind=ApiKind.MALLOC, device=self.device,
            params={"bytes": pointer.size},
        ))
        return pointer

    def cuda_free(self, pointer: DevicePointer) -> None:
        self.memory.free(pointer)
        self._emit(ApiCallRecord(
            api="cudaFree", kind=ApiKind.FREE, device=self.device,
            params={"bytes": pointer.size},
        ))

    def cuda_mem_get_info(self) -> tuple:
        info = self.memory.mem_get_info()
        self._emit(ApiCallRecord(
            api="cudaMemGetInfo", kind=ApiKind.QUERY, device=self.device,
            params={"free": info[0], "total": info[1]},
        ))
        return info

    def cuda_memcpy_async(
        self,
        nbytes: int,
        kind: str,
        stream: int = DEFAULT_STREAM,
        dtype: str = "uint8",
    ) -> None:
        """``cudaMemcpyAsync``; ``kind`` is one of h2d / d2h / d2d / h2h."""
        if nbytes < 0:
            raise CudaInvalidValueError("memcpy size must be non-negative")
        if kind not in ("h2d", "d2h", "d2d", "h2h"):
            raise CudaInvalidValueError(f"unknown memcpy kind '{kind}'")
        self._check_stream(stream)
        self._emit(ApiCallRecord(
            api="cudaMemcpyAsync", kind=ApiKind.MEMCPY, device=self.device,
            stream=stream, kernel_class=f"memcpy_{kind}",
            params={"bytes": float(nbytes), "dtype": dtype},
        ))

    def cuda_memset_async(self, nbytes: int, stream: int = DEFAULT_STREAM) -> None:
        self._check_stream(stream)
        self._emit(ApiCallRecord(
            api="cudaMemsetAsync", kind=ApiKind.MEMSET, device=self.device,
            stream=stream, kernel_class="memset",
            params={"bytes": float(nbytes)},
        ))

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------
    def cuda_stream_create(self, priority: int = 0) -> CudaStream:
        stream = CudaStream(
            stream_id=self._handles.next_id(), device=self.device,
            priority=priority,
        )
        self._streams[stream.stream_id] = stream
        self._emit(ApiCallRecord(
            api="cudaStreamCreate", kind=ApiKind.STREAM, device=self.device,
            stream=stream.stream_id,
        ))
        return stream

    def cuda_stream_destroy(self, stream: CudaStream) -> None:
        self._lookup_stream(stream.stream_id).destroyed = True
        self._emit(ApiCallRecord(
            api="cudaStreamDestroy", kind=ApiKind.STREAM, device=self.device,
            stream=stream.stream_id,
        ))

    def cuda_stream_synchronize(self, stream: int = DEFAULT_STREAM) -> None:
        self._check_stream(stream)
        self._emit(ApiCallRecord(
            api="cudaStreamSynchronize", kind=ApiKind.STREAM_SYNCHRONIZE,
            device=self.device, stream=stream,
        ))

    def cuda_device_synchronize(self) -> None:
        self._emit(ApiCallRecord(
            api="cudaDeviceSynchronize", kind=ApiKind.DEVICE_SYNCHRONIZE,
            device=self.device,
        ))

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def cuda_event_create(self) -> CudaEvent:
        event = CudaEvent(event_id=self._handles.next_id(), device=self.device)
        self._events[event.event_id] = event
        self._emit(ApiCallRecord(
            api="cudaEventCreate", kind=ApiKind.EVENT_RECORD, device=self.device,
            event=event.event_id, params={"create": True},
        ))
        return event

    def cuda_event_record(self, event: CudaEvent,
                          stream: int = DEFAULT_STREAM) -> None:
        self._check_stream(stream)
        live = self._lookup_event(event.event_id)
        live.check_valid()
        live.version += 1
        live.recorded_on_stream = stream
        self._emit(ApiCallRecord(
            api="cudaEventRecord", kind=ApiKind.EVENT_RECORD, device=self.device,
            stream=stream, event=live.event_id,
            params={"version": live.version},
        ))

    def cuda_stream_wait_event(self, stream: int, event: CudaEvent) -> None:
        self._check_stream(stream)
        live = self._lookup_event(event.event_id)
        live.check_valid()
        if live.version == 0:
            # Waiting on a never-recorded event is a legal no-op in CUDA.
            version = 0
        else:
            version = live.version
        self._emit(ApiCallRecord(
            api="cudaStreamWaitEvent", kind=ApiKind.STREAM_WAIT_EVENT,
            device=self.device, stream=stream, wait_event=live.event_id,
            params={"version": version},
        ))

    def cuda_event_synchronize(self, event: CudaEvent) -> None:
        live = self._lookup_event(event.event_id)
        live.check_valid()
        self._emit(ApiCallRecord(
            api="cudaEventSynchronize", kind=ApiKind.EVENT_SYNCHRONIZE,
            device=self.device, wait_event=live.event_id,
            params={"version": live.version},
        ))

    def cuda_event_destroy(self, event: CudaEvent) -> None:
        live = self._lookup_event(event.event_id)
        live.destroyed = True
        self._emit(ApiCallRecord(
            api="cudaEventDestroy", kind=ApiKind.EVENT_RECORD, device=self.device,
            event=live.event_id, params={"destroy": True},
        ))

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def launch_kernel(
        self,
        api: str,
        kernel_class: str,
        params: Dict[str, Any],
        stream: int = DEFAULT_STREAM,
    ) -> None:
        """Enqueue a compute kernel (no-op; metadata only)."""
        self._check_stream(stream)
        self._kernel_count += 1
        self._emit(ApiCallRecord(
            api=api, kind=ApiKind.KERNEL, device=self.device, stream=stream,
            kernel_class=kernel_class, params=dict(params),
        ))

    def emit_collective(
        self,
        api: str,
        kernel_class: str,
        params: Dict[str, Any],
        collective: Dict[str, Any],
        stream: int = DEFAULT_STREAM,
    ) -> None:
        """Enqueue a collective operation (used by the NCCL front-end)."""
        self._check_stream(stream)
        self._emit(ApiCallRecord(
            api=api, kind=ApiKind.COLLECTIVE, device=self.device, stream=stream,
            kernel_class=kernel_class, params=dict(params),
            collective=dict(collective),
        ))

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def kernel_count(self) -> int:
        """Number of kernels launched since runtime creation."""
        return self._kernel_count

    def streams(self) -> List[CudaStream]:
        return list(self._streams.values())

    def _check_stream(self, stream_id: int) -> None:
        self._lookup_stream(stream_id).check_valid()

    def _lookup_stream(self, stream_id: int) -> CudaStream:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise CudaInvalidHandleError(
                f"stream {stream_id} does not exist on device {self.device}"
            ) from None

    def _lookup_event(self, event_id: int) -> CudaEvent:
        try:
            return self._events[event_id]
        except KeyError:
            raise CudaInvalidHandleError(
                f"event {event_id} does not exist on device {self.device}"
            ) from None
