"""Interconnect and topology descriptions.

The paper's clusters mix intra-node NVLink fabrics with inter-node
InfiniBand / RoCE links.  Collective performance is dominated by the slowest
link a ring has to traverse, so the interconnect spec exposes an *effective
per-rank bus bandwidth* for a group of participating ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point or switched link class."""

    name: str
    #: Unidirectional bandwidth per GPU in bytes per second.
    bandwidth: float
    #: Base latency per message in seconds.
    latency: float

    def transfer_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` across this link once."""
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class InterconnectSpec:
    """Two-level (intra-node / inter-node) interconnect description."""

    intra_node: LinkSpec
    inter_node: LinkSpec
    #: Fraction of nominal bandwidth achievable by NCCL-style collectives.
    collective_efficiency: float = 0.85

    def link_for_group(self, ranks: Sequence[int], gpus_per_node: int) -> LinkSpec:
        """Return the bottleneck link class for a communicator group.

        If every rank lives on the same node, collectives ride NVLink;
        otherwise they are bottlenecked by the inter-node fabric.
        """
        if not ranks:
            raise ValueError("communicator group must contain at least one rank")
        nodes = {rank // gpus_per_node for rank in ranks}
        if len(nodes) <= 1:
            return self.intra_node
        return self.inter_node

    def effective_bus_bandwidth(
        self, ranks: Sequence[int], gpus_per_node: int
    ) -> float:
        """Effective per-rank bus bandwidth (bytes/s) for a collective."""
        link = self.link_for_group(ranks, gpus_per_node)
        return link.bandwidth * self.collective_efficiency

    def base_latency(self, ranks: Sequence[int], gpus_per_node: int) -> float:
        """Per-step latency for a collective over this group."""
        return self.link_for_group(ranks, gpus_per_node).latency


# Preset fabrics matching the paper's three testbeds (Section 7.1).
NVLINK4 = LinkSpec(name="NVLink4", bandwidth=450e9, latency=1.5e-6)
NVLINK2_CUBEMESH = LinkSpec(name="NVLink2-cubemesh", bandwidth=150e9, latency=2.5e-6)
NVLINK_PAIRWISE = LinkSpec(name="NVLink-pairwise", bandwidth=56e9, latency=2.5e-6)
PCIE4 = LinkSpec(name="PCIe4", bandwidth=25e9, latency=4.0e-6)
ROCE_400G = LinkSpec(name="RoCE-400G", bandwidth=50e9, latency=6.0e-6)
INFINIBAND_100G = LinkSpec(name="IB-100G", bandwidth=12.5e9, latency=5.0e-6)
INFINIBAND_400G = LinkSpec(name="IB-400G", bandwidth=50e9, latency=5.0e-6)


H100_FABRIC = InterconnectSpec(intra_node=NVLINK4, inter_node=ROCE_400G)
V100_FABRIC = InterconnectSpec(intra_node=NVLINK2_CUBEMESH, inter_node=INFINIBAND_100G)
A40_FABRIC = InterconnectSpec(intra_node=NVLINK_PAIRWISE, inter_node=PCIE4)
