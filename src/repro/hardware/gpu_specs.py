"""GPU capability sheets for the accelerators evaluated in the paper.

The numbers below are taken from the public datasheets referenced by the
paper (NVIDIA V100, H100 SXM and A40).  They drive three things:

* the ground-truth kernel cost model (:mod:`repro.hardware.kernel_cost`),
* memory-capacity checks (OOM detection) in the virtual CUDA runtime, and
* MFU computation in :mod:`repro.analysis.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a single accelerator device."""

    name: str
    #: Peak dense throughput in FLOP/s keyed by dtype name.
    peak_flops: Dict[str, float]
    #: HBM capacity in bytes.
    memory_bytes: int
    #: HBM bandwidth in bytes per second.
    memory_bandwidth: float
    #: Number of streaming multiprocessors.
    sm_count: int
    #: Per-direction NVLink bandwidth to a peer GPU in bytes/s (0 if none).
    nvlink_bandwidth: float
    #: Typical kernel launch overhead observed from the host, seconds.
    kernel_launch_overhead: float
    #: On-demand cloud price per GPU-hour in USD (used for cost figures).
    hourly_price: float
    #: Architecture/generation label ("volta", "ampere", "hopper").
    architecture: str = "unknown"
    #: Achievable fraction of peak FLOP/s for large, well-shaped GEMMs.
    gemm_efficiency: float = 0.75
    #: Achievable fraction of peak memory bandwidth for streaming kernels.
    memory_efficiency: float = 0.80

    def peak_flops_for(self, dtype: str) -> float:
        """Return peak FLOP/s for ``dtype``, falling back to fp32."""
        if dtype in self.peak_flops:
            return self.peak_flops[dtype]
        if dtype in ("float16", "bfloat16", "half") and "float16" in self.peak_flops:
            return self.peak_flops["float16"]
        return self.peak_flops.get("float32", max(self.peak_flops.values()))

    @property
    def memory_gb(self) -> float:
        return self.memory_bytes / (1024**3)


_TFLOP = 1e12
_GB = 1024**3
_GBPS = 1e9


GPU_SPECS: Dict[str, GPUSpec] = {
    "V100": GPUSpec(
        name="V100",
        peak_flops={
            "float32": 15.7 * _TFLOP,
            "float16": 125.0 * _TFLOP,
            "bfloat16": 15.7 * _TFLOP,  # Volta has no bf16 tensor cores.
        },
        memory_bytes=40 * _GB,  # paper's V100 DGX nodes carry 40 GB HBM
        memory_bandwidth=900e9,
        sm_count=80,
        nvlink_bandwidth=150e9,  # cube-mesh, 300 GB/s bidirectional
        kernel_launch_overhead=6.5e-6,
        hourly_price=2.48,
        architecture="volta",
        gemm_efficiency=0.68,
        memory_efficiency=0.78,
    ),
    "H100": GPUSpec(
        name="H100",
        peak_flops={
            "float32": 67.0 * _TFLOP,
            "float16": 989.0 * _TFLOP,
            "bfloat16": 989.0 * _TFLOP,
        },
        memory_bytes=80 * _GB,
        memory_bandwidth=3350e9,
        sm_count=132,
        nvlink_bandwidth=450e9,  # NVLink 4.0, 900 GB/s bidirectional
        kernel_launch_overhead=4.0e-6,
        hourly_price=6.98,
        architecture="hopper",
        gemm_efficiency=0.62,
        memory_efficiency=0.82,
    ),
    "A40": GPUSpec(
        name="A40",
        peak_flops={
            "float32": 37.4 * _TFLOP,
            "float16": 149.7 * _TFLOP,
            "bfloat16": 149.7 * _TFLOP,
        },
        memory_bytes=48 * _GB,
        memory_bandwidth=696e9,
        sm_count=84,
        nvlink_bandwidth=56e9,  # pairwise NVLink bridges only
        kernel_launch_overhead=5.5e-6,
        hourly_price=1.28,
        architecture="ampere",
        gemm_efficiency=0.65,
        memory_efficiency=0.80,
    ),
    "A100": GPUSpec(
        name="A100",
        peak_flops={
            "float32": 19.5 * _TFLOP,
            "float16": 312.0 * _TFLOP,
            "bfloat16": 312.0 * _TFLOP,
        },
        memory_bytes=80 * _GB,
        memory_bandwidth=2039e9,
        sm_count=108,
        nvlink_bandwidth=300e9,
        kernel_launch_overhead=4.5e-6,
        hourly_price=4.10,
        architecture="ampere",
        gemm_efficiency=0.66,
        memory_efficiency=0.81,
    ),
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by (case-insensitive) name."""
    key = name.upper()
    if key not in GPU_SPECS:
        raise KeyError(f"unknown GPU '{name}'; known: {sorted(GPU_SPECS)}")
    return GPU_SPECS[key]
