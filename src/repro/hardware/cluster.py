"""Cluster specifications used throughout the evaluation.

A :class:`ClusterSpec` is the "Emulation Spec" box in Figure 5 of the paper:
device type, devices per node, number of nodes and the interconnect.  It is
consumed by the kernel runtime estimators, the simulator's resource model and
the cost accounting in :mod:`repro.analysis.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.hardware.gpu_specs import GPUSpec, get_gpu
from repro.hardware.host_model import HostModel
from repro.hardware.interconnect import (
    A40_FABRIC,
    H100_FABRIC,
    InterconnectSpec,
    V100_FABRIC,
)


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster."""

    name: str
    gpu: GPUSpec
    gpus_per_node: int
    num_nodes: int
    interconnect: InterconnectSpec
    host: HostModel = field(default_factory=HostModel)

    @property
    def world_size(self) -> int:
        """Total number of GPUs in the cluster."""
        return self.gpus_per_node * self.num_nodes

    @property
    def hourly_cost(self) -> float:
        """Total cluster price in USD per hour."""
        return self.world_size * self.gpu.hourly_price

    def node_of(self, rank: int) -> int:
        """Node index hosting global ``rank``."""
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def local_rank(self, rank: int) -> int:
        """Index of ``rank`` within its node."""
        self._check_rank(rank)
        return rank % self.gpus_per_node

    def with_world_size(self, world_size: int) -> "ClusterSpec":
        """Return a copy resized to ``world_size`` GPUs.

        Clusters smaller than one node shrink the node; larger clusters keep
        ``gpus_per_node`` fixed and scale the node count.
        """
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        if world_size <= self.gpus_per_node:
            return replace(
                self,
                name=f"{self.name}-{world_size}gpu",
                gpus_per_node=world_size,
                num_nodes=1,
            )
        if world_size % self.gpus_per_node != 0:
            raise ValueError(
                f"world_size {world_size} is not a multiple of gpus_per_node "
                f"{self.gpus_per_node}"
            )
        return replace(
            self,
            name=f"{self.name}-{world_size}gpu",
            num_nodes=world_size // self.gpus_per_node,
        )

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} outside world of size {self.world_size}")


def _preset(name: str, gpu: str, gpus_per_node: int, num_nodes: int,
            fabric: InterconnectSpec) -> ClusterSpec:
    return ClusterSpec(
        name=name,
        gpu=get_gpu(gpu),
        gpus_per_node=gpus_per_node,
        num_nodes=num_nodes,
        interconnect=fabric,
    )


#: Clusters matching Section 7.1 of the paper, keyed by a short handle.
PRESET_CLUSTERS: Dict[str, ClusterSpec] = {
    "v100-8": _preset("v100-8", "V100", 8, 1, V100_FABRIC),
    "v100-16": _preset("v100-16", "V100", 8, 2, V100_FABRIC),
    "v100-32": _preset("v100-32", "V100", 8, 4, V100_FABRIC),
    "h100-16": _preset("h100-16", "H100", 8, 2, H100_FABRIC),
    "h100-32": _preset("h100-32", "H100", 8, 4, H100_FABRIC),
    "h100-64": _preset("h100-64", "H100", 8, 8, H100_FABRIC),
    "h100-128": _preset("h100-128", "H100", 8, 16, H100_FABRIC),
    "a40-8": _preset("a40-8", "A40", 8, 1, A40_FABRIC),
}


def get_cluster(name: str) -> ClusterSpec:
    """Look up a preset cluster by handle such as ``"h100-64"``."""
    key = name.lower()
    if key not in PRESET_CLUSTERS:
        raise KeyError(f"unknown cluster '{name}'; known: {sorted(PRESET_CLUSTERS)}")
    return PRESET_CLUSTERS[key]
