"""Deterministic pseudo-noise helpers.

The testbed ("actual hardware") has to exhibit run-to-run structure that a
learned estimator cannot perfectly capture -- otherwise Maya's end-to-end
error would be exactly zero and every figure in the evaluation would be
degenerate.  Real hardware provides this structure for free; here we generate
it deterministically from stable hashes so that experiments are reproducible
across processes and machines.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable


def stable_hash(*parts: object) -> int:
    """Return a 64-bit hash that is stable across processes.

    ``hash()`` is randomised per interpreter run for strings, so we hash the
    ``repr`` of every part through blake2b instead.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest(), "big")


def unit_uniform(*parts: object) -> float:
    """Deterministic uniform sample in ``[0, 1)`` keyed by ``parts``."""
    return (stable_hash(*parts) % (2**53)) / float(2**53)


def deterministic_noise(*parts: object, scale: float = 0.03) -> float:
    """Return a multiplicative noise factor centred on 1.0.

    The factor is ``1 + scale * z`` where ``z`` is a deterministic
    pseudo-Gaussian in roughly ``[-3, 3]`` derived from ``parts``.  A Box-
    Muller transform over two stable uniforms gives an approximately normal
    shape without consuming global RNG state.
    """
    u1 = unit_uniform("bm1", *parts)
    u2 = unit_uniform("bm2", *parts)
    u1 = min(max(u1, 1e-12), 1.0 - 1e-12)
    z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
    z = max(-3.0, min(3.0, z))
    return 1.0 + scale * z


def fast_noise(seed: int, scale: float = 0.01) -> float:
    """Cheap multiplicative jitter factor for hot simulation loops.

    Uses a splitmix64-style integer mix instead of a cryptographic hash, so
    it can be called millions of times (once per simulated kernel) without
    dominating simulation runtime.  The result is uniform in
    ``[1 - scale*sqrt(3), 1 + scale*sqrt(3)]`` (matching the variance of a
    Gaussian with standard deviation ``scale``).
    """
    z = (seed + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    z = z ^ (z >> 31)
    uniform = z / float(2**64)
    return 1.0 + scale * 3.4641016151377544 * (uniform - 0.5)


def deterministic_choice(options: Iterable[object], *parts: object) -> object:
    """Pick one of ``options`` deterministically based on ``parts``."""
    items = list(options)
    if not items:
        raise ValueError("options must be non-empty")
    return items[stable_hash(*parts) % len(items)]
