"""Hardware descriptions and ground-truth performance models.

This package is the stand-in for the physical clusters used in the paper's
evaluation (V100 DGX, H100 DGX and an 8xA40 node).  It contains:

* :mod:`repro.hardware.gpu_specs` -- per-GPU capability sheets,
* :mod:`repro.hardware.interconnect` -- link and topology descriptions,
* :mod:`repro.hardware.cluster` -- cluster specifications and pricing,
* :mod:`repro.hardware.noise` -- deterministic pseudo-noise used to give the
  ground-truth model realistic, repeatable variation,
* :mod:`repro.hardware.kernel_cost` -- the "true" per-kernel cost model used
  by the testbed (and, with sampling noise, by the profiler that generates
  training data for Maya's learned estimators),
* :mod:`repro.hardware.host_model` -- CPU-side dispatch overhead model.
"""

from repro.hardware.cluster import ClusterSpec, PRESET_CLUSTERS, get_cluster
from repro.hardware.gpu_specs import GPUSpec, GPU_SPECS, get_gpu
from repro.hardware.host_model import HostModel
from repro.hardware.interconnect import InterconnectSpec, LinkSpec
from repro.hardware.kernel_cost import CollectiveCostModel, KernelCostModel
from repro.hardware.noise import deterministic_noise, stable_hash

__all__ = [
    "CollectiveCostModel",
    "ClusterSpec",
    "PRESET_CLUSTERS",
    "get_cluster",
    "GPUSpec",
    "GPU_SPECS",
    "get_gpu",
    "HostModel",
    "InterconnectSpec",
    "LinkSpec",
    "KernelCostModel",
    "deterministic_noise",
    "stable_hash",
]
